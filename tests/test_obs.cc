/**
 * @file
 * Telemetry-layer tests: registry semantics (stable refs, snapshot
 * accumulation, collector lifecycle), histogram bucketing, the
 * Prometheus text dump, the Chrome-trace emitter and span sink, the
 * cycle-walk probe — and the central promise of the whole subsystem:
 * with telemetry off every hook is a no-op, and with telemetry *on*
 * every simulation output is still bit-identical (observation never
 * feeds back).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/dse.hh"
#include "core/zfost.hh"
#include "gan/models.hh"
#include "obs/metrics.hh"
#include "obs/probe.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "sim/conv_spec.hh"
#include "sim/json.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace {

using namespace ganacc;
namespace fs = std::filesystem;

/** Scratch file path unique to the running test. */
std::string
scratchPath(const std::string &leaf)
{
    return (fs::temp_directory_path() /
            ("ganacc-obs-" + std::to_string(::getpid()) + "-" +
             ::testing::UnitTest::GetInstance()
                 ->current_test_info()
                 ->name() +
             "-" + leaf))
        .string();
}

/** A D-fwd-shaped job small enough for many runs per test. */
sim::ConvSpec
smallSpec()
{
    sim::ConvSpec s;
    s.label = "obs-test";
    s.nif = 3;
    s.nof = 4;
    s.ih = s.iw = 12;
    s.kh = s.kw = 5;
    s.stride = 2;
    s.pad = 2;
    s.oh = s.ow = 6;
    return s;
}

TEST(Metrics, CounterAndGaugeBasics)
{
    obs::Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);

    obs::Gauge g;
    g.set(7);
    g.add(-10);
    EXPECT_EQ(g.value(), -3);
}

TEST(Metrics, RegistryReturnsStableReferences)
{
    auto &reg = obs::Registry::instance();
    obs::Counter &a = reg.counter("test_obs_stable_total", "help once");
    obs::Counter &b = reg.counter("test_obs_stable_total");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(reg.help("test_obs_stable_total"), "help once");
}

TEST(Metrics, HistogramBucketsArePowersOfTwo)
{
    using obs::Histogram;
    EXPECT_EQ(Histogram::bucketIndex(0), 0);
    EXPECT_EQ(Histogram::bucketIndex(1), 0);
    EXPECT_EQ(Histogram::bucketIndex(2), 1);
    EXPECT_EQ(Histogram::bucketIndex(3), 2);
    EXPECT_EQ(Histogram::bucketIndex(1u << 20), 20);
    EXPECT_EQ(Histogram::bucketIndex((1u << 20) + 1),
              Histogram::kFiniteBuckets);

    Histogram h;
    h.observe(1);
    h.observe(3);
    h.observe(1u << 21); // lands in +Inf
    const obs::HistogramSnapshot s = h.snapshot();
    EXPECT_EQ(s.count, 3u);
    EXPECT_EQ(s.sum, 1u + 3u + (1u << 21));
    EXPECT_EQ(s.buckets[0], 1u);
    EXPECT_EQ(s.buckets[2], 1u);
    EXPECT_EQ(s.buckets[std::size_t(Histogram::kFiniteBuckets)], 1u);
}

TEST(Metrics, SnapshotAccumulatesRepeatedNames)
{
    obs::Snapshot s;
    s.counter("x_total", 2);
    s.counter("x_total", 3);
    s.gauge("x_level", 1);
    s.gauge("x_level", -4);
    EXPECT_EQ(s.counters().at("x_total"), 5u);
    EXPECT_EQ(s.gauges().at("x_level"), -3);

    obs::HistogramSnapshot h;
    h.buckets = {1, 0};
    h.count = 1;
    h.sum = 1;
    s.histogram("x_hist", h);
    s.histogram("x_hist", h);
    EXPECT_EQ(s.histograms().at("x_hist").count, 2u);
    EXPECT_EQ(s.histograms().at("x_hist").buckets[0], 2u);
}

TEST(Metrics, CollectorsRunInSnapshotAndCanBeRemoved)
{
    auto &reg = obs::Registry::instance();
    const int token = reg.addCollector([](obs::Snapshot &s) {
        s.counter("test_obs_collected_total", 11);
    });
    EXPECT_EQ(reg.snapshot().counters().at("test_obs_collected_total"),
              11u);
    reg.removeCollector(token);
    EXPECT_EQ(reg.snapshot().counters().count(
                  "test_obs_collected_total"),
              0u);
}

TEST(Metrics, BaseNameStripsLabelBlock)
{
    EXPECT_EQ(obs::metricBaseName("plain_total"), "plain_total");
    EXPECT_EQ(obs::metricBaseName("a_total{arch=\"ZFOST\"}"),
              "a_total");
}

TEST(Metrics, PrometheusRenderIsWellFormed)
{
    obs::Snapshot s;
    s.counter("t_req_total{arch=\"A\"}", 3);
    s.counter("t_req_total{arch=\"B\"}", 4);
    s.gauge("t_depth", 2);
    obs::HistogramSnapshot h;
    h.buckets.assign(std::size_t(obs::Histogram::kBuckets), 0);
    h.buckets[0] = 2; // two samples <= 1
    h.buckets[1] = 1; // one sample <= 2
    h.count = 3;
    h.sum = 4;
    s.histogram("t_lat_us", h);

    const std::string text = obs::renderPrometheus(s);
    EXPECT_NE(text.find("# TYPE t_req_total counter"),
              std::string::npos);
    // One header for the two labelled series.
    EXPECT_EQ(text.find("# TYPE t_req_total counter"),
              text.rfind("# TYPE t_req_total counter"));
    EXPECT_NE(text.find("t_req_total{arch=\"A\"} 3"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE t_depth gauge"), std::string::npos);
    // Buckets are cumulative and end at +Inf == count.
    EXPECT_NE(text.find("t_lat_us_bucket{le=\"1\"} 2"),
              std::string::npos);
    EXPECT_NE(text.find("t_lat_us_bucket{le=\"2\"} 3"),
              std::string::npos);
    EXPECT_NE(text.find("t_lat_us_bucket{le=\"+Inf\"} 3"),
              std::string::npos);
    EXPECT_NE(text.find("t_lat_us_sum 4"), std::string::npos);
    EXPECT_NE(text.find("t_lat_us_count 3"), std::string::npos);
}

TEST(Metrics, ZeroCountHistogramDumpIsWellFormed)
{
    obs::Snapshot s;
    obs::HistogramSnapshot h;
    h.buckets.assign(std::size_t(obs::Histogram::kBuckets), 0);
    s.histogram("t_empty_us", h);

    const std::string text = obs::renderPrometheus(s);
    EXPECT_NE(text.find("# TYPE t_empty_us histogram"),
              std::string::npos);
    EXPECT_NE(text.find("t_empty_us_bucket{le=\"1\"} 0"),
              std::string::npos);
    EXPECT_NE(text.find("t_empty_us_bucket{le=\"+Inf\"} 0"),
              std::string::npos);
    EXPECT_NE(text.find("t_empty_us_sum 0"), std::string::npos);
    EXPECT_NE(text.find("t_empty_us_count 0"), std::string::npos);
}

TEST(Metrics, InfBucketSamplesStayCumulative)
{
    obs::Histogram h;
    h.observe((std::uint64_t(1) << 20) + 1); // first value past 2^20
    h.observe(std::uint64_t(1) << 40);       // far past every bound
    obs::Snapshot s;
    s.histogram("t_inf_us", h.snapshot());

    const std::string text = obs::renderPrometheus(s);
    // Every finite bucket is 0; +Inf picks up both samples.
    EXPECT_NE(text.find("t_inf_us_bucket{le=\"1048576\"} 0"),
              std::string::npos);
    EXPECT_NE(text.find("t_inf_us_bucket{le=\"+Inf\"} 2"),
              std::string::npos);
    EXPECT_NE(text.find("t_inf_us_count 2"), std::string::npos);
}

TEST(Metrics, ExemplarRendersAfterTheBucketLine)
{
    obs::Histogram h;
    h.observe(3);
    h.exemplar(3, "00112233445566778899aabbccddeeff");
    obs::Snapshot s;
    s.histogram("t_ex_us", h.snapshot());

    const std::string text = obs::renderPrometheus(s);
    EXPECT_NE(text.find("t_ex_us_bucket{le=\"4\"} 1 # "
                        "{trace_id=\"00112233445566778899aabbccddeeff"
                        "\"} 3"),
              std::string::npos);
    // Buckets without an exemplar keep the plain form.
    EXPECT_NE(text.find("t_ex_us_bucket{le=\"1\"} 0\n"),
              std::string::npos);
}

TEST(Metrics, ExemplarMergeKeepsFirstNonEmpty)
{
    obs::Histogram a;
    a.observe(2);
    a.exemplar(2, "aa0000000000000000000000000000aa");
    obs::Histogram b;
    b.observe(2);
    b.exemplar(2, "bb0000000000000000000000000000bb");
    obs::HistogramSnapshot merged = a.snapshot();
    merged.merge(b.snapshot());
    EXPECT_EQ(merged.count, 2u);
    EXPECT_EQ(merged.exemplars[1].traceId,
              "aa0000000000000000000000000000aa");

    // An empty slot takes the donor's exemplar instead.
    obs::Histogram c;
    c.observe(2);
    obs::HistogramSnapshot filled = c.snapshot();
    filled.merge(b.snapshot());
    EXPECT_EQ(filled.exemplars[1].traceId,
              "bb0000000000000000000000000000bb");
}

TEST(Metrics, ExemplarsStayOutOfTheJsonTelemetrySnapshot)
{
    auto &reg = obs::Registry::instance();
    obs::Histogram &h = reg.histogram("test_obs_exemplar_json_us");
    h.observe(5);
    h.exemplar(5, "cafecafecafecafecafecafecafecafe");
    const obs::Snapshot snap = reg.snapshot();
    // The JSON path (serve::Engine::telemetryJson) reads only
    // count/sum/buckets; the exemplar must ride the snapshot without
    // leaking into any byte-stable probe response. Guard the contract
    // here at the source: snapshots carry it in a dedicated field.
    const obs::HistogramSnapshot &hs =
        snap.histograms().at("test_obs_exemplar_json_us");
    EXPECT_EQ(hs.exemplars[3].traceId,
              "cafecafecafecafecafecafecafecafe");
}

TEST(Metrics, ConcurrentRecordVsCollect)
{
    // TSan coverage: observe()/exemplar() racing snapshot()/render.
    obs::Histogram h;
    std::atomic<bool> stop{false};
    std::thread writer([&] {
        std::uint64_t v = 0;
        while (!stop.load(std::memory_order_relaxed)) {
            h.observe(v % 4096);
            if (v % 64 == 0)
                h.exemplar(v % 4096,
                           "feedfeedfeedfeedfeedfeedfeedfeed");
            ++v;
        }
    });
    for (int i = 0; i < 200; ++i) {
        obs::Snapshot s;
        s.histogram("t_race_us", h.snapshot());
        const std::string text = obs::renderPrometheus(s);
        EXPECT_NE(text.find("t_race_us_count"), std::string::npos);
    }
    stop.store(true);
    writer.join();
    const obs::HistogramSnapshot last = h.snapshot();
    std::uint64_t bucketTotal = 0;
    for (std::uint64_t b : last.buckets)
        bucketTotal += b;
    EXPECT_EQ(bucketTotal, last.count);
}

TEST(Trace, ContextRoundTrip)
{
    obs::TraceContext ctx;
    ctx.traceHi = 0x0123456789abcdefULL;
    ctx.traceLo = 0xfedcba9876543210ULL;
    ctx.span = 0x1122334455667788ULL;
    const std::string wire = obs::encodeTraceContext(ctx);
    EXPECT_EQ(wire,
              "0123456789abcdeffedcba9876543210-1122334455667788");
    const obs::TraceContext back = obs::decodeTraceContext(wire);
    EXPECT_EQ(back.traceHi, ctx.traceHi);
    EXPECT_EQ(back.traceLo, ctx.traceLo);
    EXPECT_EQ(back.span, ctx.span);

    EXPECT_THROW(obs::decodeTraceContext(""), util::FatalError);
    EXPECT_THROW(obs::decodeTraceContext("abc"), util::FatalError);
    EXPECT_THROW(
        obs::decodeTraceContext(
            "0123456789abcdeffedcba9876543210+1122334455667788"),
        util::FatalError);
    EXPECT_THROW(
        obs::decodeTraceContext(
            "0123456789abcdeffedcba987654321g-1122334455667788"),
        util::FatalError);
    EXPECT_THROW( // zero trace id is reserved for "no trace"
        obs::decodeTraceContext(
            "00000000000000000000000000000000-1122334455667788"),
        util::FatalError);
}

TEST(Trace, NewContextsAreValidAndDistinct)
{
    const obs::TraceContext a = obs::newTraceContext();
    const obs::TraceContext b = obs::newTraceContext();
    EXPECT_TRUE(a.valid());
    EXPECT_TRUE(b.valid());
    EXPECT_FALSE(a.traceHi == b.traceHi && a.traceLo == b.traceLo);
    EXPECT_NE(obs::newSpanId(), obs::newSpanId());
}

TEST(Trace, SpanArgsFormat)
{
    obs::TraceContext ctx;
    ctx.traceHi = 1;
    ctx.traceLo = 2;
    EXPECT_EQ(obs::spanArgs(ctx, 3, 0),
              "{\"trace\":\"00000000000000010000000000000002\","
              "\"span\":\"0000000000000003\"}");
    EXPECT_EQ(obs::spanArgs(ctx, 3, 4, "\"id\":7"),
              "{\"trace\":\"00000000000000010000000000000002\","
              "\"span\":\"0000000000000003\","
              "\"parent\":\"0000000000000004\",\"id\":7}");
    EXPECT_EQ(obs::spanArgs(std::string(32, 'a'), 3, 4),
              "{\"trace\":\"" + std::string(32, 'a') +
                  "\",\"span\":\"0000000000000003\","
                  "\"parent\":\"0000000000000004\"}");
}

TEST(Trace, DrainWhileRecordingKeepsTheSinkLive)
{
    obs::TraceSink &sink = obs::TraceSink::instance();
    sink.enable(""); // live mode: no file, drain()-only
    {
        obs::Span a("live-a", "test");
    }
    EXPECT_EQ(sink.eventCount(), 1u);

    const std::vector<obs::TraceEvent> first = sink.drain();
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(first[0].name, "live-a");
    EXPECT_TRUE(sink.enabled()); // unlike flush(), drain keeps going
    EXPECT_EQ(sink.eventCount(), 0u);

    {
        obs::Span b("live-b", "test");
    }
    const std::vector<obs::TraceEvent> second = sink.drain();
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(second[0].name, "live-b");

    // flush() must refuse in live mode and leave the buffer alone.
    {
        obs::Span c("live-c", "test");
    }
    EXPECT_FALSE(sink.flush());
    EXPECT_TRUE(sink.enabled());
    EXPECT_EQ(sink.eventCount(), 1u);
    sink.disable();
    sink.drain();
}

TEST(Trace, DrainRacesRecordingCleanly)
{
    obs::TraceSink &sink = obs::TraceSink::instance();
    sink.enable("");
    std::atomic<bool> stop{false};
    std::atomic<bool> started{false};
    std::thread writer([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            obs::TraceEvent ev;
            ev.name = "racer";
            sink.record(std::move(ev));
            started.store(true, std::memory_order_release);
        }
    });
    while (!started.load(std::memory_order_acquire))
        std::this_thread::yield();
    std::size_t drained = 0;
    for (int i = 0; i < 100; ++i)
        drained += sink.drain().size();
    stop.store(true);
    writer.join();
    drained += sink.drain().size();
    EXPECT_GT(drained, 0u);
    EXPECT_EQ(sink.eventCount(), 0u);
    sink.disable();
}

TEST(Trace, HeadSamplingIsAPureHashOfTheTraceId)
{
    obs::TraceSink &sink = obs::TraceSink::instance();
    obs::TraceContext ctx;
    ctx.traceHi = 0x1234;
    ctx.traceLo = 0x5678;

    sink.setSampling(1.0, 0);
    EXPECT_TRUE(sink.headSampled(ctx));
    EXPECT_TRUE(sink.keep(ctx, 0));

    sink.setSampling(0.0, 0);
    EXPECT_FALSE(sink.headSampled(ctx));
    EXPECT_FALSE(sink.keep(ctx, 1u << 30));

    // Same id, same verdict — the fleet-wide coherence property.
    sink.setSampling(0.5, 0);
    const bool verdict = sink.headSampled(ctx);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(sink.headSampled(ctx), verdict);

    // At rate 0.5 a run of fresh ids lands on both sides.
    int kept = 0;
    for (int i = 0; i < 256; ++i)
        kept += sink.headSampled(obs::newTraceContext()) ? 1 : 0;
    EXPECT_GT(kept, 0);
    EXPECT_LT(kept, 256);
    sink.setSampling(1.0, 0);
}

TEST(Trace, TailKeepOverridesAHeadDrop)
{
    obs::TraceSink &sink = obs::TraceSink::instance();
    obs::TraceContext dropped;
    dropped.traceHi = 1;
    dropped.traceLo = 1;
    sink.setSampling(0.0, 1000);
    EXPECT_FALSE(sink.headSampled(dropped));
    EXPECT_FALSE(sink.keep(dropped, 999)); // under the threshold
    EXPECT_TRUE(sink.keep(dropped, 1000)); // at the threshold
    EXPECT_TRUE(sink.keep(dropped, 5000));
    sink.setSampling(1.0, 0);
}

TEST(Trace, ChromeJsonByteFormat)
{
    std::vector<obs::TraceEvent> events(2);
    events[0].name = "a \"quoted\"";
    events[0].tid = 1;
    events[0].ts = 10;
    events[0].dur = 5;
    events[1].name = "b";
    events[1].cat = "cat";
    events[1].ts = 20;
    events[1].dur = 0;
    events[1].args = "{\"k\":1}";

    std::ostringstream os;
    obs::writeChromeTraceJson(os, events, {{"tool", "t"}}, "ns");
    EXPECT_EQ(os.str(),
              "{\"traceEvents\":[\n"
              "{\"name\":\"a \\\"quoted\\\"\",\"ph\":\"X\",\"pid\":0,"
              "\"tid\":1,\"ts\":10,\"dur\":5},\n"
              "{\"name\":\"b\",\"cat\":\"cat\",\"ph\":\"X\",\"pid\":0,"
              "\"tid\":0,\"ts\":20,\"dur\":0,\"args\":{\"k\":1}}\n"
              "],\n"
              "\"displayTimeUnit\":\"ns\",\n"
              "\"metadata\":{\"tool\":\"t\"}}\n");
}

TEST(Trace, DisabledSinkRecordsNothing)
{
    obs::TraceSink &sink = obs::TraceSink::instance();
    ASSERT_FALSE(sink.enabled());
    const std::size_t before = sink.eventCount();
    {
        obs::Span span("should-not-appear");
    }
    EXPECT_EQ(sink.eventCount(), before);
}

TEST(Trace, SpansFlushToAParseableChromeTrace)
{
    const std::string path = scratchPath("trace.json");
    obs::TraceSink &sink = obs::TraceSink::instance();
    sink.enable(path);
    {
        obs::Span outer("outer", "test", "{\"n\":1}");
        obs::Span inner("inner", "test");
    }
    std::thread([] { obs::Span t("from-thread"); }).join();
    EXPECT_EQ(sink.eventCount(), 3u);
    ASSERT_TRUE(sink.flush());
    EXPECT_FALSE(sink.enabled());
    EXPECT_EQ(sink.eventCount(), 0u);

    std::ifstream is(path);
    ASSERT_TRUE(bool(is));
    std::stringstream buf;
    buf << is.rdbuf();
    const auto doc = util::json::parse(buf.str());
    const auto &events = doc.asObject().at("traceEvents").asArray();
    ASSERT_EQ(events.size(), 3u);
    bool sawOuter = false;
    for (const auto &ev : events) {
        const auto &o = ev.asObject();
        EXPECT_EQ(o.at("ph").asString(), "X");
        if (o.at("name").asString() == "outer") {
            sawOuter = true;
            EXPECT_EQ(o.at("args").asObject().at("n").asUint64(), 1u);
        }
    }
    EXPECT_TRUE(sawOuter);
    fs::remove(path);
}

TEST(Probe, MetricsProbeTalliesPerArchCounters)
{
    auto &reg = obs::Registry::instance();
    obs::Counter &runs =
        reg.counter("ganacc_sim_runs_total{arch=\"ZFOST\"}");
    obs::Counter &cycles =
        reg.counter("ganacc_sim_cycles_total{arch=\"ZFOST\"}");
    const std::uint64_t runs0 = runs.value();
    const std::uint64_t cycles0 = cycles.value();

    obs::MetricsProbe probe;
    obs::setRunProbe(&probe);
    core::Zfost arch(sim::Unroll{.pOf = 2, .pOx = 3, .pOy = 3});
    const sim::RunStats st = arch.run(smallSpec());
    obs::setRunProbe(nullptr);

    EXPECT_EQ(runs.value(), runs0 + 1);
    EXPECT_EQ(cycles.value(), cycles0 + st.cycles);
}

TEST(Telemetry, ConfigFromEnvReadsAllThreeKnobs)
{
    ::setenv("GANACC_TRACE", "t.json", 1);
    ::setenv("GANACC_EVENTS", "e.jsonl", 1);
    ::setenv("GANACC_METRICS", "m.prom", 1);
    const obs::TelemetryConfig cfg = obs::configFromEnv();
    ::unsetenv("GANACC_TRACE");
    ::unsetenv("GANACC_EVENTS");
    ::unsetenv("GANACC_METRICS");
    EXPECT_EQ(cfg.tracePath, "t.json");
    EXPECT_EQ(cfg.eventsPath, "e.jsonl");
    EXPECT_EQ(cfg.metricsPath, "m.prom");
    EXPECT_TRUE(cfg.any());
}

TEST(Telemetry, RunStatsAreBitIdenticalWithTelemetryOn)
{
    const sim::ConvSpec spec = smallSpec();
    core::Zfost arch(sim::Unroll{.pOf = 2, .pOx = 3, .pOy = 3});

    ASSERT_FALSE(obs::telemetryEnabled());
    const std::string off = sim::toJson(arch.run(spec));

    obs::TelemetryConfig cfg;
    cfg.tracePath = scratchPath("parity-trace.json");
    cfg.metricsPath = scratchPath("parity-metrics.prom");
    obs::enableTelemetry(cfg);
    ASSERT_TRUE(obs::telemetryEnabled());
    ASSERT_NE(obs::runProbe(), nullptr);
    const std::string on = sim::toJson(arch.run(spec));
    obs::shutdownTelemetry();
    ASSERT_FALSE(obs::telemetryEnabled());

    // Observation must never feed back into the simulation.
    EXPECT_EQ(off, on);
    EXPECT_EQ(off, sim::toJson(arch.run(spec)));
    fs::remove(cfg.tracePath);
    fs::remove(cfg.metricsPath);
}

TEST(Telemetry, SweepFrontierIsIdenticalWithTelemetryOn)
{
    core::DseConstraints cons;
    cons.budget = core::vcu9pBudget();
    cons.maxWPof = 12;
    const gan::GanModel model = gan::makeMnistGan();

    const auto off = core::sweepFrontier(cons, model);

    obs::TelemetryConfig cfg;
    cfg.tracePath = scratchPath("sweep-trace.json");
    obs::enableTelemetry(cfg);
    const auto on = core::sweepFrontier(cons, model);
    obs::shutdownTelemetry();

    ASSERT_EQ(off.size(), on.size());
    for (std::size_t i = 0; i < off.size(); ++i) {
        EXPECT_EQ(off[i].wPof, on[i].wPof);
        EXPECT_EQ(off[i].stPof, on[i].stPof);
        EXPECT_EQ(off[i].iterationCycles, on[i].iterationCycles);
        EXPECT_EQ(off[i].samplesPerSecond, on[i].samplesPerSecond);
        EXPECT_EQ(off[i].feasible(), on[i].feasible());
    }
    fs::remove(cfg.tracePath);
}

TEST(Telemetry, EventLogWritesParseableJsonLines)
{
    obs::TelemetryConfig cfg;
    cfg.eventsPath = scratchPath("events.jsonl");
    obs::enableTelemetry(cfg);
    ASSERT_TRUE(obs::EventLog::instance().enabled());
    obs::EventLog::instance().log("test.event", "\"k\":42");
    obs::shutdownTelemetry();
    EXPECT_FALSE(obs::EventLog::instance().enabled());

    std::ifstream is(cfg.eventsPath);
    ASSERT_TRUE(bool(is));
    std::string line;
    ASSERT_TRUE(std::getline(is, line));
    const auto doc = util::json::parse(line);
    EXPECT_EQ(doc.asObject().at("ev").asString(), "test.event");
    EXPECT_EQ(doc.asObject().at("k").asUint64(), 42u);
    fs::remove(cfg.eventsPath);
}

TEST(Telemetry, ShutdownDumpsPrometheusMetrics)
{
    obs::Registry::instance()
        .counter("test_obs_dumped_total", "landed in the dump")
        .add(5);
    obs::TelemetryConfig cfg;
    cfg.metricsPath = scratchPath("metrics.prom");
    obs::enableTelemetry(cfg);
    obs::shutdownTelemetry();

    std::ifstream is(cfg.metricsPath);
    ASSERT_TRUE(bool(is));
    std::stringstream buf;
    buf << is.rdbuf();
    EXPECT_NE(buf.str().find("test_obs_dumped_total 5"),
              std::string::npos);
    EXPECT_NE(buf.str().find("# TYPE test_obs_dumped_total counter"),
              std::string::npos);
    fs::remove(cfg.metricsPath);
}

TEST(Telemetry, Sigusr1DumpIsServicedOffTheHandler)
{
    const std::string path = scratchPath("sigusr1.prom");
    obs::installMetricsDumpSignal(path);
    EXPECT_FALSE(obs::serviceMetricsDump()); // nothing requested yet
    ASSERT_EQ(::raise(SIGUSR1), 0);
    EXPECT_TRUE(obs::serviceMetricsDump());
    EXPECT_FALSE(obs::serviceMetricsDump()); // one dump per signal
    std::ifstream is(path);
    ASSERT_TRUE(bool(is));
    fs::remove(path);
}

} // namespace
