/**
 * @file
 * ganacc-faultsim — fault-injection campaign runner.
 *
 * Sweeps one FaultPlan (from flags or --plan JSON) over the Table V
 * (phase-family x architecture) matrix and reports, per architecture:
 * the transient-upset masking rate, the output RMSE vs the fault-free
 * reference, and (when a storage flip probability is set) the
 * traffic-proportional memory-corruption RMSE. Optional extras: a
 * twin-trainer degradation run (--trainer-iters) and a saturation
 * stress cross-check against the static range analysis
 * (--stress-frac-bits).
 *
 * Fully deterministic for a fixed seed: re-running with any --jobs
 * value reproduces every byte of the output.
 */

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>

#include "core/cycle_cache.hh"
#include "fault/campaign.hh"
#include "fault/fault_plan.hh"
#include "fault/mem_faults.hh"
#include "gan/models.hh"
#include "serve/result_store.hh"
#include "sim/phase.hh"
#include "util/args.hh"
#include "util/logging.hh"
#include "util/strings.hh"
#include "verify/diagnostics.hh"
#include "verify/range_analysis.hh"

namespace {

using namespace ganacc;

gan::GanModel
pickModel(const std::string &name)
{
    if (name == "dcgan")
        return gan::makeDcgan();
    if (name == "mnist-gan")
        return gan::makeMnistGan();
    if (name == "cgan")
        return gan::makeCgan();
    if (name == "context-encoder")
        return gan::makeContextEncoder();
    util::fatal("unknown model '", name,
                "' (dcgan, mnist-gan, cgan, context-encoder)");
}

void
printText(const fault::CampaignResult &result, bool memory_active)
{
    std::cout << "cell results (rows x architectures):\n";
    std::cout << std::left << std::setw(8) << "row" << std::setw(10)
              << "arch" << std::right << std::setw(10) << "armed"
              << std::setw(10) << "fired" << std::setw(10) << "masked"
              << std::setw(12) << "mask-rate" << std::setw(14)
              << "output-rmse";
    if (memory_active)
        std::cout << std::setw(10) << "flips" << std::setw(12)
                  << "mem-rmse";
    std::cout << "\n";
    for (const auto &cell : result.cells) {
        std::cout << std::left << std::setw(8) << cell.row
                  << std::setw(10) << cell.arch << std::right
                  << std::setw(10) << cell.mac.armed << std::setw(10)
                  << cell.mac.fired << std::setw(10)
                  << cell.mac.masked() << std::setw(12) << std::fixed
                  << std::setprecision(4) << cell.mac.maskingRate()
                  << std::setw(14) << std::setprecision(6)
                  << cell.outputRmse;
        if (memory_active)
            std::cout << std::setw(10) << cell.memFlips << std::setw(12)
                      << std::setprecision(6) << cell.memRmse;
        std::cout << "\n";
    }
    std::cout << "\nper-architecture summary:\n";
    std::cout << std::left << std::setw(10) << "arch" << std::right
              << std::setw(10) << "armed" << std::setw(10) << "masked"
              << std::setw(12) << "mask-rate" << std::setw(14)
              << "output-rmse";
    if (memory_active)
        std::cout << std::setw(10) << "flips" << std::setw(12)
                  << "mem-rmse";
    std::cout << "\n";
    for (const auto &s : result.archs) {
        std::cout << std::left << std::setw(10) << s.arch << std::right
                  << std::setw(10) << s.armed << std::setw(10)
                  << (s.armed - s.fired) << std::setw(12) << std::fixed
                  << std::setprecision(4) << s.maskingRate
                  << std::setw(14) << std::setprecision(6)
                  << s.outputRmse;
        if (memory_active)
            std::cout << std::setw(10) << s.memFlips << std::setw(12)
                      << std::setprecision(6) << s.memRmse;
        std::cout << "\n";
    }
}

void
printJson(const fault::CampaignResult &result)
{
    for (const auto &cell : result.cells) {
        std::cout << "{\"row\":\"" << util::escapeJson(cell.row)
                  << "\",\"arch\":\"" << util::escapeJson(cell.arch)
                  << "\",\"armed\":" << cell.mac.armed
                  << ",\"fired\":" << cell.mac.fired
                  << ",\"masked\":" << cell.mac.masked()
                  << ",\"maskingRate\":" << cell.mac.maskingRate()
                  << ",\"outputRmse\":" << cell.outputRmse
                  << ",\"memFlips\":" << cell.memFlips
                  << ",\"memRmse\":" << cell.memRmse << "}\n";
    }
}

void
saturationCrossCheck(const gan::GanModel &model, int frac_bits)
{
    // Static prediction: the range analysis' worst peak names the
    // integer bits the writeback format must keep. Stressing a format
    // that keeps them must not clip the analysis' own peak value.
    verify::Report report;
    verify::RangeOptions opts;
    opts.fracBits = frac_bits;
    const verify::RangeAnalysis ranges =
        verify::analyzeRanges(model, opts, report);
    const int needed = verify::requiredIntBits(ranges.worstPeak);
    std::cout << "\nsaturation stress (forced Q" << (15 - frac_bits)
              << "." << frac_bits << " writeback):\n";
    std::cout << "  static worst peak " << ranges.worstPeak
              << " -> needs " << needed << " integer bits; format has "
              << (15 - frac_bits) << "\n";

    tensor::Tensor probe(1, 1, 1, 2);
    probe.data()[0] = float(ranges.worstPeak);
    probe.data()[1] = -float(ranges.worstPeak);
    fault::SaturationStress stress =
        fault::stressSaturation(probe, frac_bits);
    std::cout << "  stressing the peak value: " << stress.saturated
              << "/" << stress.total << " elements clipped, rmse "
              << stress.rmseVsFloat << "\n";
    const bool clipped = stress.saturated > 0;
    const bool predicted = needed == -1 || needed > 15 - frac_bits;
    std::cout << "  cross-check: static analysis "
              << (predicted ? "predicts" : "rules out")
              << " saturation, stress "
              << (clipped ? "observed" : "did not observe") << " it -> "
              << (clipped == predicted ? "CONSISTENT" : "MISMATCH")
              << "\n";
}

} // namespace

int
main(int argc, char **argv)
try {
    util::ArgParser args(argc, argv);
    const std::string model_name = args.getString(
        "model", "mnist-gan", "network whose jobs are fault-injected");
    const std::string plan_file = args.getString(
        "plan", "", "JSON fault plan (overrides the flag-built plan)");
    const int seed = args.getInt("seed", 1, "campaign seed");
    const int sites = args.getInt(
        "sites", 256, "transient sites armed per job (dense lattice)");
    const int bits =
        args.getInt("bits", 1, "bits flipped per fired transient");
    const int pe_lane = args.getInt(
        "pe-lane", -1, "stuck-at faulty PE lane (-1 disables)");
    const double pe_stuck_value = args.getDouble(
        "pe-stuck-value", 0.0,
        "forced product of the faulty lane (0 = stuck-at-zero)");
    const double flip_prob = args.getDouble(
        "flip-prob", 0.0, "storage bit-flip probability per word access");
    const int stress_frac_bits = args.getInt(
        "stress-frac-bits", -1,
        "force Q(15-n).n writeback and cross-check the range analysis");
    const int trainer_iters = args.getInt(
        "trainer-iters", 0,
        "twin-trainer degradation iterations (0 disables)");
    const int trainer_batch =
        args.getInt("trainer-batch", 2, "degradation mini-batch size");
    const std::string format =
        args.getString("format", "text", "output format: text | json");
    const bool no_ablation = args.getFlag(
        "no-nlr-skip", "drop the improved-NLR ablation column");
    const int jobs = args.getJobs();
    // Fault-free reference runs go through the cycle cache, so a
    // campaign benefits from a warm result store like any sweep; the
    // summary goes to stderr to keep --format json parseable.
    serve::ScopedDiskCache disk_cache(args.getCacheDir());
    if (args.helpRequested()) {
        args.usage(std::cout);
        return 0;
    }
    args.finish();
    if (format != "text" && format != "json")
        util::fatal("unknown --format '", format, "' (text, json)");

    const gan::GanModel model = pickModel(model_name);

    fault::FaultPlan plan;
    if (!plan_file.empty()) {
        plan = fault::FaultPlan::fromFile(plan_file);
    } else {
        plan.seed = std::uint64_t(seed);
        plan.transient.sitesPerJob = sites;
        plan.transient.bits = bits;
        plan.memory.flipProbPerAccess = flip_prob;
        if (pe_lane >= 0) {
            fault::PeFault f;
            f.lane = pe_lane;
            f.kind = pe_stuck_value == 0.0
                         ? fault::PeFault::Kind::StuckAtZero
                         : fault::PeFault::Kind::StuckAtValue;
            f.value = float(pe_stuck_value);
            plan.peFaults.push_back(f);
        }
        if (stress_frac_bits != -1)
            plan.saturation.fracBits = stress_frac_bits;
    }

    fault::CampaignOptions opt;
    opt.dataSeed = plan.seed;
    opt.jobs = jobs;
    opt.nlrSkipAblation = !no_ablation;

    if (format == "text") {
        std::cout << "model: " << model.name << "\n";
        std::cout << "plan:  " << plan.describe() << "\n\n";
    }
    const fault::CampaignResult result =
        fault::runResilienceCampaign(model, plan, opt);
    if (format == "json")
        printJson(result);
    else
        printText(result, plan.memory.flipProbPerAccess > 0.0);

    if (plan.saturation.fracBits != -1 && format == "text")
        saturationCrossCheck(model, plan.saturation.fracBits);

    if (trainer_iters > 0) {
        const fault::TrainerDegradation deg =
            fault::runTrainerDegradation(model, plan, trainer_iters,
                                         trainer_batch, plan.seed);
        if (format == "json") {
            std::cout << "{\"trainerIterations\":" << deg.iterations
                      << ",\"weightFlips\":" << deg.weightFlips
                      << ",\"meanAbsDiscLossDelta\":"
                      << deg.meanAbsDiscLossDelta
                      << ",\"meanAbsGenLossDelta\":"
                      << deg.meanAbsGenLossDelta
                      << ",\"weightRmse\":" << deg.weightRmse << "}\n";
        } else {
            std::cout << "\ntrainer degradation (" << deg.iterations
                      << " iterations, batch " << trainer_batch
                      << "):\n";
            std::cout << "  weight flips injected: " << deg.weightFlips
                      << "\n";
            std::cout << "  mean |disc loss delta|: "
                      << deg.meanAbsDiscLossDelta << "\n";
            std::cout << "  mean |gen loss delta|:  "
                      << deg.meanAbsGenLossDelta << "\n";
            std::cout << "  final disc loss clean/faulty: "
                      << deg.cleanFinalDiscLoss << " / "
                      << deg.faultyFinalDiscLoss << "\n";
            std::cout << "  parameter rmse: " << deg.weightRmse << "\n";
        }
    }
    std::cerr << "[" << core::CycleCache::instance().summary();
    if (disk_cache.attached())
        std::cerr << "; " << disk_cache.store()->summary();
    std::cerr << "]\n";
    return 0;
} catch (const util::FatalError &e) {
    std::cerr << "ganacc-faultsim: " << e.what() << "\n";
    return 2;
}
