/**
 * @file
 * Checkpoint serialization tests: exact round trips (including BN
 * state), loud failures on mismatched topologies and corrupt files.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "gan/models.hh"
#include "gan/network.hh"
#include "gan/serialize.hh"
#include "tensor/tensor.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace {

using namespace ganacc;
using tensor::maxAbsDiff;
using tensor::Tensor;
using util::FatalError;
using util::Rng;

/** Temp-file path helper with RAII cleanup. */
class TempFile
{
  public:
    explicit TempFile(const std::string &name)
        : path_(std::string("/tmp/ganacc_test_") + name)
    {
    }
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

gan::GanModel
smallModel(bool bn)
{
    std::vector<gan::LayerSpec> disc;
    gan::LayerSpec l1;
    l1.kind = nn::ConvKind::Strided;
    l1.act = nn::Activation::LeakyReLU;
    l1.batchNorm = bn;
    l1.inChannels = 1;
    l1.outChannels = 4;
    l1.inH = l1.inW = 8;
    l1.geom = nn::Conv2dGeom{4, 2, 1, 0};
    disc.push_back(l1);
    gan::LayerSpec head;
    head.kind = nn::ConvKind::Strided;
    head.act = nn::Activation::None;
    head.inChannels = 4;
    head.outChannels = 1;
    head.inH = head.inW = 4;
    head.geom = nn::Conv2dGeom{4, 1, 0, 0};
    disc.push_back(head);
    return gan::makeModel("ser", std::move(disc), 8);
}

TEST(Serialize, TensorRecordRoundTrip)
{
    Rng rng(1);
    Tensor t(2, 3, 4, 5);
    t.fillUniform(rng);
    std::stringstream ss;
    gan::writeTensor(ss, t);
    Tensor back = gan::readTensor(ss);
    EXPECT_EQ(back.shape(), t.shape());
    EXPECT_EQ(maxAbsDiff(back, t), 0.0f);
}

TEST(Serialize, TruncatedTensorFailsLoudly)
{
    Rng rng(2);
    Tensor t(1, 1, 4, 4);
    t.fillUniform(rng);
    std::stringstream ss;
    gan::writeTensor(ss, t);
    std::string data = ss.str();
    std::stringstream cut(data.substr(0, data.size() - 8));
    EXPECT_THROW(gan::readTensor(cut), FatalError);
}

TEST(Serialize, NetworkRoundTripExact)
{
    gan::GanModel m = smallModel(false);
    Rng rng(3);
    gan::Network a(m.disc, rng);
    TempFile f("net.ckpt");
    gan::saveNetwork(a, f.path());

    Rng rng2(999); // different init — must be overwritten by load
    gan::Network b(m.disc, rng2);
    gan::loadNetwork(b, f.path());
    for (std::size_t i = 0; i < a.layers().size(); ++i)
        EXPECT_EQ(maxAbsDiff(a.layers()[i]->weights(),
                             b.layers()[i]->weights()),
                  0.0f);

    // Loaded network computes identically.
    Tensor img(2, 1, 8, 8);
    img.fillUniform(rng);
    EXPECT_EQ(maxAbsDiff(a.forward(img), b.forward(img)), 0.0f);
}

TEST(Serialize, BatchNormStateRoundTrips)
{
    gan::GanModel m = smallModel(true);
    Rng rng(4);
    gan::Network a(m.disc, rng);
    // Give the BN non-default running stats.
    Tensor warm(8, 1, 8, 8);
    warm.fillGaussian(rng, 1.0f, 2.0f);
    a.forward(warm);
    TempFile f("bn.ckpt");
    gan::saveNetwork(a, f.path());

    Rng rng2(5);
    gan::Network b(m.disc, rng2);
    gan::loadNetwork(b, f.path());
    auto *bn_a = a.layers()[0]->batchNorm();
    auto *bn_b = b.layers()[0]->batchNorm();
    ASSERT_NE(bn_b, nullptr);
    EXPECT_EQ(maxAbsDiff(bn_a->runningMean(), bn_b->runningMean()),
              0.0f);
    EXPECT_EQ(maxAbsDiff(bn_a->runningVar(), bn_b->runningVar()),
              0.0f);
    EXPECT_EQ(maxAbsDiff(bn_a->gamma(), bn_b->gamma()), 0.0f);
}

TEST(Serialize, TopologyMismatchRejected)
{
    gan::GanModel m1 = smallModel(false);
    gan::GanModel m2 = smallModel(true); // extra BN tensors
    Rng rng(6);
    gan::Network a(m1.disc, rng);
    TempFile f("mismatch.ckpt");
    gan::saveNetwork(a, f.path());
    gan::Network b(m2.disc, rng);
    EXPECT_THROW(gan::loadNetwork(b, f.path()), FatalError);
}

TEST(Serialize, GarbageFileRejected)
{
    TempFile f("garbage.ckpt");
    std::ofstream os(f.path(), std::ios::binary);
    os << "this is not a checkpoint at all, sorry";
    os.close();
    gan::GanModel m = smallModel(false);
    Rng rng(7);
    gan::Network n(m.disc, rng);
    EXPECT_THROW(gan::loadNetwork(n, f.path()), FatalError);
}

TEST(Serialize, MissingFileRejected)
{
    gan::GanModel m = smallModel(false);
    Rng rng(8);
    gan::Network n(m.disc, rng);
    EXPECT_THROW(gan::loadNetwork(n, "/nonexistent/dir/x.ckpt"),
                 FatalError);
}

} // namespace
