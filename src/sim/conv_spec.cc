/**
 * @file
 * ConvSpec implementation.
 */

#include "sim/conv_spec.hh"

#include <sstream>

#include "util/logging.hh"

namespace ganacc {
namespace sim {

using tensor::Shape4;
using tensor::Tensor;

namespace {

/** Structural-zero test along one axis. */
bool
axisIsZero(int c, int zero_stride, int orig)
{
    if (zero_stride <= 1)
        return false;
    if (c % zero_stride != 0)
        return true;
    if (orig >= 0 && c / zero_stride >= orig)
        return true; // trailing output-padding rows
    return false;
}

} // namespace

bool
ConvSpec::inputIsZero(int y, int x) const
{
    return inputRowZero(y) || inputColZero(x);
}

bool
ConvSpec::kernelIsZero(int ky, int kx) const
{
    return kernelRowZero(ky) || kernelColZero(kx);
}

bool
ConvSpec::inputRowZero(int y) const
{
    return axisIsZero(y, inZeroStride, inOrigH);
}

bool
ConvSpec::inputColZero(int x) const
{
    return axisIsZero(x, inZeroStride, inOrigW);
}

bool
ConvSpec::kernelRowZero(int ky) const
{
    return axisIsZero(ky, kZeroStride, kOrigH);
}

bool
ConvSpec::kernelColZero(int kx) const
{
    return axisIsZero(kx, kZeroStride, kOrigW);
}

std::uint64_t
ConvSpec::denseMacs() const
{
    return std::uint64_t(nof) * nif * oh * ow * kh * kw;
}

std::uint64_t
ConvSpec::effectiveMacs() const
{
    // For each kernel position, count output positions whose input
    // coordinate is in-bounds and non-zero; separable per axis.
    std::uint64_t total = 0;
    for (int ky = 0; ky < kh; ++ky) {
        for (int kx = 0; kx < kw; ++kx) {
            if (kernelIsZero(ky, kx))
                continue;
            int rows = countNonzeroCoords(0, oh, stride, ky, pad, ih,
                                          inZeroStride, inOrigH);
            int cols = countNonzeroCoords(0, ow, stride, kx, pad, iw,
                                          inZeroStride, inOrigW);
            total += std::uint64_t(rows) * cols;
        }
    }
    return total * std::uint64_t(nof) * nif;
}

void
ConvSpec::validate() const
{
    GANACC_ASSERT(nif > 0 && nof > 0 && ih > 0 && iw > 0 && kh > 0 &&
                      kw > 0 && oh > 0 && ow > 0 && stride > 0 &&
                      pad >= 0,
                  "malformed spec ", describe());
    GANACC_ASSERT(inZeroStride >= 1 && kZeroStride >= 1,
                  "bad zero strides in ", describe());
    // The last output's receptive field must still overlap the input
    // (cropping below the natural extent is allowed for W-CONV).
    GANACC_ASSERT((oh - 1) * stride - pad < ih,
                  "output taller than the input supports: ", describe());
    GANACC_ASSERT((ow - 1) * stride - pad < iw,
                  "output wider than the input supports: ", describe());
}

std::string
ConvSpec::describe() const
{
    std::ostringstream os;
    os << label << " [in " << nif << "x" << ih << "x" << iw;
    if (inZeroStride > 1)
        os << " (z" << inZeroStride << ")";
    os << ", k " << kh << "x" << kw;
    if (kZeroStride > 1)
        os << " (z" << kZeroStride << ")";
    os << ", out " << nof << "x" << oh << "x" << ow << ", s" << stride
       << " p" << pad << (fourDimOutput ? ", 4D" : "") << "]";
    return os.str();
}

int
countNonzeroCoords(int t0, int len, int stride, int k, int pad, int extent,
                   int zero_stride, int orig)
{
    int count = 0;
    for (int t = t0; t < t0 + len; ++t) {
        int c = t * stride + k - pad;
        if (c < 0 || c >= extent)
            continue;
        if (!axisIsZero(c, zero_stride, orig))
            ++count;
    }
    return count;
}

Tensor
makeStreamedInput(const ConvSpec &spec, util::Rng &rng)
{
    Tensor in(Shape4(1, spec.nif, spec.ih, spec.iw), 0.0f);
    for (int c = 0; c < spec.nif; ++c)
        for (int y = 0; y < spec.ih; ++y)
            for (int x = 0; x < spec.iw; ++x)
                if (!spec.inputIsZero(y, x))
                    in.ref(0, c, y, x) = rng.uniformf(-1.0f, 1.0f);
    return in;
}

Tensor
makeStreamedKernel(const ConvSpec &spec, util::Rng &rng)
{
    int kif = spec.fourDimOutput ? 1 : spec.nif;
    Tensor w(Shape4(spec.nof, kif, spec.kh, spec.kw), 0.0f);
    for (int of = 0; of < spec.nof; ++of)
        for (int c = 0; c < kif; ++c)
            for (int ky = 0; ky < spec.kh; ++ky)
                for (int kx = 0; kx < spec.kw; ++kx)
                    if (!spec.kernelIsZero(ky, kx))
                        w.ref(of, c, ky, kx) = rng.uniformf(-1.0f, 1.0f);
    return w;
}

Tensor
makeOutputTensor(const ConvSpec &spec)
{
    if (spec.fourDimOutput)
        return Tensor(Shape4(spec.nof, spec.nif, spec.oh, spec.ow), 0.0f);
    return Tensor(Shape4(1, spec.nof, spec.oh, spec.ow), 0.0f);
}

Tensor
genericConvRef(const ConvSpec &spec, const Tensor &in, const Tensor &w)
{
    spec.validate();
    GANACC_ASSERT(in.shape() == Shape4(1, spec.nif, spec.ih, spec.iw),
                  "streamed input shape mismatch for ", spec.describe());
    Tensor out = makeOutputTensor(spec);
    for (int of = 0; of < spec.nof; ++of) {
        for (int c = 0; c < spec.nif; ++c) {
            int wc = spec.fourDimOutput ? 0 : c;
            for (int oy = 0; oy < spec.oh; ++oy)
                for (int ox = 0; ox < spec.ow; ++ox) {
                    double acc = 0.0;
                    for (int ky = 0; ky < spec.kh; ++ky)
                        for (int kx = 0; kx < spec.kw; ++kx) {
                            int iy = oy * spec.stride + ky - spec.pad;
                            int ix = ox * spec.stride + kx - spec.pad;
                            acc += double(in.getPadded(0, c, iy, ix)) *
                                   w.get(of, wc, ky, kx);
                        }
                    if (spec.fourDimOutput)
                        out.ref(of, c, oy, ox) = float(acc);
                    else
                        out.ref(0, of, oy, ox) += float(acc);
                }
        }
    }
    return out;
}

} // namespace sim
} // namespace ganacc
