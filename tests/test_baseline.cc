/**
 * @file
 * Tests for the CPU/GPU roofline baselines and the Fig. 19
 * comparison's shape: the accelerator beats the CPU by ~8x in
 * throughput and every baseline in energy efficiency.
 */

#include <gtest/gtest.h>

#include "baseline/cpu_gpu_model.hh"
#include "core/accelerator.hh"
#include "gan/models.hh"

namespace {

using namespace ganacc;
using baseline::DeviceModel;

TEST(Baseline, DeviceCatalog)
{
    auto devices = baseline::allDevices();
    ASSERT_EQ(devices.size(), 3u);
    EXPECT_EQ(devices[0].name, "CPU i7-6850K");
    for (const auto &d : devices) {
        EXPECT_GT(d.peakGops, 0.0);
        EXPECT_GT(d.powerWatts, 0.0);
        EXPECT_GT(d.convEfficiency, d.tconvEfficiency)
            << d.name << ": zero-inserted phases must be less "
                          "efficient";
    }
}

TEST(Baseline, GpusOutrunCpu)
{
    gan::GanModel m = gan::makeDcgan();
    double cpu = baseline::iterationGops(baseline::intelI7_6850K(), m);
    double k20 = baseline::iterationGops(baseline::nvidiaK20(), m);
    double tx = baseline::iterationGops(baseline::nvidiaTitanX(), m);
    EXPECT_GT(k20, cpu);
    EXPECT_GT(tx, k20);
}

TEST(Baseline, TimeEnergyConsistency)
{
    gan::GanModel m = gan::makeMnistGan();
    DeviceModel cpu = baseline::intelI7_6850K();
    double secs = baseline::iterationSeconds(cpu, m);
    EXPECT_GT(secs, 0.0);
    EXPECT_NEAR(baseline::iterationJoules(cpu, m),
                cpu.powerWatts * secs, 1e-9);
    EXPECT_NEAR(baseline::gopsPerWatt(cpu, m) * cpu.powerWatts,
                baseline::iterationGops(cpu, m), 1e-6);
}

TEST(Baseline, EffectiveGopsNeverExceedsDensePeak)
{
    for (const auto &m : gan::allModels())
        for (const auto &d : baseline::allDevices())
            EXPECT_LT(baseline::iterationGops(d, m), d.peakGops)
                << d.name << " on " << m.name;
}

TEST(Baseline, UsefulOpsMatchPhaseArithmetic)
{
    gan::GanModel m = gan::makeMnistGan();
    double ops = baseline::iterationUsefulOps(m);
    // 2 G-fwd + 3 D-fwd + 3 D-bwd + 1 G-bwd + 2 Dw + 1 Gw passes,
    // all positive and bigger than a single forward pass.
    double one_fwd = 2.0 * double(sim::totalEffectiveMacs(
                               sim::phaseJobs(m, sim::Phase::DiscForward)));
    EXPECT_GT(ops, 5 * one_fwd);
}

TEST(Fig19, SpeedupAndEnergyShapeMatchesPaper)
{
    // Paper: average 8.3x speedup over CPU, 45.2x CPU energy
    // efficiency, 7.1x over K20 and 5.2x over Titan X.
    core::GanAccelerator acc;
    double fpga_power = baseline::fpgaBoardPowerWatts();
    double cpu_speedup = 0, cpu_energy = 0, k20_energy = 0,
           tx_energy = 0;
    for (const auto &m : gan::allModels()) {
        double fpga_gops = acc.evaluate(m).gopsDeferred;
        double fpga_gpw = fpga_gops / fpga_power;
        cpu_speedup +=
            fpga_gops /
            baseline::iterationGops(baseline::intelI7_6850K(), m);
        cpu_energy +=
            fpga_gpw /
            baseline::gopsPerWatt(baseline::intelI7_6850K(), m);
        k20_energy +=
            fpga_gpw / baseline::gopsPerWatt(baseline::nvidiaK20(), m);
        tx_energy +=
            fpga_gpw /
            baseline::gopsPerWatt(baseline::nvidiaTitanX(), m);
    }
    cpu_speedup /= 3;
    cpu_energy /= 3;
    k20_energy /= 3;
    tx_energy /= 3;
    EXPECT_NEAR(cpu_speedup, 8.3, 1.5);
    EXPECT_NEAR(cpu_energy, 45.2, 8.0);
    EXPECT_NEAR(k20_energy, 7.1, 1.5);
    EXPECT_NEAR(tx_energy, 5.2, 1.2);
}

TEST(Fig19, GpusWinThroughputButLoseEfficiencyOnBigNets)
{
    // The Fig. 19 story: the Titan X out-runs the FPGA in raw GOPS
    // but burns ~10x its power doing it.
    core::GanAccelerator acc;
    gan::GanModel m = gan::makeDcgan();
    double fpga_gops = acc.evaluate(m).gopsDeferred;
    double tx_gops =
        baseline::iterationGops(baseline::nvidiaTitanX(), m);
    EXPECT_GT(tx_gops, 0.5 * fpga_gops); // GPUs are fast...
    EXPECT_GT(fpga_gops / baseline::fpgaBoardPowerWatts(),
              baseline::gopsPerWatt(baseline::nvidiaTitanX(), m));
}

} // namespace
