/**
 * @file
 * Unit tests for the tensor substrate.
 */

#include <gtest/gtest.h>

#include "tensor/shape.hh"
#include "tensor/tensor.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace {

using ganacc::tensor::convOutDim;
using ganacc::tensor::maxAbsDiff;
using ganacc::tensor::approxEqual;
using ganacc::tensor::Shape4;
using ganacc::tensor::tconvOutDim;
using ganacc::tensor::Tensor;
using ganacc::util::PanicError;
using ganacc::util::Rng;

TEST(Shape, NumelAndOffset)
{
    Shape4 s(2, 3, 4, 5);
    EXPECT_EQ(s.numel(), 120u);
    EXPECT_EQ(s.offset(0, 0, 0, 0), 0u);
    EXPECT_EQ(s.offset(0, 0, 0, 1), 1u);
    EXPECT_EQ(s.offset(0, 0, 1, 0), 5u);
    EXPECT_EQ(s.offset(0, 1, 0, 0), 20u);
    EXPECT_EQ(s.offset(1, 0, 0, 0), 60u);
    EXPECT_EQ(s.offset(1, 2, 3, 4), 119u);
}

TEST(Shape, ConvOutDimMatchesKnownCases)
{
    // DCGAN discriminator: 64 -> 32 with k5 s2 p2.
    EXPECT_EQ(convOutDim(64, 5, 2, 2), 32);
    // MNIST-GAN: 28 -> 14 with k5 s2 p2.
    EXPECT_EQ(convOutDim(28, 5, 2, 2), 14);
    // cGAN: 64 -> 32 with k4 s2 p1.
    EXPECT_EQ(convOutDim(64, 4, 2, 1), 32);
    // Critic head: 4 -> 1 with k4 s1 p0.
    EXPECT_EQ(convOutDim(4, 4, 1, 0), 1);
}

TEST(Shape, TconvOutDimInvertsConvOutDim)
{
    // Every (in, k, s, p) the models use must be invertible with some
    // out_pad in [0, s).
    const int cases[][4] = {
        {64, 5, 2, 2}, {32, 5, 2, 2}, {16, 5, 2, 2}, {8, 5, 2, 2},
        {28, 5, 2, 2}, {14, 5, 2, 2}, {64, 4, 2, 1}, {4, 4, 1, 0},
        {7, 7, 1, 0},
    };
    for (auto &c : cases) {
        int in = c[0], k = c[1], s = c[2], p = c[3];
        int out = convOutDim(in, k, s, p);
        bool invertible = false;
        for (int op = 0; op < s; ++op)
            if (tconvOutDim(out, k, s, p, op) == in)
                invertible = true;
        EXPECT_TRUE(invertible) << "in=" << in << " k=" << k;
    }
}

TEST(Shape, RejectsBadGeometry)
{
    EXPECT_THROW(convOutDim(0, 3, 1, 0), PanicError);
    EXPECT_THROW(convOutDim(2, 5, 1, 0), PanicError); // kernel > input
    EXPECT_THROW(tconvOutDim(4, 3, 2, 0, 2), PanicError); // out_pad >= s
}

TEST(Tensor, FillAndAccess)
{
    Tensor t(2, 3, 4, 5, 1.5f);
    EXPECT_EQ(t.numel(), 120u);
    EXPECT_FLOAT_EQ(t.at(1, 2, 3, 4), 1.5f);
    t.at(1, 2, 3, 4) = 7.0f;
    EXPECT_FLOAT_EQ(t.get(1, 2, 3, 4), 7.0f);
    EXPECT_FLOAT_EQ(float(t.sum()), 1.5f * 119 + 7.0f);
}

TEST(Tensor, BoundsCheckedAccessPanics)
{
    Tensor t(1, 1, 2, 2);
    EXPECT_THROW(t.at(0, 0, 2, 0), PanicError);
    EXPECT_THROW(t.at(0, 1, 0, 0), PanicError);
    EXPECT_THROW(t.at(-1, 0, 0, 0), PanicError);
}

TEST(Tensor, GetPaddedReturnsZeroOutside)
{
    Tensor t(1, 1, 2, 2, 3.0f);
    EXPECT_FLOAT_EQ(t.getPadded(0, 0, -1, 0), 0.0f);
    EXPECT_FLOAT_EQ(t.getPadded(0, 0, 0, 2), 0.0f);
    EXPECT_FLOAT_EQ(t.getPadded(0, 0, 1, 1), 3.0f);
}

TEST(Tensor, AddAndAxpy)
{
    Tensor a(1, 1, 2, 2, 1.0f);
    Tensor b(1, 1, 2, 2, 2.0f);
    a.add(b);
    EXPECT_FLOAT_EQ(a.get(0, 0, 0, 0), 3.0f);
    a.axpy(-0.5f, b);
    EXPECT_FLOAT_EQ(a.get(0, 0, 1, 1), 2.0f);
}

TEST(Tensor, AddShapeMismatchPanics)
{
    Tensor a(1, 1, 2, 2);
    Tensor b(1, 1, 2, 3);
    EXPECT_THROW(a.add(b), PanicError);
}

TEST(Tensor, CountZerosAndAbsMax)
{
    Tensor t(1, 1, 2, 2, 0.0f);
    t.at(0, 0, 0, 1) = -4.0f;
    EXPECT_EQ(t.countZeros(), 3u);
    EXPECT_FLOAT_EQ(t.absMax(), 4.0f);
}

TEST(Tensor, FillRandomDeterministic)
{
    Rng r1(42), r2(42);
    Tensor a(1, 2, 3, 3), b(1, 2, 3, 3);
    a.fillUniform(r1);
    b.fillUniform(r2);
    EXPECT_EQ(maxAbsDiff(a, b), 0.0f);
}

TEST(Tensor, ApproxEqualTolerance)
{
    Tensor a(1, 1, 1, 2, 1.0f);
    Tensor b = a;
    b.at(0, 0, 0, 0) = 1.0f + 1e-6f;
    EXPECT_TRUE(approxEqual(a, b, 1e-4f));
    b.at(0, 0, 0, 0) = 1.01f;
    EXPECT_FALSE(approxEqual(a, b, 1e-4f));
}

TEST(Tensor, ScaleInPlace)
{
    Tensor t(1, 1, 1, 3, 2.0f);
    t.scale(2.5f);
    EXPECT_FLOAT_EQ(t.get(0, 0, 0, 2), 5.0f);
}

} // namespace
