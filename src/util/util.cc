/**
 * @file
 * Anchor translation unit for the header-only util library.
 */

#include "util/fixed_point.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/strings.hh"
#include "util/table.hh"

namespace ganacc {
namespace util {

// All util facilities are header-only templates/inlines; this TU exists
// so the library has an archive member and the headers stay compiled.

} // namespace util
} // namespace ganacc
