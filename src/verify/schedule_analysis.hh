/**
 * @file
 * Static schedule-hazard analysis with a dynamic shadow checker.
 *
 * The closed forms of sim/closed_form prove the walks' *totals*; this
 * module proves their *schedules*. For each (arch kind, unroll, spec)
 * it derives, symbolically over the loop-nest structure and without
 * walking a single cycle, the ScheduleRelation: cycle count, total and
 * peak per-cycle PE-slot occupancy, peak per-cycle traffic on each
 * buffer port, the accumulation-window population, and the hazard
 * counters — which a well-formed schedule drives to zero:
 *
 *  - slot conflicts: two lanes booked on the same PE slot in a cycle,
 *    or a lane booked beyond the array;
 *  - WAW hazards: one register/buffer cell written twice in one cycle
 *    of an accumulation window;
 *  - RAW hazards: a non-zero-initialized partial-sum cell read before
 *    its producing pass has written it;
 *  - OOB accesses: window cells touched outside the planned extent;
 *  - undrained writes: window cells written but never drained.
 *
 * The shadow checker replays the same job through the cycle walk with
 * a sim::ScheduleRecorder armed, reconstructing the concrete relation
 * from what the hardware schedule actually does — and routing the
 * recorded port traffic through mem::OnChipBuffer instances with a
 * mem::AccessTap attached, so the relation's totals flow through the
 * same observation path the rest of the memory system uses. Static
 * and recorded relations must be bit-identical for the five paper
 * dataflows (GA-SCHED-DIVERGE otherwise); the CNV/RST baselines have
 * no closed-form schedule (value-dependent / left to the walk) and
 * are checked dynamically against a conservative envelope
 * (GA-SCHED-UNMODELED notes the gap).
 */

#ifndef GANACC_VERIFY_SCHEDULE_ANALYSIS_HH
#define GANACC_VERIFY_SCHEDULE_ANALYSIS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/unrolling.hh"
#include "sim/arch.hh"
#include "sim/conv_spec.hh"
#include "sim/phase.hh"
#include "verify/diagnostics.hh"
#include "verify/legality.hh"

namespace ganacc {
namespace verify {

/**
 * The access/occupancy relation of one job's schedule. Produced
 * symbolically by staticScheduleRelation and concretely by the
 * recorder-armed walk; the two must agree field for field.
 */
struct ScheduleRelation
{
    // Occupancy.
    std::uint64_t cycles = 0;
    std::uint64_t scheduledSlots = 0; ///< lane bookings over all cycles
    std::uint64_t peakSlots = 0;      ///< max lanes booked in one cycle

    // Peak per-cycle buffer-port traffic (words).
    std::uint64_t peakWeightLoads = 0;
    std::uint64_t peakInputLoads = 0;
    std::uint64_t peakOutputReads = 0;
    std::uint64_t peakOutputWrites = 0;

    // Port-traffic totals (words; equal to the RunStats counters).
    std::uint64_t totalWeightLoads = 0;
    std::uint64_t totalInputLoads = 0;
    std::uint64_t totalOutputReads = 0;
    std::uint64_t totalOutputWrites = 0;

    // Accumulation windows.
    std::uint64_t windows = 0;      ///< windows opened over the job
    std::uint64_t cellsDrained = 0; ///< cells covered by drain events

    // Hazards — zero for every well-formed schedule.
    std::uint64_t slotConflicts = 0;
    std::uint64_t wawHazards = 0;
    std::uint64_t rawHazards = 0;
    std::uint64_t oobAccesses = 0;
    std::uint64_t undrainedWrites = 0;

    bool operator==(const ScheduleRelation &) const = default;

    /** All five hazard counters are zero. */
    bool hazardFree() const;

    /** One-line rendering for diagnostics and test failures. */
    std::string str() const;
};

/** Per-cycle words each buffer port may move. Zero means "use the
 *  default": the PE-array width (one word per lane per port), twice
 *  that for the double-buffered weight port — which every paper
 *  schedule satisfies by construction. */
struct PortBudget
{
    std::uint64_t weight = 0;
    std::uint64_t input = 0;
    std::uint64_t output = 0; ///< applies to reads and writes each
};

/** True when `kind` has a closed-form schedule model (all five paper
 *  dataflows; the CNV/RST baselines do not). */
bool scheduleModelSupported(core::ArchKind kind);

/**
 * Predict the schedule relation symbolically: O(kernel area + parity
 * classes) per job, never walking cycles. Hazard counters are zero by
 * derivation — the loop nests are analyzed, not simulated. Panics on
 * the malformed-spec preconditions the walks assert (run checkConvSpec
 * first).
 */
ScheduleRelation staticScheduleRelation(core::ArchKind kind,
                                        const sim::Unroll &unroll,
                                        const sim::ConvSpec &spec);

/** Ablation-aware variants: staticScheduleRelation uses the canonical
 *  policies (NLR zero-skip, ZFOST reordered feed) matching makeArch;
 *  these expose the ablation knob so the differential suite can shadow
 *  the NLR-vanilla and ZFOST-raster configurations too. */
ScheduleRelation staticNlrSchedule(const sim::Unroll &unroll,
                                   const sim::ConvSpec &spec,
                                   bool zero_skip);
ScheduleRelation staticZfostSchedule(const sim::Unroll &unroll,
                                     const sim::ConvSpec &spec,
                                     bool reordered_feed);

/**
 * Record the concrete relation by walking the job with a recorder
 * armed (the arch's recorder pointer is set for the duration of the
 * run and restored to null). `arch` must not be shared with concurrent
 * runs. For CNV set `functional`: this helper builds the streamed
 * operand tensors itself. When `stats_out` is non-null the walk's
 * RunStats are copied there for envelope cross-checks.
 */
ScheduleRelation recordedScheduleRelation(sim::Architecture &arch,
                                          const sim::ConvSpec &spec,
                                          bool functional = false,
                                          sim::RunStats *stats_out =
                                              nullptr);

/**
 * Static schedule checks for one job, appending GA-SCHED-* findings:
 * GA-SCHED-SLOT when the peak booking exceeds the array (or a slot is
 * double-booked), GA-SCHED-WAW / -RAW / -DRAIN / -OOB for register-
 * array hazards, GA-SCHED-PORT when a port's peak exceeds the budget.
 */
void checkSchedule(core::ArchKind kind, const sim::Unroll &unroll,
                   const sim::ConvSpec &spec, const PortBudget &budget,
                   Report &report);

/** checkSchedule over a job set (one finding per offending job). */
void checkSchedule(core::ArchKind kind, const sim::Unroll &unroll,
                   const std::vector<sim::ConvSpec> &jobs,
                   const PortBudget &budget, Report &report);

/**
 * The differential contract: walk the job with the recorder armed and
 * diff the recorded relation against the static prediction. Appends
 * GA-SCHED-DIVERGE (error) on any field mismatch and the hazard codes
 * for any recorded hazard. Returns true when the relations agree and
 * the recorded schedule is hazard-free.
 */
bool checkScheduleAgainstShadow(core::ArchKind kind,
                                const sim::Unroll &unroll,
                                const sim::ConvSpec &spec,
                                Report &report);

/**
 * Dynamic-only check for the CNV/RST baselines: record the walk and
 * verify the relation is hazard-free and within the occupancy
 * envelope (peak slots <= array, slot totals match the RunStats
 * conservation classes). Appends a GA-SCHED-UNMODELED note for the
 * missing static model plus hazard codes for violations. Returns true
 * when the recorded schedule is clean.
 */
bool checkBaselineSchedule(BaselineKind kind, const sim::Unroll &unroll,
                           const sim::ConvSpec &spec, Report &report);

/**
 * Sweep-wide schedule pre-filter: built once per DSE sweep, applied
 * per point. Checks the ZFOST bank (ST role) and ZFWST bank (W role)
 * schedules of a candidate design point against every phase job of
 * the model with the default port budget.
 */
class SchedulePrefilter
{
  public:
    explicit SchedulePrefilter(const gan::GanModel &model);

    /** Appends GA-SCHED-* findings for an illegal point. `w_pes` and
     *  `st_pes` are the PE budgets of the two banks (pof x PEs per
     *  channel), fed to paperUnroll to recover each bank's shape. */
    void check(int w_pes, int st_pes, Report &report) const;

  private:
    struct FamilyJobs
    {
        sim::PhaseFamily family;
        std::vector<sim::ConvSpec> jobs;
    };
    std::vector<FamilyJobs> families_;
};

} // namespace verify
} // namespace ganacc

#endif // GANACC_VERIFY_SCHEDULE_ANALYSIS_HH
