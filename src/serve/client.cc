/**
 * @file
 * Client implementation.
 */

#include "serve/client.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/logging.hh"

namespace ganacc {
namespace serve {

namespace {

/**
 * One connect attempt; returns the connected fd or -1 with errno-like
 * detail in `error`.
 */
int
connectOnce(const std::string &address, std::string &error)
{
    if (isTcpAddress(address)) {
        const auto colon = address.rfind(':');
        const std::string host = address.substr(0, colon);
        const std::string port = address.substr(colon + 1);
        addrinfo hints;
        std::memset(&hints, 0, sizeof hints);
        hints.ai_family = AF_UNSPEC;
        hints.ai_socktype = SOCK_STREAM;
        addrinfo *res = nullptr;
        const int gai =
            ::getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
        if (gai != 0) {
            error = gai_strerror(gai);
            return -1;
        }
        int fd = -1;
        for (addrinfo *ai = res; ai; ai = ai->ai_next) {
            fd = ::socket(ai->ai_family, ai->ai_socktype,
                          ai->ai_protocol);
            if (fd < 0)
                continue;
            if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0)
                break;
            ::close(fd);
            fd = -1;
        }
        error = fd < 0 ? std::strerror(errno) : "";
        ::freeaddrinfo(res);
        if (fd >= 0) {
            // Pipelined one-line requests: don't let Nagle batch them.
            int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof one);
        }
        return fd;
    }
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    if (address.size() >= sizeof addr.sun_path)
        util::fatal("socket path too long: ", address);
    std::strncpy(addr.sun_path, address.c_str(),
                 sizeof addr.sun_path - 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        util::fatal("socket(AF_UNIX): ", std::strerror(errno));
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        error = std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

} // namespace

bool
isTcpAddress(const std::string &address)
{
    if (address.empty() || address[0] == '/' || address[0] == '.')
        return false;
    return address.find(':') != std::string::npos;
}

Client::~Client()
{
    close();
}

void
Client::connect(const std::string &address, const ConnectOptions &opt)
{
    close();
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(opt.timeoutMs);
    std::string error;
    int delayMs = opt.backoffMs > 0 ? opt.backoffMs : 1;
    for (int attempt = 0;; ++attempt) {
        const int fd = connectOnce(address, error);
        if (fd >= 0) {
            fd_ = fd;
            return;
        }
        if (attempt >= opt.retries ||
            std::chrono::steady_clock::now() >= deadline)
            break;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(delayMs));
        delayMs = delayMs < 1000 ? delayMs * 2 : 1000;
    }
    util::fatal("connect(", address, "): ", error,
                " (is ganacc-served running?)");
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buf_.clear();
}

void
Client::sendLine(const std::string &line)
{
    GANACC_ASSERT(fd_ >= 0, "client not connected");
    std::string wire = line;
    wire += '\n';
    std::size_t off = 0;
    while (off < wire.size()) {
        // MSG_NOSIGNAL: a daemon draining for restart closes the
        // connection; surface that as a catchable error (EPIPE), not
        // a process-killing SIGPIPE — fleet::Router fails over on it.
        ssize_t n = ::send(fd_, wire.data() + off, wire.size() - off,
                           MSG_NOSIGNAL);
        if (n < 0 && errno == EINTR)
            continue; // interrupted by a signal (e.g. SIGUSR1
                      // metrics dump) — not an error, retry
        if (n <= 0)
            util::fatal("client write: ", std::strerror(errno));
        off += std::size_t(n);
    }
}

void
Client::sendRequest(const Request &req)
{
    sendLine(encodeRequest(req));
}

std::string
Client::recvLine()
{
    GANACC_ASSERT(fd_ >= 0, "client not connected");
    while (true) {
        auto nl = buf_.find('\n');
        if (nl != std::string::npos) {
            std::string line = buf_.substr(0, nl);
            buf_.erase(0, nl + 1);
            return line;
        }
        char chunk[4096];
        ssize_t n = ::read(fd_, chunk, sizeof chunk);
        if (n < 0 && errno == EINTR)
            continue; // interrupted, not closed — retry
        if (n < 0)
            util::fatal("client read: ", std::strerror(errno));
        if (n == 0)
            util::fatal("client read: connection closed by daemon");
        buf_.append(chunk, std::size_t(n));
    }
}

Response
Client::recvResponse()
{
    return decodeResponse(recvLine());
}

Response
Client::roundTrip(const Request &req)
{
    sendRequest(req);
    return recvResponse();
}

std::vector<std::string>
replayLines(Client &client,
            const std::vector<std::string> &request_lines,
            std::size_t window)
{
    std::vector<std::string> responses;
    responses.reserve(request_lines.size());
    std::size_t sent = 0, received = 0;
    while (received < request_lines.size()) {
        while (sent < request_lines.size() &&
               sent - received < window) {
            client.sendLine(request_lines[sent]);
            ++sent;
        }
        responses.push_back(client.recvLine());
        ++received;
    }
    return responses;
}

} // namespace serve
} // namespace ganacc
