/**
 * @file
 * ZFOST cycle-level model.
 */

#include "core/zfost.hh"

#include <algorithm>
#include <vector>

#include "sim/closed_form.hh"
#include "util/logging.hh"

namespace ganacc {
namespace core {

using sim::ConvSpec;
using sim::countNonzeroCoords;
using sim::RunStats;
using tensor::Tensor;

RunStats
Zfost::doRun(const ConvSpec &spec, const Tensor *in, const Tensor *w,
             Tensor *out) const
{
    const bool functional = in != nullptr;
    const int n_pes = numPes();
    sim::ScheduleRecorder *const rec = schedRec();
    RunStats st;

    // Zero-inserted inputs only occur under stride-1 streaming (the
    // stuffing already encodes the up-sampling geometry).
    const int z = spec.inZeroStride;
    GANACC_ASSERT(z == 1 || spec.stride == 1,
                  "stuffed input with strided streaming is not a GAN "
                  "pattern: ", spec.describe());

    for (int cy = 0; cy < z && cy < spec.oh; ++cy) {
        for (int cx = 0; cx < z && cx < spec.ow; ++cx) {
            // Output positions of this parity class.
            const int n_y = (spec.oh - cy + z - 1) / z;
            const int n_x = (spec.ow - cx + z - 1) / z;
            // Kernel positions whose operand pattern is non-zero for
            // this class: parity-compatible rows/cols that are not
            // themselves structural kernel zeros.
            std::vector<int> eff_ky, eff_kx;
            for (int ky = 0; ky < spec.kh; ++ky) {
                if (spec.kernelRowZero(ky))
                    continue;
                if (z > 1 && (cy + ky - spec.pad) % z != 0)
                    continue;
                eff_ky.push_back(ky);
            }
            for (int kx = 0; kx < spec.kw; ++kx) {
                if (spec.kernelColZero(kx))
                    continue;
                if (z > 1 && (cx + kx - spec.pad) % z != 0)
                    continue;
                eff_kx.push_back(kx);
            }
            if (eff_ky.empty() || eff_kx.empty())
                continue;

            for (int of0 = 0; of0 < spec.nof; of0 += unroll_.pOf) {
                const int of_cnt = std::min(unroll_.pOf, spec.nof - of0);
                for (int t_y0 = 0; t_y0 < n_y; t_y0 += unroll_.pOy) {
                    const int ty_cnt = std::min(unroll_.pOy, n_y - t_y0);
                    for (int t_x0 = 0; t_x0 < n_x; t_x0 += unroll_.pOx) {
                        const int tx_cnt =
                            std::min(unroll_.pOx, n_x - t_x0);
                        const int tile = ty_cnt * tx_cnt;
                        // Output-stationary register window: cleared
                        // at tile start, drained per input map (4-dim)
                        // or once per nif loop.
                        if (rec && !spec.fourDimOutput)
                            rec->onWindowBegin(
                                std::uint64_t(tile) * of_cnt,
                                sim::WindowKind::RegisterTile);
                        for (int c = 0; c < spec.nif; ++c) {
                            if (rec && spec.fourDimOutput)
                                rec->onWindowBegin(
                                    std::uint64_t(tile) * of_cnt,
                                    sim::WindowKind::RegisterTile);
                            bool first_kpos = true;
                            for (int ky : eff_ky) {
                                bool row_start = true;
                                for (int kx : eff_kx) {
                                    // ---- one cycle ----
                                    st.cycles += 1;
                                    st.weightLoads +=
                                        std::uint64_t(of_cnt);
                                    // Register-array reuse: full tile
                                    // load once per (tile, c); later
                                    // weights shift in one new column
                                    // (or row at a ky step). Under the
                                    // raster ablation a strided job
                                    // loses the shift alignment and
                                    // reloads the whole tile (the OST
                                    // behaviour of Fig. 7(b)).
                                    const bool shifts =
                                        order_ ==
                                            WeightOrder::Reordered ||
                                        spec.stride == 1;
                                    std::uint64_t in_words;
                                    if (first_kpos) {
                                        in_words = std::uint64_t(tile);
                                        first_kpos = false;
                                    } else if (!shifts) {
                                        in_words = std::uint64_t(tile);
                                    } else if (row_start) {
                                        in_words = std::uint64_t(tx_cnt);
                                    } else {
                                        in_words = std::uint64_t(ty_cnt);
                                    }
                                    st.inputLoads += in_words;
                                    row_start = false;
                                    if (rec) {
                                        rec->onCycle();
                                        rec->onPort(
                                            sim::SchedPort::Weight,
                                            std::uint64_t(of_cnt));
                                        rec->onPort(
                                            sim::SchedPort::Input,
                                            in_words);
                                        for (int dy = 0; dy < ty_cnt;
                                             ++dy)
                                            for (int dx = 0; dx < tx_cnt;
                                                 ++dx)
                                                rec->onLanes(
                                                    (dy * unroll_.pOx +
                                                     dx) *
                                                        unroll_.pOf,
                                                    of_cnt);
                                        rec->onCellWrite(
                                            0,
                                            std::uint64_t(tile) * of_cnt);
                                    }

                                    // Occupancy: parity guarantees the
                                    // stuffing pattern is non-zero;
                                    // only padding and trailing
                                    // (output-pad) rows can still be
                                    // ineffectual.
                                    int rows = countNonzeroCoords(
                                        t_y0, ty_cnt, z * spec.stride,
                                        cy * spec.stride + ky - spec.pad,
                                        0, spec.ih, spec.inZeroStride,
                                        spec.inOrigH);
                                    int cols = countNonzeroCoords(
                                        t_x0, tx_cnt, z * spec.stride,
                                        cx * spec.stride + kx - spec.pad,
                                        0, spec.iw, spec.inZeroStride,
                                        spec.inOrigW);
                                    const int eff_pos = rows * cols;
                                    st.effectiveMacs +=
                                        std::uint64_t(eff_pos) * of_cnt;
                                    st.ineffectualMacs +=
                                        std::uint64_t(tile - eff_pos) *
                                        of_cnt;
                                    st.idlePeSlots +=
                                        std::uint64_t(n_pes) -
                                        std::uint64_t(tile) * of_cnt;

                                    if (functional) {
                                        // Scheduled-but-zero slots
                                        // (padding / trailing rows) are
                                        // visited for the fault hook.
                                        const bool want_ineff =
                                            faultVisitsIneffectual();
                                        for (int dy = 0; dy < ty_cnt;
                                             ++dy)
                                            for (int dx = 0; dx < tx_cnt;
                                                 ++dx) {
                                                int oy =
                                                    cy +
                                                    (t_y0 + dy) * z;
                                                int ox =
                                                    cx +
                                                    (t_x0 + dx) * z;
                                                int iy = oy *
                                                             spec.stride +
                                                         ky - spec.pad;
                                                int ix = ox *
                                                             spec.stride +
                                                         kx - spec.pad;
                                                float v = in->getPadded(
                                                    0, c, iy, ix);
                                                if (v == 0.0f &&
                                                    !want_ineff)
                                                    continue;
                                                for (int f = 0;
                                                     f < of_cnt; ++f) {
                                                    int of = of0 + f;
                                                    int wc =
                                                        spec.fourDimOutput
                                                            ? 0
                                                            : c;
                                                    float ww = w->get(
                                                        of, wc, ky, kx);
                                                    const sim::MacContext
                                                        ctx{(dy * unroll_
                                                                      .pOx +
                                                             dx) *
                                                                    unroll_
                                                                        .pOf +
                                                                f,
                                                            of, c, oy,
                                                            ox, ky, kx};
                                                    float p = macProduct(
                                                        v, ww, ctx);
                                                    if (spec.fourDimOutput)
                                                        out->ref(of, c,
                                                                 oy,
                                                                 ox) +=
                                                            p;
                                                    else
                                                        out->ref(0, of,
                                                                 oy,
                                                                 ox) +=
                                                            p;
                                                }
                                            }
                                    }
                                }
                            }
                            if (spec.fourDimOutput) {
                                st.outputWrites +=
                                    std::uint64_t(tile) * of_cnt;
                                if (rec) {
                                    rec->onPort(
                                        sim::SchedPort::OutputWrite,
                                        std::uint64_t(tile) * of_cnt);
                                    rec->onDrain(0, std::uint64_t(tile) *
                                                        of_cnt);
                                    rec->onWindowEnd();
                                }
                            }
                        }
                        if (!spec.fourDimOutput) {
                            st.outputWrites +=
                                std::uint64_t(tile) * of_cnt;
                            if (rec) {
                                rec->onPort(sim::SchedPort::OutputWrite,
                                            std::uint64_t(tile) * of_cnt);
                                rec->onDrain(0, std::uint64_t(tile) *
                                                    of_cnt);
                                rec->onWindowEnd();
                            }
                        }
                    }
                }
            }
        }
    }
    return st;
}

bool
Zfost::fastStats(const ConvSpec &spec, RunStats &st) const
{
    st = sim::zfostClosedForm(unroll_, spec,
                              order_ == WeightOrder::Reordered);
    return true;
}

} // namespace core
} // namespace ganacc
