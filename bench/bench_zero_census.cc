/**
 * @file
 * Section III-C3 reproduction: the ineffectual (zero-operand)
 * multiplication census. The paper: "These ineffectual operations
 * account for about 64% and 75% of total multiplications in G→/Gw
 * and Dw respectively."
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "gan/models.hh"
#include "nn/zero_insert.hh"
#include "sim/phase.hh"
#include "util/table.hh"

int
main()
{
    using namespace ganacc;
    bench::banner("Section III-C3 — ineffectual multiplication census",
                  "~64% of G-phase and ~75% of Dw multiplications are "
                  "zero-operand");

    for (const auto &m : gan::allModels()) {
        std::cout << "\n" << m.name << "\n";
        util::Table t({"phase family", "dense GMACs",
                       "effective GMACs", "ineffectual %"});
        for (auto f : {sim::PhaseFamily::D, sim::PhaseFamily::G,
                       sim::PhaseFamily::Dw, sim::PhaseFamily::Gw}) {
            auto jobs = sim::familyJobs(m, f);
            double dense = double(sim::totalDenseMacs(jobs));
            double eff = double(sim::totalEffectiveMacs(jobs));
            t.addRow(sim::phaseFamilyName(f), dense / 1e9, eff / 1e9,
                     100.0 * (1.0 - eff / dense));
        }
        t.print(std::cout);
    }

    std::cout << "\nZero fraction of the stuffed maps themselves "
                 "(stride-2 insertion):\n";
    util::Table z({"dense map", "stuffed map", "zeros %"});
    for (int d : {4, 8, 16, 32}) {
        int s = (d - 1) * 2 + 1;
        z.addRow(std::to_string(d) + "x" + std::to_string(d),
                 std::to_string(s) + "x" + std::to_string(s),
                 100.0 * nn::zeroInsertZeroFraction(d, d, 2));
    }
    z.print(std::cout);
    return 0;
}
