/**
 * @file
 * The command-line front door: evaluate any of the paper's networks
 * on an arbitrary accelerator configuration and print the full report
 * — sizing, per-phase timing, resources, event-driven steady state
 * and an ASCII Gantt of the two banks and the DRAM gradient channel.
 *
 *   ganacc_report --model dcgan --gbps 192 --samples 8 --gantt
 */

#include <fstream>
#include <iostream>

#include "core/accelerator.hh"
#include "core/unrolling.hh"
#include "gan/models.hh"
#include "sched/design.hh"
#include "sched/event_sim.hh"
#include "util/args.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace ganacc;
    util::ArgParser args(argc, argv);
    std::string model_name = args.getString(
        "model", "dcgan", "network: mnist | dcgan | cgan");
    double gbps = args.getDouble("gbps", 192.0,
                                 "off-chip bandwidth in Gbit/s");
    double mhz = args.getDouble("mhz", 200.0, "PE clock in MHz");
    int samples = args.getInt(
        "samples", 8, "samples in flight for the event simulation");
    bool gantt = args.getFlag("gantt", "print the ASCII schedule");
    std::string trace_path = args.getString(
        "trace", "",
        "write a chrome://tracing JSON of the D-update schedule here");
    if (args.helpRequested()) {
        args.usage(std::cout);
        return 0;
    }
    args.finish();

    gan::GanModel model = model_name == "mnist" ? gan::makeMnistGan()
                          : model_name == "cgan" ? gan::makeCgan()
                          : model_name == "dcgan"
                              ? gan::makeDcgan()
                              : (util::fatal("unknown --model '",
                                             model_name, "'"),
                                 gan::makeDcgan());

    core::AcceleratorConfig cfg;
    cfg.offchip.bandwidthBitsPerSec = gbps * 1e9;
    cfg.offchip.frequencyHz = mhz * 1e6;
    core::GanAccelerator acc(cfg);

    std::cout << "=== " << model.name << " on " << acc.stPof()
              << "xZFOST + " << acc.wPof() << "xZFWST ("
              << acc.totalPes() << " PEs, " << gbps << " Gbps, " << mhz
              << " MHz) ===\n\n";

    auto rep = acc.evaluate(model);
    util::Table t({"metric", "value"});
    t.addRow("iteration cycles (deferred)",
             rep.iterationCyclesDeferred);
    t.addRow("iteration cycles (synchronized)",
             rep.iterationCyclesSync);
    t.addRow("samples/second", rep.samplesPerSecond);
    t.addRow("effective GOPS", rep.gopsDeferred);
    t.addRow("ST-bank utilization",
             rep.discUpdate.stStats.utilization());
    t.addRow("W-bank utilization",
             rep.discUpdate.wStats.utilization());
    t.addRow("LUTs", rep.resources.luts);
    t.addRow("BRAM36", rep.resources.bram36);
    t.addRow("DSP", rep.resources.dsp);
    t.addRow("fits XCVU9P", rep.fitsDevice ? "yes" : "NO");
    t.print(std::cout);

    // Event-driven refinement.
    auto design = acc.design();
    for (auto kind : {sched::UpdateKind::Discriminator,
                      sched::UpdateKind::Generator}) {
        auto dag = sched::buildUpdateDag(design, model, kind);
        auto trace =
            sched::simulateEvents(dag, samples, cfg.offchip);
        std::cout << "\n" << sched::updateKindName(kind)
                  << " (event-driven, " << samples
                  << " samples): " << trace.makespan / samples
                  << " cycles/sample steady-state; ST "
                  << int(100 * trace.stBusyFraction) << "% / W "
                  << int(100 * trace.wBusyFraction) << "% / DRAM "
                  << int(100 * trace.dramBusyFraction) << "% busy\n";
        if (gantt)
            std::cout << sched::renderGantt(dag, trace, samples)
                      << "\n";
        if (!trace_path.empty() &&
            kind == sched::UpdateKind::Discriminator) {
            std::ofstream os(trace_path);
            if (!os)
                util::fatal("cannot write '", trace_path, "'");
            sched::writeChromeTrace(dag, trace, samples, os);
            std::cout << "wrote " << trace_path
                      << " (open in chrome://tracing)\n";
        }
    }
    return 0;
}
