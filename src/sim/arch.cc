/**
 * @file
 * Architecture base implementation: validation and invariant checks
 * shared by every microarchitecture.
 */

#include "sim/arch.hh"

#include <sstream>

#include "obs/probe.hh"
#include "sim/closed_form.hh"
#include "util/logging.hh"

namespace ganacc {
namespace sim {

std::string
Unroll::str() const
{
    std::ostringstream os;
    os << "Pif=" << pIf << " Pof=" << pOf << " Pk=" << pKy << "x" << pKx
       << " Po=" << pOy << "x" << pOx;
    return os.str();
}

RunStats
Architecture::run(const ConvSpec &spec, const tensor::Tensor *in,
                  const tensor::Tensor *w, tensor::Tensor *out) const
{
    spec.validate();
    const bool functional = in != nullptr;
    GANACC_ASSERT((in != nullptr) == (w != nullptr) &&
                      (in != nullptr) == (out != nullptr),
                  "run() operands must be all null or all non-null");
    GANACC_ASSERT(faultHook() == nullptr || functional,
                  name_, ": fault injection corrupts the value path and "
                         "needs functional operands (timing-only runs "
                         "have no products to corrupt)");
    if (functional) {
        GANACC_ASSERT(in->shape() ==
                          tensor::Shape4(1, spec.nif, spec.ih, spec.iw),
                      name_, ": bad streamed input shape");
        out->fill(0.0f);
    }
    // Engine dispatch: timing-only, fault-free jobs may take the
    // closed-form fast path (bit-identical to the walk by contract;
    // the differential-fuzz parity suite keeps the contract honest).
    // Functional runs always walk — they produce real output data —
    // and so do recorded runs: a closed form has no cycles to narrate.
    RunStats stats;
    bool fast = false;
    if (!functional && fastPathEnabled() && scheduleRecorder() == nullptr)
        fast = fastStats(spec, stats);
    if (!fast) {
        if (ScheduleRecorder *rec = scheduleRecorder()) {
            rec->onJobBegin(numPes(), spec);
            stats = doRun(spec, in, w, out);
            rec->onJobEnd();
        } else {
            stats = doRun(spec, in, w, out);
        }
    }
    stats.nPes = std::uint64_t(numPes());
    // Conservation: every PE slot of every cycle is classified exactly
    // once as effective, ineffectual or idle.
    GANACC_ASSERT(stats.effectiveMacs + stats.ineffectualMacs +
                          stats.idlePeSlots ==
                      stats.totalSlots(),
                  name_, " on ", spec.describe(),
                  ": PE-slot conservation violated: ", stats.str());
    // An architecture can never do more useful work than exists.
    GANACC_ASSERT(stats.effectiveMacs <= spec.denseMacs(),
                  name_, ": more effective MACs than the job contains");
    // Telemetry probe: one relaxed load when observation is off (the
    // default), one per-job callback when armed — never per cycle, so
    // the walk itself is untouched either way.
    if (obs::Probe *probe = obs::runProbe()) {
        obs::RunSample sample;
        sample.arch = name_;
        sample.label = spec.label;
        sample.engine = fast ? "fast" : "walk";
        sample.cycles = stats.cycles;
        sample.nPes = stats.nPes;
        sample.effectiveMacs = stats.effectiveMacs;
        sample.ineffectualMacs = stats.ineffectualMacs;
        sample.idlePeSlots = stats.idlePeSlots;
        sample.gatedSlots = stats.gatedSlots;
        sample.weightLoads = stats.weightLoads;
        sample.inputLoads = stats.inputLoads;
        sample.outputReads = stats.outputReads;
        sample.outputWrites = stats.outputWrites;
        probe->onRun(sample);
    }
    return stats;
}

} // namespace sim
} // namespace ganacc
