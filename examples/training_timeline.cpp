/**
 * @file
 * End-to-end story: train a GAN functionally while charging every
 * iteration to the accelerator's cycle model, and compare the
 * simulated wall-clock against the CPU baseline doing the same
 * arithmetic — the "why build this accelerator" demo. Generator
 * quality is tracked with the kernel-MMD metric.
 */

#include <iostream>

#include "baseline/cpu_gpu_model.hh"
#include "core/accelerator.hh"
#include "gan/data.hh"
#include "gan/metrics.hh"
#include "gan/models.hh"
#include "gan/trainer.hh"
#include "nn/optimizer.hh"
#include "util/random.hh"
#include "util/table.hh"

int
main()
{
    using namespace ganacc;
    using tensor::Tensor;

    // A trimmed MNIST-GAN so the functional math runs in seconds; the
    // timing model charges the same topology.
    std::vector<gan::LayerSpec> disc;
    {
        gan::LayerSpec l1;
        l1.kind = nn::ConvKind::Strided;
        l1.act = nn::Activation::LeakyReLU;
        l1.inChannels = 1;
        l1.outChannels = 16;
        l1.inH = l1.inW = 14;
        l1.geom = nn::Conv2dGeom{5, 2, 2, 0};
        disc.push_back(l1);
        gan::LayerSpec l2 = l1;
        l2.inChannels = 16;
        l2.outChannels = 32;
        l2.inH = l2.inW = 7;
        disc.push_back(l2);
        gan::LayerSpec head;
        head.kind = nn::ConvKind::Strided;
        head.act = nn::Activation::None;
        head.inChannels = 32;
        head.outChannels = 1;
        head.inH = head.inW = 4;
        head.geom = nn::Conv2dGeom{4, 1, 0, 0};
        disc.push_back(head);
    }
    gan::GanModel model =
        gan::makeModel("timeline-GAN", std::move(disc), 32);

    // Timing: cycles per (batch) iteration on the accelerator and
    // seconds per iteration on the CPU roofline.
    const int batch = 16;
    core::GanAccelerator acc;
    auto rep = acc.evaluate(model);
    double accel_sec_per_iter =
        double(rep.iterationCyclesDeferred) * batch /
        acc.config().offchip.frequencyHz;
    auto cpu = baseline::intelI7_6850K();
    double cpu_sec_per_iter =
        baseline::iterationSeconds(cpu, model) * batch;

    std::cout << "Simulated hardware: " << acc.totalPes()
              << "-PE ZFOST-ZFWST @200 MHz -> "
              << accel_sec_per_iter * 1e3
              << " ms per batch iteration;\n"
              << "CPU baseline (" << cpu.name << ") -> "
              << cpu_sec_per_iter * 1e3 << " ms per iteration ("
              << cpu_sec_per_iter / accel_sec_per_iter
              << "x slower)\n\n";

    // Functional training with MMD tracking; the timeline column is
    // the simulated accelerator wall-clock.
    gan::Trainer trainer(model, 4242, gan::SyncMode::Deferred, 0.03f);
    util::Rng rng(17);
    nn::RmsProp d_opt(5e-4f), g_opt(5e-4f);

    Tensor probe_noise = trainer.sampleNoise(24, rng);
    Tensor probe_real = gan::makeBlobImages(24, 1, 14, 14, rng);

    util::Table t({"iter", "accel time (s)", "cpu time (s)",
                   "critic loss", "MMD^2(fake, real)"});
    const int iters = 25;
    double last_loss = 0.0;
    for (int it = 0; it <= iters; ++it) {
        if (it % 5 == 0) {
            Tensor fake = trainer.generate(probe_noise);
            t.addRow(it, it * accel_sec_per_iter,
                     it * cpu_sec_per_iter, last_loss,
                     gan::mmd2(fake, probe_real));
        }
        if (it == iters)
            break;
        Tensor real = gan::makeBlobImages(batch, 1, 14, 14, rng);
        last_loss =
            trainer.trainIteration(real, d_opt, g_opt, rng, 2)
                .discLoss;
    }
    t.print(std::cout);

    Tensor fake = trainer.generate(probe_noise);
    std::cout << "\nFinal MMD^2 vs an independent same-distribution "
                 "pair: "
              << gan::mmd2(fake, probe_real) << " vs "
              << gan::mmd2(gan::makeBlobImages(24, 1, 14, 14, rng),
                           probe_real)
              << " (the floor)\n";
    return 0;
}
