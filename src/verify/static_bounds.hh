/**
 * @file
 * Closed-form performance bounds.
 *
 * Every dataflow in the simulator walks its schedule cycle by cycle,
 * but each walk's counters are expressible in closed form: cycles,
 * PE-slot occupancy, and buffer accesses are sums over loop bounds
 * whose per-axis structure factorizes. staticRunStats() evaluates
 * those sums directly — no per-cycle loop over the output map — and is
 * required to match the cycle walk of makeArch(kind, unroll) *bit for
 * bit*. A divergence on any counter is, by construction, a bug in one
 * of the two derivations; the randomized property test in
 * tests/test_static_bounds.cc enforces the equivalence, and
 * checkBoundsAgainstSim() reports divergence as GA-BOUNDS-DIVERGE.
 *
 * The closed forms are what make the DSE pre-filter and the
 * GA-UNROLL-DIVIDE utilization figures cheap: deriving a design
 * point's bounds costs O(kernel area + parity classes), not
 * O(simulated cycles).
 */

#ifndef GANACC_VERIFY_STATIC_BOUNDS_HH
#define GANACC_VERIFY_STATIC_BOUNDS_HH

#include "core/unrolling.hh"
#include "sim/conv_spec.hh"
#include "sim/stats.hh"
#include "verify/diagnostics.hh"

namespace ganacc {
namespace verify {

/** True when `kind` has a closed-form model (all five dataflows). */
bool staticBoundsSupported(core::ArchKind kind);

/**
 * The exact RunStats makeArch(kind, unroll)->run(spec) would return,
 * derived without simulating (default configurations: ZFOST reordered
 * weight feed, NLR zero skipping). Panics on the same preconditions
 * the simulator asserts (ZFOST/ZFWST reject stuffed inputs streamed
 * with stride > 1) — run checkConvSpec first.
 */
sim::RunStats staticRunStats(core::ArchKind kind,
                             const sim::Unroll &unroll,
                             const sim::ConvSpec &spec);

/**
 * Cross-check a simulated run against the closed forms; every counter
 * that diverges gets a GA-BOUNDS-DIVERGE error naming both values.
 * Returns true when all counters agree.
 */
bool checkBoundsAgainstSim(core::ArchKind kind,
                           const sim::Unroll &unroll,
                           const sim::ConvSpec &spec,
                           const sim::RunStats &simulated,
                           Report &report);

} // namespace verify
} // namespace ganacc

#endif // GANACC_VERIFY_STATIC_BOUNDS_HH
