/**
 * @file
 * Fig. 16 reproduction: on-chip data-access breakdown (kernel-weight
 * loads, input-neuron loads, output-neuron reads/writes) for DCGAN on
 * every architecture and phase family. The paper uses this to break
 * the NLR-vs-ZFOST tie on the G phases: equal throughput, but ZFOST's
 * register-array reuse needs far fewer buffer accesses.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "core/cycle_cache.hh"
#include "core/unrolling.hh"
#include "gan/models.hh"
#include "sim/phase.hh"
#include "util/args.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace ganacc;
    util::ArgParser args(argc, argv);
    bench::CacheScope cache(args);
    if (args.helpRequested()) {
        args.usage(std::cout);
        return 0;
    }
    args.finish();
    bench::banner("Fig. 16 — on-chip data accesses (DCGAN)",
                  "ZFOST/ZFWST have the lowest access counts; NLR "
                  "streams every operand every cycle");

    gan::GanModel m = gan::makeDcgan();
    const sim::PhaseFamily families[] = {
        sim::PhaseFamily::D, sim::PhaseFamily::G, sim::PhaseFamily::Dw,
        sim::PhaseFamily::Gw};

    for (sim::PhaseFamily f : families) {
        core::BankRole role =
            (f == sim::PhaseFamily::D || f == sim::PhaseFamily::G)
                ? core::BankRole::ST
                : core::BankRole::W;
        int pes = role == core::BankRole::ST ? 1200 : 480;
        auto jobs = sim::familyJobs(m, f);
        std::cout << "\nPhase family " << sim::phaseFamilyName(f)
                  << " (accesses in millions):\n";
        util::Table t({"arch", "weights", "inputs", "out reads",
                       "out writes", "total", "vs NLR"});
        double nlr_total = 0.0;
        for (core::ArchKind kind : core::allArchKinds()) {
            const sim::Unroll u = core::paperUnroll(kind, role, f, pes);
            sim::RunStats sum;
            for (const auto &j : jobs)
                sum += core::cachedRun(kind, u, j);
            double total = double(sum.totalAccesses());
            if (kind == core::ArchKind::NLR)
                nlr_total = total;
            auto mm = [](std::uint64_t v) { return double(v) / 1e6; };
            t.addRow(core::archKindName(kind), mm(sum.weightLoads),
                     mm(sum.inputLoads), mm(sum.outputReads),
                     mm(sum.outputWrites), total / 1e6,
                     total / nlr_total);
        }
        t.print(std::cout);
    }
    return 0;
}
