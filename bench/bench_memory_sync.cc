/**
 * @file
 * Section III-A reproduction: intermediate-data memory consumption of
 * the original synchronized training algorithm versus deferred
 * synchronization, across batch sizes. The paper's anchor number:
 * DCGAN needs a ~126 MB buffer at batch size 256 — far beyond on-chip
 * capacity — while the deferred algorithm's footprint is batch-size-
 * independent and fits Block RAM easily.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "gan/memory_analysis.hh"
#include "gan/models.hh"
#include "util/table.hh"

int
main()
{
    using namespace ganacc;
    bench::banner("Section III-A — memory for intermediate data",
                  "DCGAN needs ~126 MB at batch 256 with the original "
                  "algorithm; deferred sync reduces the live set to "
                  "one sample");

    const int batches[] = {32, 64, 128, 256, 512};
    for (const auto &m : gan::allModels()) {
        std::cout << "\n" << m.name
                  << " (discriminator-update intermediate buffers, "
                     "16-bit data)\n";
        util::Table t({"batch", "sync MB", "deferred MB", "reduction",
                       "fits 9.4MB BRAM (sync/deferred)"});
        for (int b : batches) {
            auto f = gan::analyzeMemory(m, b, 2);
            double sync_mb = double(f.syncDiscUpdateBytes) / 1e6;
            double def_mb = double(f.deferredDiscUpdateBytes) / 1e6;
            const double bram_mb = 2160 * 4608.0 / 1e6;
            t.addRow(b, sync_mb, def_mb, sync_mb / def_mb,
                     std::string(sync_mb * 1e6 < bram_mb * 1e6 ? "yes"
                                                               : "no") +
                         " / " +
                         (def_mb * 1e6 < bram_mb * 1e6 ? "yes" : "no"));
        }
        t.print(std::cout);
    }

    auto f = gan::analyzeMemory(gan::makeDcgan(), 256, 2);
    std::cout << "\nAnchor check: DCGAN @ batch 256 (sync) = "
              << double(f.syncDiscUpdateBytes) / 1e6
              << " MB (paper: ~126 MB)\n";
    return 0;
}
