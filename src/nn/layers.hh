/**
 * @file
 * Trainable convolution layers with the three passes the accelerator
 * executes: forward, backward-error (eq. 3) and backward-weights
 * (eq. 4). Gradients accumulate across backward() calls so the
 * deferred-synchronization trainer can run one sample at a time and
 * still produce the exact mini-batch gradient.
 */

#ifndef GANACC_NN_LAYERS_HH
#define GANACC_NN_LAYERS_HH

#include <cstdint>
#include <memory>
#include <string>

#include "nn/activations.hh"
#include "nn/batchnorm.hh"
#include "nn/conv_ref.hh"
#include "nn/optimizer.hh"
#include "tensor/tensor.hh"
#include "util/random.hh"

namespace ganacc {
namespace nn {

/** Which convolution variant a layer's forward pass uses. */
enum class ConvKind
{
    Strided,    ///< S-CONV (discriminator-style)
    Transposed, ///< T-CONV (generator-style)
};

/** Common state and interface of the two conv layer types. */
class ConvLayerBase
{
  public:
    virtual ~ConvLayerBase() = default;

    /**
     * Forward pass: convolution followed by the layer activation.
     * Caches the input and pre-activation for the backward passes.
     */
    tensor::Tensor forward(const tensor::Tensor &in);

    /**
     * Backward pass: applies the activation derivative, accumulates
     * the weight gradient (eq. 4) into the layer's gradient buffer and
     * returns the error for the previous layer (eq. 3).
     */
    tensor::Tensor backward(const tensor::Tensor &dout);

    /** Reset the accumulated gradient to zero. */
    void zeroGrad();

    /**
     * Snapshot of every gradient accumulator the layer owns (conv
     * weights plus any attached BN parameters). Used to make a
     * backward pass side-effect free on the gradients (the
     * discriminator's error-relay pass during the generator update).
     */
    struct GradSnapshot
    {
        tensor::Tensor weights;
        int samples = 0;
        tensor::Tensor bnGamma;
        tensor::Tensor bnBeta;
        bool hasBn = false;
    };

    GradSnapshot snapshotGrads() const;
    void restoreGrads(const GradSnapshot &snap);

    /** Apply the accumulated gradient with the given optimizer. */
    void applyUpdate(Optimizer &opt);

    /** Kaiming-style random initialization. */
    void initWeights(util::Rng &rng);

    /**
     * Attach batch normalization between the convolution and the
     * activation (the DCGAN recipe). The layer then owns the BN
     * parameters: applyUpdate()/zeroGrad() cover them too.
     */
    void enableBatchNorm();

    bool hasBatchNorm() const { return bn_ != nullptr; }
    BatchNormLayer *batchNorm() { return bn_.get(); }

    /** Statistics source for an attached BN (ignored without one). */
    void
    setBnMode(BatchNormLayer::Mode mode)
    {
        bnMode_ = mode;
    }

    const tensor::Tensor &weights() const { return weights_; }
    tensor::Tensor &weights() { return weights_; }
    const tensor::Tensor &gradAccum() const { return gradAccum_; }
    int gradSamples() const { return gradSamples_; }

    int inChannels() const { return inChannels_; }
    int outChannels() const { return outChannels_; }
    const Conv2dGeom &geom() const { return geom_; }
    Activation activation() const { return act_; }
    virtual ConvKind kind() const = 0;

    /** Spatial output size for a given input size. */
    virtual int outDim(int in_dim) const = 0;

    std::string describe() const;

  protected:
    ConvLayerBase(int in_channels, int out_channels, Conv2dGeom geom,
                  Activation act, tensor::Shape4 weight_shape);

    virtual tensor::Tensor doForward(const tensor::Tensor &in) const = 0;
    virtual tensor::Tensor doBackwardData(const tensor::Tensor &derr,
                                          int in_h, int in_w) const = 0;
    virtual tensor::Tensor doBackwardWeights(
        const tensor::Tensor &in, const tensor::Tensor &derr) const = 0;

    int inChannels_;
    int outChannels_;
    Conv2dGeom geom_;
    Activation act_;

    tensor::Tensor weights_;
    tensor::Tensor gradAccum_;
    int gradSamples_ = 0;

    std::unique_ptr<BatchNormLayer> bn_;
    BatchNormLayer::Mode bnMode_ = BatchNormLayer::Mode::Batch;

    tensor::Tensor cachedInput_;
    tensor::Tensor cachedPre_; ///< what the activation saw
    bool haveCache_ = false;
};

/** Strided convolution layer (S-CONV forward). */
class ConvLayer : public ConvLayerBase
{
  public:
    ConvLayer(int in_channels, int out_channels, Conv2dGeom geom,
              Activation act);

    ConvKind kind() const override { return ConvKind::Strided; }
    int outDim(int in_dim) const override;

  protected:
    tensor::Tensor doForward(const tensor::Tensor &in) const override;
    tensor::Tensor doBackwardData(const tensor::Tensor &derr, int in_h,
                                  int in_w) const override;
    tensor::Tensor doBackwardWeights(
        const tensor::Tensor &in,
        const tensor::Tensor &derr) const override;
};

/** Transposed convolution layer (T-CONV forward). */
class TransposedConvLayer : public ConvLayerBase
{
  public:
    TransposedConvLayer(int in_channels, int out_channels, Conv2dGeom geom,
                        Activation act);

    ConvKind kind() const override { return ConvKind::Transposed; }
    int outDim(int in_dim) const override;

  protected:
    tensor::Tensor doForward(const tensor::Tensor &in) const override;
    tensor::Tensor doBackwardData(const tensor::Tensor &derr, int in_h,
                                  int in_w) const override;
    tensor::Tensor doBackwardWeights(
        const tensor::Tensor &in,
        const tensor::Tensor &derr) const override;
};

} // namespace nn
} // namespace ganacc

#endif // GANACC_NN_LAYERS_HH
