/**
 * @file
 * Fixed-point datapath study: the paper computes in 16-bit fixed
 * point while the CPU/GPU baselines use float (Section VI-C notes the
 * comparison mixes the two). This bench quantifies what Q7.8 costs in
 * numerical accuracy on real layer shapes — per-layer error for the
 * discriminator forward pass and an end-to-end critic-score check.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "gan/models.hh"
#include "gan/network.hh"
#include "nn/conv_ref.hh"
#include "nn/quantize.hh"
#include "util/random.hh"
#include "util/table.hh"

int
main()
{
    using namespace ganacc;
    using tensor::Tensor;

    bench::banner("Fixed-point datapath (Q7.8, DSP-style accumulate)",
                  "16-bit fixed point is accurate enough for GAN "
                  "training workloads (Section V-C design choice)");

    util::Rng rng(123);
    for (const auto &m : gan::allModels()) {
        std::cout << "\n" << m.name
                  << " discriminator layers, float vs fixed "
                     "forward:\n";
        util::Table t({"layer", "shape", "max |err|", "RMS err",
                       "out scale", "rel RMS"});
        for (std::size_t i = 0; i < m.disc.size(); ++i) {
            const auto &l = m.disc[i];
            Tensor in(1, l.inChannels, l.inH, l.inW);
            in.fillUniform(rng, -1.0f, 1.0f);
            Tensor w(l.outChannels, l.inChannels, l.geom.kernel,
                     l.geom.kernel);
            // Realistic magnitude: Kaiming-ish scale.
            float s = 1.0f / float(std::sqrt(double(l.inChannels) *
                                             l.geom.kernel *
                                             l.geom.kernel));
            w.fillUniform(rng, -s, s);
            Tensor ref = nn::sconvForward(in, w, l.geom);
            Tensor fx = nn::sconvForwardFixed(in, w, l.geom);
            auto e = nn::quantError(ref, fx);
            std::string label = "L";
            label += std::to_string(i);
            t.addRow(label, l.describe(), e.maxAbs,
                     e.rms, e.refScale,
                     e.refScale > 0 ? e.rms / e.refScale : 0.0);
        }
        t.print(std::cout);
    }

    // End-to-end critic scores with quantized weights + inputs.
    std::cout << "\nEnd-to-end critic-score perturbation "
                 "(quantized weights and inputs, MNIST-GAN):\n";
    gan::GanModel m = gan::makeMnistGan();
    gan::Network critic(m.disc, rng);
    Tensor img(8, 1, 28, 28);
    img.fillUniform(rng, -1.0f, 1.0f);
    auto ref = gan::Network::scores(critic.forward(img));
    for (auto &layer : critic.layers())
        layer->weights() = nn::quantizeTensor(layer->weights());
    auto q =
        gan::Network::scores(critic.forward(nn::quantizeTensor(img)));
    util::Table s({"sample", "float score", "fixed score", "abs err"});
    for (std::size_t i = 0; i < ref.size(); ++i)
        s.addRow(i, ref[i], q[i], std::abs(ref[i] - q[i]));
    s.print(std::cout);
    return 0;
}
