/**
 * @file
 * Minimal JSON document model and recursive-descent parser.
 *
 * The serving protocol (serve/protocol) and the persistent result
 * store exchange one JSON object per line, and the fault-plan reader
 * already showed that a purpose-built parser with precise error
 * positions beats dragging in a third-party dependency. This module
 * generalizes that approach into a reusable document model: a Value
 * variant (null / bool / number / string / array / object) with typed
 * accessors that throw util::FatalError naming the missing or
 * mistyped key, plus parse() and a writer.
 *
 * Numbers are stored as both double and uint64 so 64-bit cycle
 * counters round-trip bit-exactly: the writer emits integers without
 * an exponent or fraction, and the parser keeps the full integer
 * precision whenever the token is a plain non-negative integer that
 * fits in 64 bits.
 */

#ifndef GANACC_UTIL_JSON_HH
#define GANACC_UTIL_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ganacc {
namespace util {
namespace json {

class Value;

using Array = std::vector<Value>;
/// Ordered map: objects iterate in insertion order so writes are
/// canonical (field order is part of the golden byte contract).
class Object;

/** One JSON value. */
class Value
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        ArrayKind,
        ObjectKind,
    };

    Value() : kind_(Kind::Null) {}
    Value(bool b) : kind_(Kind::Bool), bool_(b) {}
    Value(double d) : kind_(Kind::Number), num_(d), isInt_(false) {}
    Value(std::uint64_t u)
        : kind_(Kind::Number), num_(double(u)), uint_(u), isInt_(true)
    {
    }
    Value(int i);
    Value(const char *s) : kind_(Kind::String), str_(s) {}
    Value(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
    Value(Array a);
    Value(Object o);

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isObject() const { return kind_ == Kind::ObjectKind; }
    bool isArray() const { return kind_ == Kind::ArrayKind; }
    bool isString() const { return kind_ == Kind::String; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isBool() const { return kind_ == Kind::Bool; }
    /** Number token that was a plain integer fitting in uint64. */
    bool isInteger() const
    {
        return kind_ == Kind::Number && isInt_;
    }

    /** Typed accessors; throw FatalError on kind mismatch. */
    bool asBool() const;
    double asDouble() const;
    std::uint64_t asUint64() const;
    int asInt() const;
    const std::string &asString() const;
    const Array &asArray() const;
    const Object &asObject() const;

    /** Serialize canonically (objects in insertion order, integers
     *  as plain decimals, doubles via shortest round-trip form). */
    std::string dump() const;

  private:
    Kind kind_;
    bool bool_ = false;
    double num_ = 0.0;
    std::uint64_t uint_ = 0;
    bool isInt_ = false;
    std::string str_;
    std::shared_ptr<Array> arr_;
    std::shared_ptr<Object> obj_;
};

/** Insertion-ordered string->Value map. */
class Object
{
  public:
    /** Set (or overwrite) a key, preserving first-insertion order. */
    void set(const std::string &key, Value v);

    /** The value at `key`, or nullptr. */
    const Value *find(const std::string &key) const;

    /** The value at `key`; throws FatalError naming the key. */
    const Value &at(const std::string &key) const;

    bool contains(const std::string &key) const
    {
        return find(key) != nullptr;
    }

    std::size_t size() const { return entries_.size(); }

    const std::vector<std::pair<std::string, Value>> &
    entries() const
    {
        return entries_;
    }

  private:
    std::vector<std::pair<std::string, Value>> entries_;
};

/**
 * Parse one complete JSON document; throws util::FatalError with the
 * byte offset of the first error. Trailing garbage is an error.
 */
Value parse(const std::string &text);

} // namespace json
} // namespace util
} // namespace ganacc

#endif // GANACC_UTIL_JSON_HH
