/**
 * @file
 * Engine implementation.
 */

#include "serve/engine.hh"

#include <chrono>
#include <exception>

#include "core/cycle_cache.hh"
#include "gan/models.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "sim/phase.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace ganacc {
namespace serve {

namespace {

/** The dedupe key of a request: everything but the id. A put never
 *  coalesces with a simulation of the same triple — the "put|" prefix
 *  keeps their flights separate. */
std::string
flightKey(const Request &req)
{
    if (req.put)
        return "put|" + contentKey(req.kind, req.unroll, req.spec);
    if (req.hasSpec)
        return contentKey(req.kind, req.unroll, req.spec);
    return "net|" + core::archKindName(req.kind) + '|' +
           sim::toJson(req.unroll) + '|' + req.model + '|' +
           req.family;
}

gan::GanModel
modelByName(const std::string &name)
{
    if (name == "dcgan")
        return gan::makeDcgan();
    if (name == "mnist-gan")
        return gan::makeMnistGan();
    if (name == "cgan")
        return gan::makeCgan();
    if (name == "context-encoder")
        return gan::makeContextEncoder();
    util::fatal("unknown model \"", name,
                "\" (dcgan, mnist-gan, cgan, context-encoder)");
}

sim::PhaseFamily
familyByName(const std::string &name)
{
    if (name == "D")
        return sim::PhaseFamily::D;
    if (name == "G")
        return sim::PhaseFamily::G;
    if (name == "Dw")
        return sim::PhaseFamily::Dw;
    if (name == "Gw")
        return sim::PhaseFamily::Gw;
    util::fatal("unknown phase family \"", name,
                "\" (D, G, Dw, Gw)");
}

/** sim > disk > mem: an aggregate is only as warm as its coldest job. */
int
coldness(core::CacheOutcome o)
{
    switch (o) {
      case core::CacheOutcome::MemoryHit: return 0;
      case core::CacheOutcome::DiskHit: return 1;
      case core::CacheOutcome::Simulated: return 2;
    }
    return 2;
}

} // namespace

Engine::Engine(const EngineOptions &opts)
    : opts_(opts),
      cache_(opts.ownCache ? std::string() : opts.cacheDir),
      pool_(std::make_unique<util::ThreadPool>(opts.jobs)),
      mRequests_(obs::Registry::instance().counter(
          "ganacc_serve_requests_total", "requests admitted")),
      mErrors_(obs::Registry::instance().counter(
          "ganacc_serve_errors_total", "requests answered ok:false")),
      mMemHits_(obs::Registry::instance().counter(
          "ganacc_serve_mem_hits_total",
          "responses served from the memory tier")),
      mDiskHits_(obs::Registry::instance().counter(
          "ganacc_serve_disk_hits_total",
          "responses served from the disk tier")),
      mSimulated_(obs::Registry::instance().counter(
          "ganacc_serve_simulated_total",
          "responses that ran a cycle walk")),
      mDeduped_(obs::Registry::instance().counter(
          "ganacc_serve_deduped_total", "single-flight followers")),
      mStatsProbes_(obs::Registry::instance().counter(
          "ganacc_serve_stats_probes_total",
          "telemetry probes answered")),
      mFleetProbes_(obs::Registry::instance().counter(
          "ganacc_serve_fleet_probes_total",
          "fleet-topology probes answered")),
      mMetricsProbes_(obs::Registry::instance().counter(
          "ganacc_serve_metrics_probes_total",
          "Prometheus scrape probes answered")),
      mTraceDrains_(obs::Registry::instance().counter(
          "ganacc_serve_trace_drains_total",
          "trace-drain probes answered")),
      mPuts_(obs::Registry::instance().counter(
          "ganacc_serve_puts_total",
          "replication writes acknowledged")),
      mOverloaded_(obs::Registry::instance().counter(
          "ganacc_serve_overloaded_total",
          "requests shed at admission")),
      mInFlight_(obs::Registry::instance().gauge(
          "ganacc_serve_inflight",
          "requests admitted and not yet answered")),
      mLatencyUs_(obs::Registry::instance().histogram(
          "ganacc_serve_latency_us",
          "service-side request latency in microseconds"))
{
    if (opts_.maxQueue == 0)
        util::fatal("engine: maxQueue must be positive");
    if (opts_.ownCache) {
        ownCache_ =
            std::make_unique<core::CycleCache>(/*publishMetrics=*/true);
        if (!opts_.cacheDir.empty()) {
            ownStore_ = std::make_unique<ResultStore>(opts_.cacheDir);
            ownCache_->attachDiskTier(ownStore_.get());
        }
    }
}

core::CycleCache &
Engine::liveCache()
{
    return ownCache_ ? *ownCache_ : core::CycleCache::instance();
}

void
Engine::clearMemoryCache()
{
    liveCache().clear();
}

Engine::~Engine()
{
    try {
        drain();
    } catch (...) {
        // Destruction during stack unwinding must not throw.
    }
}

Response
Engine::executeSpec(const Request &req)
{
    Response rsp;
    rsp.id = req.id;
    core::CacheOutcome worst = core::CacheOutcome::MemoryHit;
    auto &cache = liveCache();
    if (req.hasSpec) {
        req.spec.validate();
        rsp.stats = cache.stats(req.kind, req.unroll, req.spec, &worst);
    } else {
        const gan::GanModel model = modelByName(req.model);
        const auto jobs =
            sim::familyJobs(model, familyByName(req.family));
        if (jobs.empty())
            util::fatal("model \"", req.model, "\" family \"",
                        req.family, "\" has no jobs");
        for (const auto &job : jobs) {
            core::CacheOutcome o = core::CacheOutcome::Simulated;
            rsp.stats += cache.stats(req.kind, req.unroll, job, &o);
            if (coldness(o) > coldness(worst))
                worst = o;
        }
    }
    rsp.ok = true;
    rsp.simVersion = simulatorVersion();
    rsp.arch = core::archKindName(req.kind);
    rsp.unroll = req.unroll;
    rsp.cache = core::cacheOutcomeName(worst);
    return rsp;
}

Response
Engine::executePut(const Request &req)
{
    // A replication write: a peer simulated the triple and pushed the
    // finished stats. Insert into this shard's tiers (memory plus
    // write-through) without simulating; stale stamps are rejected so
    // a mixed-version fleet cannot poison a store.
    req.spec.validate();
    if (req.putSimVersion != simulatorVersion())
        util::fatal("put carries simulator version \"",
                    req.putSimVersion, "\", this daemon runs \"",
                    simulatorVersion(), "\"");
    liveCache().insert(req.kind, req.unroll, req.spec, req.putStats);
    Response rsp;
    rsp.id = req.id;
    rsp.ok = true;
    rsp.simVersion = simulatorVersion();
    rsp.arch = core::archKindName(req.kind);
    rsp.unroll = req.unroll;
    rsp.stats = req.putStats;
    rsp.cache = "put";
    return rsp;
}

Response
Engine::execute(const Request &req, std::uint64_t admitUs)
{
    obs::TraceSink &sink = obs::TraceSink::instance();
    const bool tracing = sink.enabled();
    // Resolve the hop's distributed identity: continue the sender's
    // trace when the request carries a parseable context (the hop
    // span's parent is the sender's span), start a fresh root
    // otherwise. Ids are only generated while tracing is armed.
    obs::TraceContext ctx;
    std::uint64_t parentSpan = 0;
    std::uint64_t hopTs = 0;
    if (tracing) {
        if (!req.trace.empty()) {
            try {
                ctx = obs::decodeTraceContext(req.trace);
                parentSpan = ctx.span;
                ctx.span = obs::newSpanId();
            } catch (const util::FatalError &) {
                // An unparseable context must not fail the request —
                // trace the hop as a fresh root instead.
            }
        }
        if (!ctx.valid())
            ctx = obs::newTraceContext();
        hopTs = req.decodeTs != 0 ? req.decodeTs : sink.nowUs();
    }
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t bodyTs = tracing ? sink.nowUs() : 0;
    Response rsp;
    try {
        rsp = req.put ? executePut(req) : executeSpec(req);
    } catch (const std::exception &e) {
        rsp = errorResponse(req.id, e.what());
    }
    const auto t1 = std::chrono::steady_clock::now();
    const std::uint64_t elapsed_us = std::uint64_t(
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
            .count());
    rsp.latencyUs = opts_.deterministic ? 0 : elapsed_us;
    if (tracing) {
        // Build the hop's span batch locally, then commit it in one
        // shot iff the sampling policy keeps this request — which is
        // what makes tail-keep possible: the verdict needs the final
        // latency, so spans cannot stream into the sink as they
        // close.
        const std::uint64_t bodyEnd = sink.nowUs();
        const int lane = obs::TraceSink::threadLane();
        std::vector<obs::TraceEvent> evs;
        auto push = [&](const char *name, std::uint64_t ts,
                        std::uint64_t dur, std::uint64_t span,
                        std::uint64_t parent,
                        const std::string &extra) {
            obs::TraceEvent ev;
            ev.name = name;
            ev.cat = "serve";
            ev.pid = 0;
            ev.tid = lane;
            ev.ts = ts;
            ev.dur = dur;
            ev.args = obs::spanArgs(ctx, span, parent, extra);
            evs.push_back(std::move(ev));
        };
        const std::uint64_t hopSpan = ctx.span;
        if (req.decodeDurUs != 0)
            push("serve.decode", req.decodeTs, req.decodeDurUs,
                 obs::newSpanId(), hopSpan, "");
        if (admitUs != 0 && bodyTs >= admitUs)
            push("serve.queue_wait", admitUs, bodyTs - admitUs,
                 obs::newSpanId(), hopSpan, "");
        if (rsp.ok && req.put) {
            push("serve.put", bodyTs, bodyEnd - bodyTs,
                 obs::newSpanId(), hopSpan, "");
        } else if (rsp.ok) {
            const std::uint64_t cacheSpan = obs::newSpanId();
            push("serve.cache", bodyTs, bodyEnd - bodyTs, cacheSpan,
                 hopSpan, "\"tier\":\"" + rsp.cache + "\"");
            if (rsp.cache == "sim")
                push("serve.simulate", bodyTs, bodyEnd - bodyTs,
                     obs::newSpanId(), cacheSpan, "");
        }
        push("serve.request", hopTs,
             bodyEnd >= hopTs ? bodyEnd - hopTs : 0, hopSpan,
             parentSpan, "\"id\":" + std::to_string(req.id));
        const bool keepIt = sink.keep(ctx, elapsed_us);
        if (keepIt) {
            sink.recordBatch(std::move(evs));
            mLatencyUs_.exemplar(elapsed_us, ctx.traceIdHex());
        }
        rsp.traceKept = keepIt;
        rsp.traceId = ctx.traceIdHex();
        rsp.traceSpan = hopSpan;
    }
    {
        std::lock_guard<std::mutex> lk(counters_m_);
        ++counters_.requests;
        if (!rsp.ok)
            ++counters_.errors;
        else if (rsp.cache == "put")
            ++counters_.puts;
        else if (rsp.cache == "mem")
            ++counters_.memHits;
        else if (rsp.cache == "disk")
            ++counters_.diskHits;
        else
            ++counters_.simulated;
    }
    // Registry mirrors: observational only, never in the response.
    mRequests_.add(1);
    if (!rsp.ok)
        mErrors_.add(1);
    else if (rsp.cache == "put")
        mPuts_.add(1);
    else if (rsp.cache == "mem")
        mMemHits_.add(1);
    else if (rsp.cache == "disk")
        mDiskHits_.add(1);
    else
        mSimulated_.add(1);
    mLatencyUs_.observe(elapsed_us);
    if (obs::EventLog::instance().enabled())
        obs::EventLog::instance().log(
            "serve.request",
            "\"id\":" + std::to_string(req.id) + ",\"ok\":" +
                (rsp.ok ? "true" : "false") + ",\"cache\":\"" +
                rsp.cache + "\",\"latencyUs\":" +
                std::to_string(elapsed_us) +
                (rsp.ok ? ",\"stats\":" + sim::toJson(rsp.stats)
                        : std::string()));
    return rsp;
}

std::future<Response>
Engine::submit(const Request &req)
{
    // Telemetry probes bypass the admission queue, the dedupe table
    // and the worker pool entirely: observability must answer even
    // when the queue is saturated, and a probe must never coalesce
    // with (or displace) simulation work.
    if (req.statsProbe) {
        mStatsProbes_.add(1);
        std::promise<Response> ready;
        ready.set_value(statsResponse(req.id));
        return ready.get_future();
    }
    // Fleet-topology probes answer from configuration the same way.
    if (req.fleetProbe) {
        mFleetProbes_.add(1);
        std::promise<Response> ready;
        ready.set_value(fleetResponse(req.id));
        return ready.get_future();
    }
    // So do the live-collection probes: a saturated queue must not
    // stop a scrape or a trace drain.
    if (req.metricsProbe) {
        mMetricsProbes_.add(1);
        std::promise<Response> ready;
        ready.set_value(metricsResponse(req.id));
        return ready.get_future();
    }
    if (req.traceDrainProbe) {
        mTraceDrains_.add(1);
        std::promise<Response> ready;
        ready.set_value(traceDrainResponse(req.id));
        return ready.get_future();
    }

    std::unique_lock<std::mutex> lk(m_);
    if (draining_)
        util::fatal("engine: submit after drain");

    // Single-flight: piggyback on an identical in-flight request.
    // The follower future is deferred — it costs no worker and only
    // re-labels the leader's response with its own id. Checked before
    // admission: a duplicate costs no queue slot, so it must neither
    // block nor shed behind a full queue.
    const std::string key = flightKey(req);
    auto it = inflightByKey_.find(key);
    if (it != inflightByKey_.end()) {
        std::shared_future<Response> leader = it->second;
        {
            std::lock_guard<std::mutex> clk(counters_m_);
            ++counters_.requests;
            ++counters_.deduped;
        }
        mRequests_.add(1);
        mDeduped_.add(1);
        const std::uint64_t id = req.id;
        return std::async(std::launch::deferred,
                          [leader, id]() mutable {
                              Response rsp = leader.get();
                              rsp.id = id;
                              rsp.cache = "dup";
                              rsp.latencyUs = 0;
                              return rsp;
                          });
    }

    if (opts_.shedOverload) {
        // Admission control for fleet shards: a full queue answers
        // immediately instead of blocking, and the caller (usually
        // fleet::Router) retries with backoff. The reader thread
        // stays live, so probes and drains keep working under load.
        if (inFlight_ >= opts_.maxQueue) {
            {
                std::lock_guard<std::mutex> clk(counters_m_);
                ++counters_.requests;
                ++counters_.overloaded;
            }
            mRequests_.add(1);
            mOverloaded_.add(1);
            std::promise<Response> shed;
            shed.set_value(errorResponse(req.id, kOverloadedError));
            return shed.get_future();
        }
    } else {
        queueCv_.wait(lk, [&] {
            return draining_ || inFlight_ < opts_.maxQueue;
        });
        if (draining_)
            util::fatal("engine: submit after drain");
    }

    ++inFlight_;
    mInFlight_.add(1);
    // Admission timestamp on the trace clock: the gap until the
    // worker picks the request up becomes the serve.queue_wait span.
    const std::uint64_t admitUs =
        obs::TraceSink::instance().enabled()
            ? obs::TraceSink::instance().nowUs()
            : 0;
    auto task = std::make_shared<std::packaged_task<Response()>>(
        [this, req, key, admitUs] {
            const Response rsp = execute(req, admitUs);
            // Unregister before the future becomes ready: a caller
            // that has already observed .get() must miss the flight
            // table on its next submit, or an immediate resubmit
            // dedupes against a finished request instead of hitting
            // the memory tier.
            std::lock_guard<std::mutex> glk(m_);
            inflightByKey_.erase(key);
            --inFlight_;
            mInFlight_.add(-1);
            queueCv_.notify_all();
            return rsp;
        });
    std::shared_future<Response> shared =
        task->get_future().share();
    inflightByKey_.emplace(key, shared);
    lk.unlock();

    pool_->submit([task] { (*task)(); });

    // Adapt the shared_future back to the unique future the caller
    // owns (deferred: just forwards the shared result).
    return std::async(std::launch::deferred,
                      [shared]() { return shared.get(); });
}

Response
Engine::handle(const Request &req)
{
    return submit(req).get();
}

void
Engine::drain()
{
    std::unique_lock<std::mutex> lk(m_);
    draining_ = true;
    queueCv_.notify_all();
    queueCv_.wait(lk, [&] { return inFlight_ == 0; });
    lk.unlock();
    pool_->wait();
}

std::string
Engine::telemetryJson()
{
    // Build through util::json so the text is canonical: parse() +
    // dump() of this string reproduces it byte for byte (insertion
    // order preserved, every value an exact integer), which the
    // protocol round-trip tests rely on.
    const obs::Snapshot snap = obs::Registry::instance().snapshot();
    util::json::Object counters;
    for (const auto &[name, v] : snap.counters())
        counters.set(name, util::json::Value(v));
    util::json::Object gauges;
    for (const auto &[name, v] : snap.gauges())
        gauges.set(name, util::json::Value(std::uint64_t(
                             v < 0 ? 0 : v))); // levels never negative
    util::json::Object histograms;
    for (const auto &[name, h] : snap.histograms()) {
        util::json::Object hist;
        hist.set("count", util::json::Value(h.count));
        hist.set("sum", util::json::Value(h.sum));
        util::json::Array buckets;
        for (std::uint64_t b : h.buckets)
            buckets.push_back(util::json::Value(b));
        hist.set("buckets", util::json::Value(std::move(buckets)));
        histograms.set(name, util::json::Value(std::move(hist)));
    }
    util::json::Object root;
    root.set("counters", util::json::Value(std::move(counters)));
    root.set("gauges", util::json::Value(std::move(gauges)));
    root.set("histograms", util::json::Value(std::move(histograms)));
    return util::json::Value(std::move(root)).dump();
}

Response
Engine::statsResponse(std::uint64_t id) const
{
    Response rsp;
    rsp.id = id;
    rsp.ok = true;
    rsp.simVersion = simulatorVersion();
    rsp.telemetry = telemetryJson();
    return rsp;
}

Response
Engine::fleetResponse(std::uint64_t id) const
{
    if (opts_.fleetJson.empty())
        return errorResponse(id, "daemon is not part of a fleet");
    Response rsp;
    rsp.id = id;
    rsp.ok = true;
    rsp.simVersion = simulatorVersion();
    rsp.fleet = opts_.fleetJson;
    return rsp;
}

Response
Engine::metricsResponse(std::uint64_t id) const
{
    Response rsp;
    rsp.id = id;
    rsp.ok = true;
    rsp.simVersion = simulatorVersion();
    // Never empty: this engine's own counters are registered at
    // construction, so the encode branch always fires.
    rsp.metricsText =
        obs::renderPrometheus(obs::Registry::instance().snapshot());
    return rsp;
}

Response
Engine::traceDrainResponse(std::uint64_t id) const
{
    Response rsp;
    rsp.id = id;
    rsp.ok = true;
    rsp.simVersion = simulatorVersion();
    // With tracing off (or nothing buffered) this is {"events":[]} —
    // still non-empty text, so the response form stays a drain.
    rsp.spans =
        encodeSpanBatch(obs::TraceSink::instance().drain());
    return rsp;
}

EngineCounters
Engine::counters() const
{
    std::lock_guard<std::mutex> lk(counters_m_);
    return counters_;
}

std::string
Engine::summary() const
{
    const EngineCounters c = counters();
    std::string out =
        "served " + std::to_string(c.requests) + " requests: " +
        std::to_string(c.memHits) + " mem, " +
        std::to_string(c.diskHits) + " disk, " +
        std::to_string(c.simulated) + " simulated, " +
        std::to_string(c.deduped) + " deduped, " +
        std::to_string(c.puts) + " puts, " +
        std::to_string(c.overloaded) + " overloaded, " +
        std::to_string(c.errors) + " errors";
    if (store())
        out += "; " + store()->summary();
    return out;
}

} // namespace serve
} // namespace ganacc
