/**
 * @file
 * Conformance-harness implementation: the two SUT wrappers, the
 * response/counter/store differs and the lockstep driver.
 */

#include "conform/harness.hh"

#include <atomic>
#include <chrono>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <thread>

#include <unistd.h>

#include "conform/fdstream.hh"
#include "conform/reference.hh"
#include "core/cycle_cache.hh"
#include "fault/fs_faults.hh"
#include "obs/metrics.hh"
#include "serve/client.hh"
#include "serve/daemon.hh"
#include "serve/engine.hh"
#include "sim/json.hh"
#include "sim/stats_diff.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace fs = std::filesystem;

namespace ganacc {
namespace conform {

namespace {

bool
writeAllFd(int fd, const std::string &bytes)
{
    std::size_t off = 0;
    while (off < bytes.size()) {
        ssize_t n =
            ::write(fd, bytes.data() + off, bytes.size() - off);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return false;
        off += std::size_t(n);
    }
    return true;
}

/** Line-buffered reader over a pipe fd (mirror of the daemon's). */
class LineReader
{
  public:
    explicit LineReader(int fd) : fd_(fd) {}

    bool
    getline(std::string &line)
    {
        while (true) {
            auto nl = buf_.find('\n');
            if (nl != std::string::npos) {
                line = buf_.substr(0, nl);
                buf_.erase(0, nl + 1);
                return true;
            }
            char chunk[4096];
            ssize_t n = ::read(fd_, chunk, sizeof chunk);
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0) {
                if (buf_.empty())
                    return false;
                line.swap(buf_);
                buf_.clear();
                return true;
            }
            buf_.append(chunk, std::size_t(n));
        }
    }

  private:
    int fd_;
    std::string buf_;
};

/** A daemon under test: start, exchange lines, stop-and-drain. */
class Sut
{
  public:
    virtual ~Sut() = default;

    virtual void start() = 0;

    /** Pipeline `lines`, then read one response line per request.
     *  Throws util::FatalError when the transport dies. */
    virtual std::vector<std::string>
    transact(const std::vector<std::string> &lines) = 0;

    /** Stop the daemon and drain. Returns "" when every accepted
     *  request was answered, else a description of the violation. */
    virtual std::string stop() = 0;

    /** Emulate process death: stop-drain, wipe the memory tier the
     *  way an exec() would, start a fresh daemon over the same
     *  store directory. */
    std::string
    restart()
    {
        const std::string err = stop();
        core::CycleCache::instance().clear();
        start();
        return err;
    }

  protected:
    /** Shared drain verdict: every line sent must have been read and
     *  answered by the transport before it returned. */
    static std::string
    drainVerdict(const serve::ServeTotals &totals,
                 std::uint64_t sent, const std::string &threadError)
    {
        if (!threadError.empty())
            return "daemon thread failed: " + threadError;
        if (totals.lines != sent)
            return "daemon read " + std::to_string(totals.lines) +
                   " of " + std::to_string(sent) + " request lines";
        if (totals.responses != totals.lines)
            return "daemon answered " +
                   std::to_string(totals.responses) + " of " +
                   std::to_string(totals.lines) +
                   " accepted requests";
        return "";
    }

    static serve::EngineOptions
    engineOptions(const RunOptions &opt, const std::string &storeDir)
    {
        serve::EngineOptions eo;
        eo.maxQueue = opt.maxQueue;
        eo.cacheDir = storeDir;
        eo.deterministic = true;
        return eo;
    }
};

/** AF_UNIX daemon: serve::runSocketServer + serve::Client. */
class UnixSut : public Sut
{
  public:
    UnixSut(const RunOptions &opt, std::string storeDir)
        : opt_(opt), storeDir_(std::move(storeDir)),
          socket_(opt.scratchDir + "/sock")
    {
    }

    ~UnixSut() override
    {
        try {
            if (thread_.joinable())
                stop();
        } catch (...) {
        }
    }

    void
    start() override
    {
        sent_ = 0;
        totals_ = {};
        threadError_.clear();
        stop_.store(false);
        engine_ = std::make_unique<serve::Engine>(
            engineOptions(opt_, storeDir_));
        thread_ = std::thread([this] {
            try {
                totals_ =
                    serve::runSocketServer(socket_, *engine_, stop_);
            } catch (const std::exception &e) {
                threadError_ = e.what();
            }
        });
        client_ = std::make_unique<serve::Client>();
        for (int attempt = 0;; ++attempt) {
            try {
                client_->connect(socket_);
                break;
            } catch (const std::exception &) {
                if (!threadError_.empty() || attempt > 2500)
                    util::fatal("conform: cannot reach daemon at ",
                                socket_, threadError_.empty()
                                             ? ""
                                             : ": " + threadError_);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(2));
            }
        }
    }

    std::vector<std::string>
    transact(const std::vector<std::string> &lines) override
    {
        for (const std::string &line : lines)
            client_->sendLine(line);
        sent_ += lines.size();
        std::vector<std::string> out;
        out.reserve(lines.size());
        for (std::size_t i = 0; i < lines.size(); ++i)
            out.push_back(client_->recvLine());
        return out;
    }

    std::string
    stop() override
    {
        client_->close();
        stop_.store(true);
        thread_.join();
        const std::string err =
            drainVerdict(totals_, sent_, threadError_);
        engine_.reset();
        return err;
    }

  private:
    RunOptions opt_;
    std::string storeDir_;
    std::string socket_;
    std::unique_ptr<serve::Engine> engine_;
    std::unique_ptr<serve::Client> client_;
    std::thread thread_;
    std::atomic<bool> stop_{false};
    serve::ServeTotals totals_;
    std::string threadError_;
    std::uint64_t sent_ = 0;
};

/** Pipe daemon: serve::runPipeServer over real pipe(2) pairs. */
class PipeSut : public Sut
{
  public:
    PipeSut(const RunOptions &opt, std::string storeDir)
        : opt_(opt), storeDir_(std::move(storeDir))
    {
    }

    ~PipeSut() override
    {
        try {
            if (thread_.joinable())
                stop();
        } catch (...) {
        }
    }

    void
    start() override
    {
        sent_ = 0;
        totals_ = {};
        threadError_.clear();
        if (::pipe(toSrv_) != 0 || ::pipe(fromSrv_) != 0)
            util::fatal("conform: pipe(2): ", std::strerror(errno));
        engine_ = std::make_unique<serve::Engine>(
            engineOptions(opt_, storeDir_));
        thread_ = std::thread([this] {
            try {
                FdIStream in(toSrv_[0]);
                FdOStream out(fromSrv_[1]);
                totals_ = serve::runPipeServer(in, out, *engine_);
                engine_->drain();
            } catch (const std::exception &e) {
                threadError_ = e.what();
            }
        });
        reader_ = std::make_unique<LineReader>(fromSrv_[0]);
    }

    std::vector<std::string>
    transact(const std::vector<std::string> &lines) override
    {
        std::string block;
        for (const std::string &line : lines) {
            block += line;
            block += '\n';
        }
        if (!writeAllFd(toSrv_[1], block))
            util::fatal("conform: pipe write failed");
        sent_ += lines.size();
        std::vector<std::string> out;
        out.reserve(lines.size());
        for (std::size_t i = 0; i < lines.size(); ++i) {
            std::string line;
            if (!reader_->getline(line))
                util::fatal("conform: daemon closed the pipe with ",
                            lines.size() - i, " responses pending");
            out.push_back(std::move(line));
        }
        return out;
    }

    std::string
    stop() override
    {
        ::close(toSrv_[1]); // EOF: the pump loop drains and returns
        toSrv_[1] = -1;
        thread_.join();
        ::close(toSrv_[0]);
        ::close(fromSrv_[1]);
        toSrv_[0] = fromSrv_[1] = -1;
        std::string leftover;
        if (reader_->getline(leftover) && !leftover.empty())
            return "daemon wrote an unsolicited response: " +
                   leftover;
        ::close(fromSrv_[0]);
        fromSrv_[0] = -1;
        reader_.reset();
        const std::string err =
            drainVerdict(totals_, sent_, threadError_);
        engine_.reset();
        return err;
    }

  private:
    RunOptions opt_;
    std::string storeDir_;
    std::unique_ptr<serve::Engine> engine_;
    std::unique_ptr<LineReader> reader_;
    std::thread thread_;
    serve::ServeTotals totals_;
    std::string threadError_;
    std::uint64_t sent_ = 0;
    int toSrv_[2] = {-1, -1};
    int fromSrv_[2] = {-1, -1};
};

std::unique_ptr<Sut>
makeSut(const RunOptions &opt, const std::string &storeDir)
{
    if (opt.mode == SutMode::Unix)
        return std::make_unique<UnixSut>(opt, storeDir);
    return std::make_unique<PipeSut>(opt, storeDir);
}

/** The wire lines one operation sends. */
std::vector<std::string>
wireLines(const Op &op)
{
    switch (op.kind) {
      case OpKind::SimRequest: {
        serve::Request req;
        req.id = op.id;
        req.kind = op.arch;
        req.unroll = op.unroll;
        req.spec = op.spec;
        req.hasSpec = true;
        return {serve::encodeRequest(req)};
      }
      case OpKind::NetRequest: {
        serve::Request req;
        req.id = op.id;
        req.kind = op.arch;
        req.unroll = op.unroll;
        req.model = op.model;
        req.family = op.family;
        return {serve::encodeRequest(req)};
      }
      case OpKind::DupBurst: {
        std::vector<std::string> lines;
        for (int i = 0; i < op.count; ++i) {
            serve::Request req;
            req.id = op.id + std::uint64_t(i);
            req.kind = op.arch;
            req.unroll = op.unroll;
            req.spec = op.spec;
            req.hasSpec = true;
            lines.push_back(serve::encodeRequest(req));
        }
        return lines;
      }
      case OpKind::Malformed:
        return {op.raw};
      case OpKind::StatsProbe: {
        serve::Request req;
        req.id = op.id;
        req.statsProbe = true;
        return {serve::encodeRequest(req)};
      }
      default:
        return {};
    }
}

/** Compare one decoded response against the model's expectation;
 *  "" when they agree. */
std::string
diffOneResponse(const serve::Response &got,
                const ExpectedResponse &want)
{
    if (got.id != want.id)
        return "id " + std::to_string(got.id) + ", model expects " +
               std::to_string(want.id);
    if (got.ok != want.ok)
        return std::string("ok=") + (got.ok ? "true" : "false") +
               ", model expects " + (want.ok ? "true" : "false") +
               (got.ok ? "" : " (error: " + got.error + ")");
    if (!want.ok) {
        if (want.checkError && got.error != want.error)
            return "error \"" + got.error + "\", model expects \"" +
                   want.error + "\"";
        return "";
    }
    if (got.simVersion != serve::simulatorVersion())
        return "sim version \"" + got.simVersion + "\"";
    if (want.isProbe) {
        if (got.telemetry.empty())
            return "probe response carries no telemetry";
        return "";
    }
    if (got.arch != want.arch)
        return "arch \"" + got.arch + "\", model expects \"" +
               want.arch + "\"";
    if (sim::toJson(got.unroll) != want.unrollJson)
        return "unroll " + sim::toJson(got.unroll) +
               ", model expects " + want.unrollJson;
    bool tierOk = false;
    for (const std::string &t : want.allowedTiers)
        tierOk = tierOk || t == got.cache;
    if (!tierOk) {
        std::string tiers;
        for (const std::string &t : want.allowedTiers)
            tiers += (tiers.empty() ? "" : "/") + t;
        return "cache tier \"" + got.cache + "\", model admits " +
               tiers;
    }
    if (got.latencyUs != 0)
        return "latencyUs " + std::to_string(got.latencyUs) +
               " in deterministic mode";
    const std::string d = sim::diffRunStats(got.stats, want.stats);
    if (!d.empty())
        return "stats diverge: " + d;
    return "";
}

std::map<std::string, std::uint64_t>
snapshotCounters()
{
    std::map<std::string, std::uint64_t> out;
    const obs::Snapshot snap = obs::Registry::instance().snapshot();
    for (const auto &[name, v] : snap.counters())
        out[name] = v;
    return out;
}

/** Check a probe's telemetry payload against the model's counter
 *  expectations. */
void
checkCounters(std::size_t opIndex, const std::string &telemetry,
              const CounterExpectations &c,
              const std::map<std::string, std::uint64_t> &baseline,
              std::vector<Divergence> &out)
{
    const util::json::Value doc = util::json::parse(telemetry);
    const util::json::Object &root = doc.asObject();
    const util::json::Object &counters =
        root.at("counters").asObject();
    const util::json::Object &gauges = root.at("gauges").asObject();
    auto cval = [&](const char *name) -> std::uint64_t {
        const util::json::Value *v = counters.find(name);
        return v ? v->asUint64() : 0;
    };
    auto gval = [&](const char *name) -> std::uint64_t {
        const util::json::Value *v = gauges.find(name);
        return v ? v->asUint64() : 0;
    };
    auto base = [&](const char *name) -> std::uint64_t {
        auto it = baseline.find(name);
        return it == baseline.end() ? 0 : it->second;
    };
    // The serve counters are process-cumulative (the obs registry
    // outlives engines), so the model's expectations are deltas
    // against the run-start snapshot.
    auto serveDelta = [&](const char *name) {
        return cval(name) - base(name);
    };
    auto check = [&](const char *label, std::uint64_t got,
                     const Interval &want) {
        if (!want.admits(got))
            out.push_back(
                {opIndex, std::string("probe: ") + label + " = " +
                              std::to_string(got) +
                              ", model expects " + want.str()});
    };
    check("serve requests",
          serveDelta("ganacc_serve_requests_total"), c.requests);
    check("serve errors", serveDelta("ganacc_serve_errors_total"),
          c.errors);
    check("serve stats probes",
          serveDelta("ganacc_serve_stats_probes_total"), c.probes);
    check("serve disk hits",
          serveDelta("ganacc_serve_disk_hits_total"), c.diskHits);
    check("serve simulated",
          serveDelta("ganacc_serve_simulated_total"), c.simulated);
    const std::uint64_t mem =
        serveDelta("ganacc_serve_mem_hits_total");
    const std::uint64_t dup = serveDelta("ganacc_serve_deduped_total");
    check("serve mem hits", mem, c.memHits);
    check("serve deduped", dup, c.deduped);
    check("serve mem+dup", mem + dup, c.memPlusDup);
    // Cache counters reset with CycleCache::clear(), store counters
    // with each store session: both compare absolute.
    check("cache hits", cval("ganacc_cache_mem_hits_total"),
          c.cacheHits);
    check("cache misses", cval("ganacc_cache_misses_total"),
          c.cacheMisses);
    check("cache disk hits", cval("ganacc_cache_disk_hits_total"),
          c.cacheDiskHits);
    check("cache simulated", cval("ganacc_cache_simulated_total"),
          c.cacheSimulated);
    check("store hits", cval("ganacc_store_hits_total"),
          c.storeHits);
    check("store misses", cval("ganacc_store_misses_total"),
          c.storeMisses);
    check("store stale misses",
          cval("ganacc_store_stale_misses_total"), c.storeStale);
    check("store corrupt misses",
          cval("ganacc_store_corrupt_misses_total"), c.storeCorrupt);
    check("store writes", cval("ganacc_store_writes_total"),
          c.storeWrites);
    if (gval("ganacc_cache_entries") != c.cacheEntries)
        out.push_back(
            {opIndex,
             "probe: cache entries = " +
                 std::to_string(gval("ganacc_cache_entries")) +
                 ", model expects " +
                 std::to_string(c.cacheEntries)});
    if (gval("ganacc_serve_inflight") != 0)
        out.push_back({opIndex,
                       "probe: inflight gauge nonzero in lockstep"});
}

/** Perform a CorruptEntry op on the real filesystem. */
void
corruptFile(const ReferenceModel &model, const Op &op)
{
    const fs::path path =
        model.entryPath(op.arch, op.unroll, op.spec);
    std::error_code ec;
    fs::create_directories(path.parent_path(), ec);
    std::string bytes;
    switch (op.corrupt) {
      case CorruptMode::Garbage:
        bytes = "@@not json@@ {{{ \xff\xfe broken";
        break;
      case CorruptMode::Truncate: {
        std::ifstream is(path, std::ios::binary);
        std::ostringstream text;
        text << is.rdbuf();
        bytes = text.str();
        if (bytes.empty())
            bytes = ReferenceModel::entryBody(
                op.arch, op.unroll, op.spec,
                ReferenceModel::directStats(op.arch, op.unroll,
                                            op.spec),
                serve::simulatorVersion());
        bytes.resize(bytes.size() / 2);
        break;
      }
      case CorruptMode::ZeroByte:
        break; // empty file
    }
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << bytes;
}

/** Perform a PlantStale op: a fully valid entry whose version stamp
 *  names a foreign simulator and whose counters are deliberately
 *  perturbed — a store that skips stale-version invalidation serves
 *  these wrong numbers, which is exactly what the harness's
 *  self-test must catch. */
void
plantStaleFile(const ReferenceModel &model, const Op &op)
{
    const fs::path path =
        model.entryPath(op.arch, op.unroll, op.spec);
    std::error_code ec;
    fs::create_directories(path.parent_path(), ec);
    sim::RunStats st =
        ReferenceModel::directStats(op.arch, op.unroll, op.spec);
    st.cycles += 1; // provably wrong, minimally so
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << ReferenceModel::entryBody(op.arch, op.unroll, op.spec, st,
                                    "ganacc-0.0.0+conform-stale");
}

/** RAII: disarm the store bug and the fault budgets on every exit
 *  path, so a throwing run cannot poison the next one. */
struct ProcessStateGuard
{
    ~ProcessStateGuard()
    {
        serve::setStoreBugForTesting(serve::StoreBug::None);
        fault::clearFsFaults();
    }
};

} // namespace

std::string
sutModeName(SutMode m)
{
    return m == SutMode::Unix ? "unix" : "pipe";
}

std::string
defaultScratchDir()
{
    return (fs::temp_directory_path() /
            ("ganacc-conform-" + std::to_string(::getpid())))
        .string();
}

std::string
Report::text() const
{
    std::ostringstream os;
    for (const Divergence &d : divergences)
        os << "op " << d.opIndex << ": " << d.what << "\n";
    os << opsApplied << " ops applied, " << linesSent
       << " lines sent, " << divergences.size() << " divergences";
    return os.str();
}

Report
runConformance(const std::vector<Op> &seq, const RunOptions &opt)
{
    if (opt.scratchDir.empty())
        util::fatal("conform: RunOptions.scratchDir must be set");
    Report rep;
    ProcessStateGuard guard;
    fault::clearFsFaults();
    serve::setStoreBugForTesting(opt.bug);
    fs::remove_all(opt.scratchDir);
    fs::create_directories(opt.scratchDir);
    const std::string storeDir = opt.scratchDir + "/store";
    core::CycleCache::instance().clear();
    const auto baseline = snapshotCounters();

    ReferenceModel model(storeDir);
    std::unique_ptr<Sut> sut = makeSut(opt, storeDir);
    sut->start();

    auto diverged = [&] {
        return int(rep.divergences.size()) >= opt.maxDivergences;
    };

    for (std::size_t i = 0; i < seq.size() && !diverged(); ++i) {
        const Op &op = seq[i];
        rep.opsApplied = i + 1;
        try {
            if (op.sendsRequests()) {
                const std::vector<std::string> lines = wireLines(op);
                rep.linesSent += lines.size();
                const std::vector<std::string> raw =
                    sut->transact(lines);
                const std::vector<ExpectedResponse> want =
                    model.apply(op);
                if (raw.size() != want.size()) {
                    rep.divergences.push_back(
                        {i, std::to_string(raw.size()) +
                                " responses to " +
                                std::to_string(want.size()) +
                                " requests"});
                    continue;
                }
                for (std::size_t r = 0; r < raw.size(); ++r) {
                    serve::Response rsp;
                    try {
                        rsp = serve::decodeResponse(raw[r]);
                    } catch (const std::exception &e) {
                        rep.divergences.push_back(
                            {i, std::string(
                                    "undecodable response: ") +
                                    e.what() + ": " + raw[r]});
                        continue;
                    }
                    const std::string d =
                        diffOneResponse(rsp, want[r]);
                    if (!d.empty())
                        rep.divergences.push_back({i, d});
                    if (want[r].isProbe && rsp.ok &&
                        !rsp.telemetry.empty())
                        checkCounters(i, rsp.telemetry,
                                      model.counters(), baseline,
                                      rep.divergences);
                }
            } else {
                switch (op.kind) {
                  case OpKind::EvictMemory:
                    core::CycleCache::instance().clear();
                    break;
                  case OpKind::EvictEntry: {
                    std::error_code ec;
                    fs::remove(model.entryPath(op.arch, op.unroll,
                                               op.spec),
                               ec);
                    break;
                  }
                  case OpKind::CorruptEntry:
                    corruptFile(model, op);
                    break;
                  case OpKind::PlantStale:
                    plantStaleFile(model, op);
                    break;
                  case OpKind::FsFault:
                    fault::armFsFaults(op.faults);
                    break;
                  case OpKind::Restart: {
                    const std::string err = sut->restart();
                    if (!err.empty())
                        rep.divergences.push_back({i, err});
                    break;
                  }
                  default:
                    break;
                }
                model.apply(op);
            }
        } catch (const std::exception &e) {
            rep.divergences.push_back(
                {i, std::string("harness: ") + e.what()});
            break;
        }
        if (opt.storeCheckInterval &&
            (i + 1) % opt.storeCheckInterval == 0) {
            const std::string d = model.diffStore();
            if (!d.empty())
                rep.divergences.push_back({i, "store scan: " + d});
        }
    }

    try {
        const std::string err = sut->stop();
        if (!err.empty())
            rep.divergences.push_back({seq.size(), "drain: " + err});
    } catch (const std::exception &e) {
        rep.divergences.push_back(
            {seq.size(), std::string("drain: ") + e.what()});
    }
    const std::string d = model.diffStore();
    if (!d.empty())
        rep.divergences.push_back(
            {seq.size(), "final store scan: " + d});
    return rep;
}

} // namespace conform
} // namespace ganacc
