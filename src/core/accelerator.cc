/**
 * @file
 * Accelerator facade implementation.
 */

#include "core/accelerator.hh"

#include "sim/closed_form.hh"
#include "util/logging.hh"

namespace ganacc {
namespace core {

GanAccelerator::GanAccelerator(const AcceleratorConfig &cfg) : cfg_(cfg)
{
    wPof_ = mem::deriveWPof(cfg_.offchip);
    stPof_ = mem::deriveStPof(wPof_);
    totalPes_ = stPof_ * cfg_.pesPerChannelSt +
                wPof_ * cfg_.pesPerChannelW;
}

sched::Design
GanAccelerator::design() const
{
    return sched::Design::combo(ArchKind::ZFOST, ArchKind::ZFWST,
                                totalPes_);
}

AcceleratorReport
GanAccelerator::evaluate(const gan::GanModel &model) const
{
    AcceleratorReport rep;
    sched::Design d = design();
    rep.discUpdate = sched::discriminatorUpdateTiming(d, model);
    rep.genUpdate = sched::generatorUpdateTiming(d, model);
    rep.iterationCyclesDeferred =
        rep.discUpdate.deferredCycles + rep.genUpdate.deferredCycles;
    rep.iterationCyclesSync =
        rep.discUpdate.syncCycles + rep.genUpdate.syncCycles;
    rep.gopsDeferred = sched::iterationGops(
        d, model, sched::SyncPolicy::Deferred, cfg_.offchip.frequencyHz);
    rep.samplesPerSecond =
        cfg_.offchip.frequencyHz / double(rep.iterationCyclesDeferred);
    rep.buffers =
        mem::planBuffers(model, wPof_, cfg_.offchip.bitsPerData / 8);
    rep.resources = estimateResources(totalPes_, rep.buffers);
    rep.fitsDevice = fits(rep.resources, vcu9pBudget());
    rep.engine = sim::simEngineName(sim::simEngine());
    return rep;
}

} // namespace core
} // namespace ganacc
