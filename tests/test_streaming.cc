/**
 * @file
 * Property sweep of the operand-streaming layer: for random layer
 * geometries of both kinds, every phase's (job geometry, streamed
 * operands) pair fed to the golden generic convolution must equal the
 * layer-level reference math. This pins the phase mapping and the
 * streaming transforms against each other across the whole geometry
 * space (kernels 2-5, strides 1-2, every padding, output padding).
 */

#include <gtest/gtest.h>

#include "gan/models.hh"
#include "nn/conv_ref.hh"
#include "sim/phase.hh"
#include "sim/streaming.hh"
#include "tensor/tensor.hh"
#include "util/random.hh"

namespace {

using namespace ganacc;
using gan::LayerSpec;
using sim::Phase;
using tensor::approxEqual;
using tensor::Tensor;
using util::Rng;

/** Random layer of the given kind with consistent geometry. */
LayerSpec
randomLayer(nn::ConvKind kind, Rng &rng)
{
    LayerSpec l;
    l.kind = kind;
    l.act = nn::Activation::None; // activations are host-side anyway
    l.inChannels = rng.uniformInt(1, 3);
    l.outChannels = rng.uniformInt(1, 4);
    for (int attempt = 0; attempt < 100; ++attempt) {
        l.geom.kernel = rng.uniformInt(2, 5);
        l.geom.stride = rng.uniformInt(1, 2);
        l.geom.pad = rng.uniformInt(0, l.geom.kernel - 1);
        l.geom.outPad =
            kind == nn::ConvKind::Transposed
                ? rng.uniformInt(0, l.geom.stride - 1)
                : 0;
        l.inH = l.inW = rng.uniformInt(4, 9);
        // Geometry must be realizable (positive output, invertible
        // for the backward mapping).
        if (kind == nn::ConvKind::Strided) {
            if (l.inH + 2 * l.geom.pad < l.geom.kernel)
                continue;
            int out = tensor::convOutDim(l.inH, l.geom.kernel,
                                         l.geom.stride, l.geom.pad);
            // Backward needs the stuffing geometry to invert.
            int natural = (out - 1) * l.geom.stride + l.geom.kernel -
                          2 * l.geom.pad;
            int extra = l.inH - natural;
            if (extra < 0 || extra >= l.geom.stride)
                continue;
            return l;
        }
        if (l.geom.pad > l.geom.kernel - 1)
            continue;
        int out = (l.inH - 1) * l.geom.stride - 2 * l.geom.pad +
                  l.geom.kernel + l.geom.outPad;
        if (out < 1)
            continue;
        return l;
    }
    GANACC_ASSERT(false, "could not draw a consistent layer");
    return l;
}

/** Build a single-layer model around the layer (head added so the
 *  discriminator chain is valid). */
gan::GanModel
wrap(const LayerSpec &l)
{
    // A one-layer "discriminator" wouldn't matter: we call phaseJobs
    // on a model whose gen (or disc) stack is just this layer plus a
    // compatible pairing. Easiest: use makeModelWithGenerator with
    // the layer in the generator and a trivial head as discriminator.
    LayerSpec head;
    head.kind = nn::ConvKind::Strided;
    head.act = nn::Activation::None;
    head.inChannels = l.outChannels;
    head.inH = l.outH();
    head.inW = l.outW();
    head.outChannels = 1;
    head.geom = nn::Conv2dGeom{l.outH(), 1, 0, 0};
    return gan::makeModelWithGenerator("sweep", {head}, {l});
}

/** A shape-preserving 1x1 layer feeding `l`, so a two-layer stack
 *  chains and GenBackward emits a job for `l`. */
LayerSpec
randomFrontFor(const LayerSpec &l)
{
    LayerSpec f;
    f.kind = nn::ConvKind::Transposed;
    f.act = nn::Activation::None;
    f.inChannels = 2;
    f.outChannels = l.inChannels;
    f.inH = l.inH;
    f.inW = l.inW;
    f.geom = nn::Conv2dGeom{1, 1, 0, 0};
    return f;
}

class StreamingSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(StreamingSweep, AllGenPhasesMatchLayerReference)
{
    Rng rng(7000 + GetParam());
    nn::ConvKind kind = GetParam() % 2 == 0
                            ? nn::ConvKind::Strided
                            : nn::ConvKind::Transposed;
    LayerSpec l = randomLayer(kind, rng);
    gan::GanModel m = wrap(l);

    // Dense layer tensors.
    Tensor in(1, l.inChannels, l.inH, l.inW);
    in.fillUniform(rng);
    Tensor w = kind == nn::ConvKind::Strided
                   ? Tensor(l.outChannels, l.inChannels, l.geom.kernel,
                            l.geom.kernel)
                   : Tensor(l.inChannels, l.outChannels, l.geom.kernel,
                            l.geom.kernel);
    w.fillUniform(rng);
    Tensor derr(1, l.outChannels, l.outH(), l.outW());
    derr.fillUniform(rng);

    // Forward.
    Tensor ref_fwd = kind == nn::ConvKind::Strided
                         ? nn::sconvForward(in, w, l.geom)
                         : nn::tconvForward(in, w, l.geom);
    auto fwd_job = sim::phaseJobs(m, Phase::GenForward)[0];
    auto fwd_ops = sim::streamForward(l, in, w);
    Tensor got_fwd =
        sim::genericConvRef(fwd_job, fwd_ops.input, fwd_ops.kernel);
    EXPECT_TRUE(approxEqual(ref_fwd, got_fwd, 1e-3f))
        << l.describe() << " forward";

    // Weight gradient.
    Tensor ref_dw =
        kind == nn::ConvKind::Strided
            ? nn::sconvBackwardWeights(in, derr, l.geom,
                                       l.geom.kernel, l.geom.kernel)
            : nn::tconvBackwardWeights(in, derr, l.geom,
                                       l.geom.kernel, l.geom.kernel);
    auto gw_job = sim::phaseJobs(m, Phase::GenWeight)[0];
    auto gw_ops = sim::streamWeightGrad(l, in, derr);
    Tensor raw =
        sim::genericConvRef(gw_job, gw_ops.input, gw_ops.kernel);
    Tensor got_dw = sim::finishWeightGrad(l, raw);
    EXPECT_TRUE(approxEqual(ref_dw, got_dw, 1e-3f))
        << l.describe() << " weight grad";

    // Backward data (needs a two-layer stack so the phase emits a
    // job; check the transform directly instead).
    Tensor ref_din =
        kind == nn::ConvKind::Strided
            ? nn::sconvBackwardData(derr, w, l.geom, l.inH, l.inW)
            : nn::tconvBackwardData(derr, w, l.geom, l.inH, l.inW);
    // Build the backward job geometry the way phaseJobs would.
    gan::GanModel two = gan::makeModelWithGenerator(
        "sweep2", m.disc, {randomFrontFor(l), l});
    auto bwd_job = sim::phaseJobs(two, Phase::GenBackward)[0];
    auto bwd_ops = sim::streamBackwardData(l, derr, w);
    Tensor got_din =
        sim::genericConvRef(bwd_job, bwd_ops.input, bwd_ops.kernel);
    EXPECT_TRUE(approxEqual(ref_din, got_din, 1e-3f))
        << l.describe() << " backward data";
}

INSTANTIATE_TEST_SUITE_P(Random, StreamingSweep,
                         ::testing::Range(0, 30));

} // namespace
