/**
 * @file
 * Static-vs-shadow differential validation of the schedule-hazard
 * analyzer: 200 fuzzed ConvSpecs (the same corpus generator as the
 * functional differential suite) across all five paper dataflows plus
 * the NLR-vanilla / ZFOST-raster ablations — the symbolically derived
 * ScheduleRelation must be *bit-identical* to the relation the
 * recorder-armed cycle walk reconstructs, and hazard-free. The CNV and
 * RST baselines have no static model and are checked against their
 * dynamic occupancy envelope instead. Negative paths (port budgets,
 * misbehaving schedules) pin the GA-SCHED-* codes.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <vector>

#include "core/unrolling.hh"
#include "core/zfost.hh"
#include "core/zfwst.hh"
#include "gan/models.hh"
#include "mem/offchip.hh"
#include "sim/arch.hh"
#include "sim/closed_form.hh"
#include "sim/conv_spec.hh"
#include "sim/nlr.hh"
#include "sim/phase.hh"
#include "sim/schedule_recorder.hh"
#include "tensor/tensor.hh"
#include "util/random.hh"
#include "verify/diagnostics.hh"
#include "verify/legality.hh"
#include "verify/schedule_analysis.hh"

namespace {

using namespace ganacc;
using core::ArchKind;
using sim::ConvSpec;
using sim::RunStats;
using sim::Unroll;
using util::Rng;
using verify::ScheduleRelation;

/** Draw one random job over the three GAN convolution patterns (same
 *  distribution as the functional differential fuzz). */
ConvSpec
randomSpec(Rng &rng)
{
    ConvSpec s;
    s.label = "fuzz";
    s.nif = rng.uniformInt(1, 4);
    s.nof = rng.uniformInt(1, 4);
    const int kind = rng.uniformInt(0, 3);
    if (kind == 3) { // head-layer T-CONV: 1x1 map, single-cycle passes
        s.nif = 1;
        s.nof = rng.uniformInt(2, 8);
        s.ih = s.iw = 1;
        s.kh = s.kw = rng.uniformInt(2, 7);
        s.stride = 1;
        s.pad = s.kh - 1;
        s.oh = s.ow = s.kh;
        return s;
    }
    if (kind == 0) { // dense strided S-CONV
        s.ih = s.iw = rng.uniformInt(5, 16);
        s.kh = s.kw = rng.uniformInt(1, 5);
        s.stride = rng.uniformInt(1, 3);
        s.pad = rng.uniformInt(0, s.kh / 2);
        s.oh = tensor::convOutDim(s.ih, s.kh, s.stride, s.pad);
        s.ow = tensor::convOutDim(s.iw, s.kw, s.stride, s.pad);
    } else if (kind == 1) { // zero-stuffed T-CONV
        const int dense = rng.uniformInt(2, 7);
        const int z = rng.uniformInt(2, 3);
        const int extra = rng.uniformInt(0, z - 1);
        s.inZeroStride = z;
        s.inOrigH = s.inOrigW = dense;
        s.ih = s.iw = (dense - 1) * z + 1 + extra;
        s.kh = s.kw = rng.uniformInt(2, 5);
        s.stride = 1;
        s.pad = rng.uniformInt(0, s.kh - 1);
        if (s.ih + 2 * s.pad < s.kh) // kernel overhangs padded input
            return randomSpec(rng);
        s.oh = tensor::convOutDim(s.ih, s.kh, 1, s.pad);
        s.ow = tensor::convOutDim(s.iw, s.kw, 1, s.pad);
    } else { // dilated-kernel W-CONV (4-D output)
        s.ih = s.iw = rng.uniformInt(7, 16);
        const int err = rng.uniformInt(2, 5);
        s.kZeroStride = 2;
        s.kOrigH = s.kOrigW = err;
        s.kh = s.kw = (err - 1) * 2 + 1;
        s.stride = 1;
        s.pad = rng.uniformInt(0, 2);
        s.fourDimOutput = true;
        const int natural = s.ih + 2 * s.pad - s.kh + 1;
        if (natural < 1)
            return randomSpec(rng); // degenerate draw, redo
        s.oh = s.ow = std::min(natural, rng.uniformInt(2, 6));
    }
    if (s.oh < 1 || s.ow < 1)
        return randomSpec(rng);
    return s;
}

/** A random unroll for each dataflow kind, mixing degenerate factors
 *  (1, full bound) with mid-range ones. */
Unroll
randomUnroll(ArchKind kind, const ConvSpec &s, Rng &rng)
{
    switch (kind) {
      case ArchKind::NLR:
        return Unroll{.pIf = rng.uniformInt(1, 5),
                      .pOf = rng.uniformInt(1, 5)};
      case ArchKind::WST:
      case ArchKind::ZFWST:
        return Unroll{.pOf = rng.uniformInt(1, 4),
                      .pKx = rng.uniformInt(1, s.kw + 1),
                      .pKy = rng.uniformInt(1, s.kh + 1)};
      case ArchKind::OST:
      case ArchKind::ZFOST:
        return Unroll{.pOf = rng.uniformInt(1, 4),
                      .pOx = rng.uniformInt(1, 4),
                      .pOy = rng.uniformInt(1, 4)};
    }
    return Unroll{};
}

constexpr ArchKind kAllKinds[] = {ArchKind::NLR, ArchKind::WST,
                                  ArchKind::OST, ArchKind::ZFOST,
                                  ArchKind::ZFWST};

/** Ten random jobs per shard; 20 shards = 200 fuzzed specs. */
class ScheduleShadowFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(ScheduleShadowFuzz, StaticRelationBitIdenticalToShadow)
{
    // The recorder must observe the real cycle walk even when the
    // environment prefers the fast path.
    Rng rng(0x5CED0000ULL + std::uint64_t(GetParam()));
    for (int i = 0; i < 10; ++i) {
        const ConvSpec s = randomSpec(rng);
        verify::Report legal;
        verify::checkConvSpec(s, legal);
        ASSERT_TRUE(legal.ok()) << s.describe();

        for (ArchKind kind : kAllKinds) {
            const Unroll u = randomUnroll(kind, s, rng);

            // The full differential contract, through the public
            // checker: agree bit-for-bit and stay hazard-free.
            verify::Report report;
            EXPECT_TRUE(
                verify::checkScheduleAgainstShadow(kind, u, s, report))
                << core::archKindName(kind) << " on " << s.describe()
                << "\npredicted {"
                << verify::staticScheduleRelation(kind, u, s).str()
                << "}";
            EXPECT_TRUE(report.ok()) << [&] {
                std::ostringstream os;
                report.renderText(os);
                return os.str();
            }();

            // And the static side must satisfy its own checks under
            // the default port budget (peaks never exceed the array).
            verify::Report static_report;
            verify::checkSchedule(kind, u, s, verify::PortBudget{},
                                  static_report);
            EXPECT_TRUE(static_report.ok())
                << core::archKindName(kind) << " on " << s.describe();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ScheduleShadowFuzz,
                         ::testing::Range(0, 20));

/** The ablation configurations carry different schedules (executed
 *  zeros, raster weight feed) and must shadow-match too. */
TEST(ScheduleShadowAblations, VanillaNlrAndRasterZfostMatch)
{
    Rng rng(0x5CEDAB1AULL);
    for (int i = 0; i < 40; ++i) {
        const ConvSpec s = randomSpec(rng);
        verify::Report legal;
        verify::checkConvSpec(s, legal);
        ASSERT_TRUE(legal.ok()) << s.describe();

        {
            const Unroll u = randomUnroll(ArchKind::NLR, s, rng);
            sim::Nlr arch(u, sim::Nlr::ZeroPolicy::Execute);
            const ScheduleRelation got =
                verify::recordedScheduleRelation(arch, s);
            const ScheduleRelation want =
                verify::staticNlrSchedule(u, s, /*zero_skip=*/false);
            EXPECT_EQ(want, got)
                << "NLR-vanilla on " << s.describe() << "\npredicted {"
                << want.str() << "} recorded {" << got.str() << "}";
            EXPECT_TRUE(got.hazardFree()) << got.str();
        }
        {
            const Unroll u = randomUnroll(ArchKind::ZFOST, s, rng);
            core::Zfost arch(u, core::Zfost::WeightOrder::Raster);
            const ScheduleRelation got =
                verify::recordedScheduleRelation(arch, s);
            const ScheduleRelation want = verify::staticZfostSchedule(
                u, s, /*reordered_feed=*/false);
            EXPECT_EQ(want, got)
                << "ZFOST-raster on " << s.describe() << "\npredicted {"
                << want.str() << "} recorded {" << got.str() << "}";
            EXPECT_TRUE(got.hazardFree()) << got.str();
        }
    }
}

/** CNV and RST have no static model: the recorded relation must stay
 *  hazard-free and inside the occupancy envelope, and the checker must
 *  note the modeling gap with GA-SCHED-UNMODELED. */
TEST(ScheduleShadowBaselines, CnvAndRstStayInEnvelope)
{
    Rng rng(0x5CEDBA5EULL);
    for (int i = 0; i < 25; ++i) {
        const ConvSpec s = randomSpec(rng);
        verify::Report legal;
        verify::checkConvSpec(s, legal);
        ASSERT_TRUE(legal.ok()) << s.describe();

        for (verify::BaselineKind kind :
             {verify::BaselineKind::CNV, verify::BaselineKind::RST}) {
            const Unroll u =
                kind == verify::BaselineKind::CNV
                    ? Unroll{.pIf = rng.uniformInt(1, 4),
                             .pOf = rng.uniformInt(1, 4)}
                    : Unroll{.pOf = rng.uniformInt(1, 3),
                             .pKy = rng.uniformInt(1, s.kh + 1),
                             .pOy = rng.uniformInt(1, 4)};
            verify::Report report;
            EXPECT_TRUE(
                verify::checkBaselineSchedule(kind, u, s, report))
                << verify::baselineName(kind) << " on " << s.describe();
            EXPECT_TRUE(report.ok());
            EXPECT_TRUE(report.has(verify::codes::kSchedUnmodeled));
        }
    }
}

/** A recorder-armed run must force the cycle walk (the fast path has
 *  no schedule to record) and leave the fast path untouched after. */
TEST(ScheduleShadow, RecorderForcesWalkEngine)
{
    ConvSpec s;
    s.label = "engine";
    s.nif = 2;
    s.nof = 3;
    s.ih = s.iw = 6;
    s.kh = s.kw = 3;
    s.stride = 1;
    s.pad = 1;
    s.oh = s.ow = 6;

    sim::ScopedSimEngine eng(sim::SimEngine::Fast);
    ASSERT_TRUE(sim::fastPathEnabled());
    auto arch = core::makeArch(ArchKind::OST, Unroll{.pOf = 2,
                                                     .pOx = 2,
                                                     .pOy = 2});
    const RunStats fast = arch->run(s);
    RunStats walked;
    const ScheduleRelation rel = verify::recordedScheduleRelation(
        *arch, s, /*functional=*/false, &walked);
    // The recorder saw every cycle the fast path would have skipped...
    EXPECT_EQ(rel.cycles, fast.cycles);
    EXPECT_GT(rel.scheduledSlots, 0u);
    // ...the walk agreed with the fast path, and the recorder is
    // disarmed again afterwards.
    EXPECT_EQ(walked.str(), fast.str());
    EXPECT_EQ(arch->scheduleRecorder(), nullptr);
}

/** Regression: a head-layer T-CONV streams a 1x1 error map, so every
 *  resident-weight pass is a single cycle and the first cycle carries
 *  two coalesced tile loads (the pended first load plus the second
 *  pass's prefetch). The static model must predict that peak, and the
 *  default (double-buffered) weight budget must absorb it. */
TEST(ScheduleShadow, SingleCyclePassCoalescesWeightLoads)
{
    ConvSpec s;
    s.label = "head-tconv";
    s.nif = 1;
    s.nof = 128;
    s.ih = s.iw = 1;
    s.kh = s.kw = 7;
    s.stride = 1;
    s.pad = 6;
    s.oh = s.ow = 7;

    const Unroll u{.pOf = 48, .pKx = 5, .pKy = 5};
    auto arch = core::makeArch(ArchKind::WST, u);
    const ScheduleRelation rec =
        verify::recordedScheduleRelation(*arch, s);
    const ScheduleRelation stat =
        verify::staticScheduleRelation(ArchKind::WST, u, s);
    // 5x5 tile + 5x2 boundary tile, 48 channels each, on one cycle.
    EXPECT_EQ(rec.peakWeightLoads, (25u + 10u) * 48u);
    EXPECT_EQ(stat, rec);

    verify::Report report;
    verify::checkSchedule(ArchKind::WST, u, s, verify::PortBudget{},
                          report);
    std::ostringstream rendered;
    report.renderText(rendered);
    EXPECT_TRUE(report.ok()) << rendered.str();

    // ZFWST has the same resident-load pattern; a one-position output
    // (a head layer's 1x1 kernel gradient) gives it single-cycle
    // passes, and 49 effective weights against a 4-slot resident
    // capacity force the multi-chunk coalescing branch.
    ConvSpec g = s;
    g.label = "head-wconv";
    g.nof = 8;
    g.kh = g.kw = 7;
    g.oh = g.ow = 1;
    g.ih = g.iw = 7;
    g.pad = 0;
    const Unroll uw{.pOf = 4, .pKx = 2, .pKy = 2};
    auto zarch = core::makeArch(ArchKind::ZFWST, uw);
    EXPECT_EQ(verify::staticScheduleRelation(ArchKind::ZFWST, uw, g),
              verify::recordedScheduleRelation(*zarch, g));
}

/** Negative path: a one-word port budget must trip GA-SCHED-PORT on
 *  any schedule whose peak traffic exceeds it. */
TEST(ScheduleNegative, TinyPortBudgetTripsSchedPort)
{
    ConvSpec s;
    s.label = "tiny-port";
    s.nif = 2;
    s.nof = 4;
    s.ih = s.iw = 8;
    s.kh = s.kw = 3;
    s.stride = 1;
    s.pad = 1;
    s.oh = s.ow = 8;

    verify::PortBudget budget;
    budget.weight = 1; // the NLR adder tree loads pIf*pOf words/cycle
    verify::Report report;
    verify::checkSchedule(ArchKind::NLR,
                          Unroll{.pIf = 2, .pOf = 4}, s, budget,
                          report);
    EXPECT_FALSE(report.ok());
    ASSERT_TRUE(report.has(verify::codes::kSchedPort));
    EXPECT_EQ(report.find(verify::codes::kSchedPort)->severity,
              verify::Severity::Error);
}

/** Negative path: a deliberately misbehaving recorder feed — here a
 *  hand-driven replay double-booking a lane, reading an unwritten
 *  accumulator cell, writing out of bounds and skipping a drain — must
 *  light up every hazard counter through the public relation. */
class HazardReplay
{
  public:
    /** Drive `rec` through one bad cycle. */
    static void
    drive(sim::ScheduleRecorder &rec, const ConvSpec &s)
    {
        rec.onJobBegin(4, s);
        rec.onWindowBegin(8, sim::WindowKind::AccumBuffer);
        rec.onCycle();
        rec.onLanes(0, 2);
        rec.onLanes(1, 1);  // lane 1 double-booked
        rec.onLanes(4, 1);  // beyond the 4-lane array
        rec.onCellRead(2, 1);  // never written: RAW
        rec.onCellWrite(0, 2);
        rec.onCellWrite(1, 2); // overlaps cell 1: WAW
        rec.onCellWrite(6, 4); // cells 8,9 out of the 8-cell window
        rec.onCycle();
        rec.onDrain(0, 2); // cells 1..7 written but never drained
        rec.onWindowEnd();
        rec.onJobEnd();
    }
};

TEST(ScheduleNegative, ShadowRecorderCountsEveryHazardClass)
{
    ConvSpec s;
    s.label = "hazards";
    s.nif = s.nof = 1;
    s.ih = s.iw = 4;
    s.kh = s.kw = 1;
    s.stride = 1;
    s.pad = 0;
    s.oh = s.ow = 4;

    // Reach the concrete recorder through an armed architecture run is
    // impossible here (the walks are well-formed by construction), so
    // replay the bad schedule against the recorder the verifier uses:
    // recordedScheduleRelation on a trivial job, then the hand replay
    // through the same hook interface via a capturing architecture.
    class CapturingArch final : public sim::Nlr
    {
      public:
        using sim::Nlr::Nlr;

      protected:
        RunStats
        doRun(const ConvSpec &spec, const tensor::Tensor *,
              const tensor::Tensor *, tensor::Tensor *) const override
        {
            // Replace the walk with the misbehaving schedule.
            HazardReplay::drive(*scheduleRecorder(), spec);
            return RunStats{};
        }
    };

    CapturingArch arch(Unroll{.pIf = 1, .pOf = 1});
    const ScheduleRelation rel =
        verify::recordedScheduleRelation(arch, s);
    EXPECT_EQ(rel.slotConflicts, 2u); // double-booked + out-of-array
    EXPECT_EQ(rel.wawHazards, 1u);
    EXPECT_EQ(rel.rawHazards, 1u);
    EXPECT_EQ(rel.oobAccesses, 2u);
    EXPECT_EQ(rel.undrainedWrites, 3u); // written {0,1,2,6,7}, drained
                                        // {0,1}: cells 2, 6, 7 leak
    EXPECT_FALSE(rel.hazardFree());
    EXPECT_EQ(rel.cycles, 2u);
    EXPECT_EQ(rel.windows, 1u);
}

/** The sweep prefilter accepts every paper-shaped point and reports
 *  through the same GA-SCHED-* codes. */
TEST(SchedulePrefilter, PaperPointsAreClean)
{
    const gan::GanModel model = gan::makeDcgan();
    const verify::SchedulePrefilter pre(model);
    for (int w = 1; w <= 4; ++w) {
        verify::Report report;
        pre.check(w * 16, mem::deriveStPof(w) * 16, report);
        EXPECT_TRUE(report.ok()) << [&] {
            std::ostringstream os;
            report.renderText(os);
            return os.str();
        }();
    }
}

} // namespace
