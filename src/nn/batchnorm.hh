/**
 * @file
 * Batch normalization.
 *
 * DCGAN's published recipe places BN after most convolutions. The
 * paper's deferred-synchronization argument (Section IV-A) relies on
 * per-sample independence of the backward pass — which *batch-mode*
 * BN breaks, because every sample's activations flow through shared
 * batch statistics. This module implements both modes so the
 * repository can quantify that interaction:
 *
 *  - Batch mode: normalize by mini-batch statistics, full backward
 *    through the statistics (the textbook training behaviour).
 *  - Frozen mode: normalize by running statistics; the backward pass
 *    is a per-sample affine map, restoring the independence deferred
 *    synchronization needs (how a hardware implementation would run).
 */

#ifndef GANACC_NN_BATCHNORM_HH
#define GANACC_NN_BATCHNORM_HH

#include <cstdint>

#include "nn/optimizer.hh"
#include "tensor/tensor.hh"

namespace ganacc {
namespace nn {

/** Per-channel batch normalization over (N, C, H, W) tensors. */
class BatchNormLayer
{
  public:
    /** Normalization statistics source. */
    enum class Mode
    {
        Batch,  ///< mini-batch statistics (couples samples)
        Frozen, ///< running statistics (per-sample independent)
    };

    explicit BatchNormLayer(int channels, float eps = 1e-5f,
                            float momentum = 0.1f);

    /** Normalize; caches what backward() needs. In Batch mode also
     *  updates the running statistics. */
    tensor::Tensor forward(const tensor::Tensor &in, Mode mode);

    /** Backward pass matching the last forward's mode; accumulates
     *  dgamma/dbeta and returns dinput. */
    tensor::Tensor backward(const tensor::Tensor &dout);

    void zeroGrad();
    void applyUpdate(Optimizer &opt);

    /** Restore previously captured gradient accumulators. */
    void restoreGrads(const tensor::Tensor &dgamma,
                      const tensor::Tensor &dbeta);

    int channels() const { return channels_; }
    const tensor::Tensor &gamma() const { return gamma_; }
    const tensor::Tensor &beta() const { return beta_; }
    tensor::Tensor &gamma() { return gamma_; }
    tensor::Tensor &beta() { return beta_; }
    const tensor::Tensor &gradGamma() const { return gradGamma_; }
    const tensor::Tensor &gradBeta() const { return gradBeta_; }
    const tensor::Tensor &runningMean() const { return runningMean_; }
    const tensor::Tensor &runningVar() const { return runningVar_; }

  private:
    int channels_;
    float eps_;
    float momentum_;

    tensor::Tensor gamma_;       ///< (1, C, 1, 1)
    tensor::Tensor beta_;        ///< (1, C, 1, 1)
    tensor::Tensor gradGamma_;
    tensor::Tensor gradBeta_;
    tensor::Tensor runningMean_;
    tensor::Tensor runningVar_;

    // Backward cache.
    Mode lastMode_ = Mode::Batch;
    bool haveCache_ = false;
    tensor::Tensor cachedXhat_;
    tensor::Tensor cachedInvStd_; ///< (1, C, 1, 1)
};

} // namespace nn
} // namespace ganacc

#endif // GANACC_NN_BATCHNORM_HH
