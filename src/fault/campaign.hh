/**
 * @file
 * Fault-injection campaigns over the Table V architecture matrix.
 *
 * A resilience campaign drives one FaultPlan through every
 * (phase-family row, architecture) cell of the paper's evaluation —
 * {D, G} on the ST bank, {Dw, Gw} on the W bank — with identical
 * operands, identical armed fault sites and identical seeds in every
 * cell, so the only varying factor is the dataflow. Three observables
 * per cell:
 *
 *  - masking rate: armed transient MAC upsets the dataflow never
 *    scheduled (the zero-free designs skip structural zeros through
 *    address generation, so upsets landing there die unobserved);
 *  - output RMSE vs the fault-free reference under the plan's MAC
 *    faults (stuck lanes + fired transients);
 *  - storage-fault RMSE: bit flips drawn per buffer access from the
 *    cell's own RunStats traffic — dataflows that re-fetch operands
 *    (NLR's no-local-reuse streaming) absorb proportionally more.
 *
 * The NLR column is the *vanilla* (DianNao-style, zero-executing)
 * dataflow: that is the physical machine the masking comparison needs,
 * since the paper's "improved" NLR already skips the same structural
 * zeros as ZFOST and is reported separately as an ablation column.
 *
 * A trainer campaign runs seeded twin gan::Trainer instances — one
 * clean, one with per-iteration weight-storage flips — and reports the
 * loss-trajectory divergence (end-to-end training degradation).
 */

#ifndef GANACC_FAULT_CAMPAIGN_HH
#define GANACC_FAULT_CAMPAIGN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_plan.hh"
#include "fault/injector.hh"
#include "gan/models.hh"

namespace ganacc {
namespace fault {

/** Knobs of a resilience campaign. */
struct CampaignOptions
{
    std::uint64_t dataSeed = 0x5eedULL; ///< operand generation
    int stBudget = 1200; ///< ST-bank PEs (Table V)
    int wBudget = 480;   ///< W-bank PEs (Table V)
    int jobs = 0;        ///< worker threads (0 = resolveJobs default)
    /** Also run the paper's improved (zero-skipping) NLR as an extra
     *  ablation column next to the physical vanilla-NLR baseline. */
    bool nlrSkipAblation = true;
};

/** One (row, architecture) cell's measurements. */
struct CellResult
{
    std::string arch; ///< column name (NLR, NLR-skip, WST, ...)
    std::string row;  ///< "D/ST", "G/ST", "Dw/W", "Gw/W"
    FaultInjector::Counters mac;
    double outputRmse = 0.0; ///< MAC faults vs fault-free reference
    std::uint64_t memFlips = 0;
    double memRmse = 0.0; ///< storage flips alone vs reference
};

/** Per-architecture aggregate over all rows. */
struct ArchSummary
{
    std::string arch;
    std::uint64_t armed = 0;
    std::uint64_t fired = 0;
    double maskingRate = 0.0;
    double outputRmse = 0.0; ///< RMS over all cells' outputs
    std::uint64_t memFlips = 0;
    double memRmse = 0.0;
};

/** Everything a resilience campaign produced. */
struct CampaignResult
{
    std::vector<CellResult> cells; ///< row-major: rows x architectures
    std::vector<ArchSummary> archs;
};

/**
 * Run the (row x architecture) resilience matrix. Deterministic for a
 * fixed (plan, options) under any worker count: all randomness is
 * keyed on (seed, row, job, site) and results are written by index.
 */
CampaignResult runResilienceCampaign(const gan::GanModel &model,
                                     const FaultPlan &plan,
                                     const CampaignOptions &opt);

/** Outcome of the twin-trainer degradation run. */
struct TrainerDegradation
{
    int iterations = 0;
    std::uint64_t weightFlips = 0; ///< total flips injected
    double cleanFinalDiscLoss = 0.0;
    double faultyFinalDiscLoss = 0.0;
    double meanAbsDiscLossDelta = 0.0; ///< mean |clean - faulty|
    double meanAbsGenLossDelta = 0.0;
    double weightRmse = 0.0; ///< parameter divergence at the end
};

/**
 * Train seeded twin models for `iterations` mini-batches of size
 * `batch`; the faulty twin's weights absorb plan.memory flips (drawn
 * binomially over the parameter words once per iteration) before every
 * iteration. Identical seeds mean any divergence is the faults'.
 */
TrainerDegradation runTrainerDegradation(const gan::GanModel &model,
                                         const FaultPlan &plan,
                                         int iterations, int batch,
                                         std::uint64_t seed);

} // namespace fault
} // namespace ganacc

#endif // GANACC_FAULT_CAMPAIGN_HH
