/**
 * @file
 * Run-probe implementation.
 */

#include "obs/probe.hh"

#include <atomic>
#include <string>

#include "obs/metrics.hh"

namespace ganacc {
namespace obs {

namespace {

std::atomic<Probe *> g_probe{nullptr};

/** "D-fwd conv1" -> "D-fwd": the phase bucket of a job label. */
std::string
phasePrefix(std::string_view label)
{
    if (label.empty())
        return "none";
    const auto space = label.find(' ');
    return std::string(label.substr(0, space));
}

} // namespace

Probe *
runProbe()
{
    return g_probe.load(std::memory_order_relaxed);
}

void
setRunProbe(Probe *probe)
{
    g_probe.store(probe, std::memory_order_relaxed);
}

void
MetricsProbe::onRun(const RunSample &s)
{
    Registry &reg = Registry::instance();
    const std::string arch = "{arch=\"" + std::string(s.arch) + "\"}";
    reg.counter("ganacc_sim_runs_total" + arch,
                "finished simulation runs per architecture")
        .add(1);
    if (s.engine == "fast")
        reg.counter("ganacc_sim_fast_runs_total" + arch,
                    "runs timed by the closed-form fast path")
            .add(1);
    reg.counter("ganacc_sim_cycles_total" + arch,
                "simulated cycles per architecture")
        .add(s.cycles);
    reg.counter("ganacc_sim_effective_macs_total" + arch,
                "PE slots doing useful multiplies")
        .add(s.effectiveMacs);
    reg.counter("ganacc_sim_ineffectual_macs_total" + arch,
                "PE slots multiplying a structural zero")
        .add(s.ineffectualMacs);
    reg.counter("ganacc_sim_idle_pe_slots_total" + arch,
                "PE slots with nothing scheduled")
        .add(s.idlePeSlots);
    reg.counter("ganacc_sim_buffer_accesses_total" + arch,
                "on-chip buffer accesses (all four categories)")
        .add(s.weightLoads + s.inputLoads + s.outputReads +
             s.outputWrites);
    reg.counter("ganacc_sim_phase_cycles_total{phase=\"" +
                    phasePrefix(s.label) + "\"}",
                "simulated cycles per phase-label prefix")
        .add(s.cycles);
}

} // namespace obs
} // namespace ganacc
