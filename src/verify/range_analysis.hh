/**
 * @file
 * Fixed-point range analysis over the layer graph.
 *
 * The accelerator datapath accumulates wide but writes back saturating
 * Fixed16 (Q7.8 by default), so a layer whose accumulator outgrows the
 * representable range silently clips — functionally plausible, numerically
 * wrong. This pass propagates value-magnitude estimates through all
 * six GAN phases (forward activations, back-propagated errors and
 * weight gradients for both networks) and flags the first layer of
 * each chain whose writeback can saturate, together with the Q-format
 * that would contain it.
 *
 * Two weight models:
 *
 *  - Kaiming (default): weights follow the initializer's distribution
 *    (sigma = sqrt(2 / fan_in)); magnitudes propagate as RMS values
 *    under independence assumptions and "peak" is sigmaK standard
 *    deviations. This is the calibrated estimate the bundled networks
 *    are checked against.
 *  - FixedBound: every weight magnitude is bounded by weightBound;
 *    peaks propagate as worst-case intervals. Sound but loose — a
 *    guarantee, not an estimate — reported via GA-RANGE-WC.
 */

#ifndef GANACC_VERIFY_RANGE_ANALYSIS_HH
#define GANACC_VERIFY_RANGE_ANALYSIS_HH

#include <string>
#include <vector>

#include "gan/models.hh"
#include "verify/diagnostics.hh"

namespace ganacc {
namespace verify {

/** Knobs of the range analysis. */
struct RangeOptions
{
    /** How weight magnitudes are modelled. */
    enum class WeightModel
    {
        Kaiming,    ///< initializer statistics, RMS propagation
        FixedBound, ///< |w| <= weightBound, worst-case intervals
    };

    WeightModel weights = WeightModel::Kaiming;
    double weightBound = 0.25; ///< |w| bound in FixedBound mode
    double inputAmp = 1.0;     ///< RMS (or bound) of image / latent input
    double errorAmp = 1.0;     ///< RMS (or bound) of the head loss gradient
    double sigmaK = 6.0;       ///< peak = sigmaK * RMS in Kaiming mode
    int fracBits = 8;          ///< writeback format Q(15-fracBits).fracBits
};

/** Magnitude estimate for one accumulator writeback site. */
struct RangeEstimate
{
    std::string where; ///< e.g. "DCGAN disc L2 fwd"
    double rms = 0.0;  ///< RMS estimate (equals peak in interval mode)
    double peak = 0.0; ///< magnitude the writeback must represent
};

/** Everything the analysis derived. */
struct RangeAnalysis
{
    std::vector<RangeEstimate> activations; ///< fwd pre-activation sums
    std::vector<RangeEstimate> errors;      ///< bwd error accumulators
    std::vector<RangeEstimate> gradients;   ///< weight-gradient sums
    double maxRepresentable = 0.0; ///< of the configured Q format
    double worstPeak = 0.0;        ///< max over every estimate
};

/**
 * Integer bits m of the tightest Q(m).(15-m) format representing
 * `peak`, or -1 when even Q15.0 overflows (16 bits cannot hold it).
 */
int requiredIntBits(double peak);

/**
 * Run the analysis over a (shape-legal) model, appending GA-RANGE-SAT
 * for the first saturating layer of each forward/backward chain,
 * GA-RANGE-GRAD for the first saturating weight gradient per network,
 * and (FixedBound mode) a GA-RANGE-WC note with the proven bound.
 */
RangeAnalysis analyzeRanges(const gan::GanModel &model,
                            const RangeOptions &opts, Report &report);

} // namespace verify
} // namespace ganacc

#endif // GANACC_VERIFY_RANGE_ANALYSIS_HH
