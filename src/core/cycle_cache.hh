/**
 * @file
 * Memoized per-job cycle/stats cache for the sweep engine.
 *
 * A timing-only Architecture::run() is a pure function of the
 * (architecture kind, unrolling, conv shape) triple, and the DSE
 * sweeps evaluate the same layer shapes hundreds of times: every
 * (W_Pof, ST_Pof) point re-times the same networks, and the four
 * phase families share layers. This cache keys RunStats on the full
 * triple (the job label is deliberately excluded — it names, it does
 * not shape) so each distinct layer geometry is simulated exactly
 * once per unrolling, no matter how many design points or threads ask
 * for it. All methods are thread-safe; concurrent misses on the same
 * key may both simulate, but they compute identical values so the
 * second insert is a harmless no-op.
 *
 * The in-memory memo dies with the process, which used to make every
 * figure regeneration start cold. An optional *disk tier* (the
 * serving subsystem's content-addressed serve::ResultStore implements
 * the StatsDiskTier interface) survives across processes: memory
 * misses consult the tier before simulating, and simulated results
 * are written through, so a repeated sweep becomes a stream of disk
 * hits instead of a re-simulation.
 */

#ifndef GANACC_CORE_CYCLE_CACHE_HH
#define GANACC_CORE_CYCLE_CACHE_HH

#include <atomic>
#include <cstdint>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "core/unrolling.hh"
#include "sim/conv_spec.hh"
#include "sim/stats.hh"

namespace ganacc {
namespace core {

/** Where a cached lookup was satisfied. */
enum class CacheOutcome
{
    MemoryHit, ///< found in the in-process memo
    DiskHit,   ///< found in the attached persistent tier
    Simulated, ///< missed everywhere; the cycle walk ran
};

std::string cacheOutcomeName(CacheOutcome o);

/** Point-in-time accounting snapshot of the CycleCache. */
struct CacheStats
{
    std::size_t entries = 0;    ///< keys resident in the memo
    std::uint64_t hits = 0;     ///< lookups served from memory
    std::uint64_t misses = 0;   ///< lookups that left the memo
    std::uint64_t diskHits = 0; ///< misses the disk tier absorbed
                                ///  (subset of misses)

    /** Misses that actually ran a cycle walk. */
    std::uint64_t
    simulated() const
    {
        return misses - diskHits;
    }
};

/**
 * Interface of a persistent second cache tier keyed on the same
 * (kind, unrolling, spec) triple as the in-memory memo. Implementors
 * must be safe for concurrent calls from sweep worker threads.
 */
class StatsDiskTier
{
  public:
    virtual ~StatsDiskTier() = default;

    /** The stored stats for the triple, or nullopt on a miss (absent,
     *  stale simulator version, or corrupt entry). */
    virtual std::optional<sim::RunStats>
    load(ArchKind kind, const sim::Unroll &u,
         const sim::ConvSpec &spec) = 0;

    /** Persist the stats for the triple (write-through on simulate). */
    virtual void store(ArchKind kind, const sim::Unroll &u,
                       const sim::ConvSpec &spec,
                       const sim::RunStats &stats) = 0;
};

/**
 * Memo of timing-only runs. Historically a process singleton
 * (instance()); fleet shards hosted in one process (serve::Engine
 * with ownCache, the conformance harness, unit tests) construct
 * private instances instead so each shard has its own memory tier
 * and disk-tier attachment.
 */
class CycleCache
{
  public:
    static CycleCache &instance();

    /**
     * A private cache. When `publishMetrics` is set, the instance
     * registers a telemetry collector publishing the same
     * ganacc_cache_* series as the singleton (the registry snapshot
     * accumulates repeated names, so multi-shard totals come out as
     * sums) and unregisters it on destruction.
     */
    explicit CycleCache(bool publishMetrics = false);
    ~CycleCache();

    CycleCache(const CycleCache &) = delete;
    CycleCache &operator=(const CycleCache &) = delete;

    /**
     * The RunStats of a timing-only run of `spec` on `kind` with
     * unrolling `u`, simulating on a miss. When `outcome` is non-null
     * it reports which tier satisfied the lookup.
     */
    sim::RunStats stats(ArchKind kind, const sim::Unroll &u,
                        const sim::ConvSpec &spec,
                        CacheOutcome *outcome = nullptr);

    /**
     * Insert an externally computed result for the triple: memory
     * entry plus write-through to the attached disk tier. This is the
     * replication path — a fleet peer simulated the triple and pushed
     * the finished stats here, so the local shard can serve future
     * lookups without its own cycle walk. Touches no hit/miss
     * counters (nothing was looked up). Idempotent: re-inserting a
     * resident key overwrites with identical bytes.
     */
    void insert(ArchKind kind, const sim::Unroll &u,
                const sim::ConvSpec &spec, const sim::RunStats &stats);

    /**
     * Attach (or with nullptr detach) the persistent tier. Non-owning;
     * the tier must outlive every subsequent stats() call. Not
     * thread-safe against concurrent stats() — attach before a sweep
     * starts, detach after it drains.
     */
    void attachDiskTier(StatsDiskTier *tier);

    StatsDiskTier *diskTier() const { return disk_; }

    /** Drop every memory entry (for cold-cache timing comparisons);
     *  the attached disk tier, being persistent, is untouched. */
    void clear();

    std::size_t size() const;
    std::uint64_t hits() const { return hits_.load(); }
    std::uint64_t misses() const { return misses_.load(); }
    /** Memory misses satisfied by the disk tier (subset of misses). */
    std::uint64_t diskHits() const { return diskHits_.load(); }

    /** One consistent accounting snapshot (the struct the unit tests
     *  and the telemetry collector read; summary() formats it). */
    CacheStats cacheStats() const;

    /** One-line "cycle cache: N entries, H hits, ..." summary for
     *  sweep and bench reports. */
    std::string summary() const;

  private:
    mutable std::shared_mutex m_;
    std::unordered_map<std::string, sim::RunStats> map_;
    StatsDiskTier *disk_ = nullptr;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> diskHits_{0};
    int collector_ = -1; ///< registry token of a publishing instance
};

/** Convenience: CycleCache::instance().stats(...). */
sim::RunStats cachedRun(ArchKind kind, const sim::Unroll &u,
                        const sim::ConvSpec &spec);

} // namespace core
} // namespace ganacc

#endif // GANACC_CORE_CYCLE_CACHE_HH
