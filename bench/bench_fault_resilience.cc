/**
 * @file
 * Fault-resilience reproduction: transient MAC-path upsets swept over
 * the Table V (phase-family x architecture) matrix. Every cell arms
 * the identical seeded site set on the dense MAC lattice; a site only
 * corrupts an output when the dataflow physically schedules its
 * multiply, so the zero-free designs mask the upsets that land on the
 * structural zeros their address generators skip. Prints the
 * per-architecture masking table of EXPERIMENTS.md ("Fault
 * resilience"), plus the storage-flip comparison when --flip-prob is
 * set and a twin-trainer degradation run when --trainer-iters is set.
 */

#include <iomanip>
#include <iostream>
#include <sstream>

#include "bench/bench_common.hh"
#include "fault/campaign.hh"
#include "fault/fault_plan.hh"
#include "gan/models.hh"
#include "util/args.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace {

using namespace ganacc;

std::string
rate(double v)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(4) << v;
    return os.str();
}

std::string
err(double v)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(6) << v;
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
try {
    util::ArgParser args(argc, argv);
    const std::string model_name = args.getString(
        "model", "dcgan", "network whose jobs are fault-injected");
    const int seed = args.getInt("seed", 1, "campaign seed");
    const int sites = args.getInt(
        "sites", 256, "transient sites armed per job (dense lattice)");
    const double flip_prob = args.getDouble(
        "flip-prob", 0.0, "storage bit-flip probability per word access");
    const int trainer_iters = args.getInt(
        "trainer-iters", 0,
        "twin-trainer degradation iterations (0 disables)");
    const int jobs = args.getJobs();
    if (args.helpRequested()) {
        args.usage(std::cout);
        return 0;
    }
    args.finish();

    gan::GanModel model;
    if (model_name == "dcgan")
        model = gan::makeDcgan();
    else if (model_name == "mnist-gan")
        model = gan::makeMnistGan();
    else if (model_name == "cgan")
        model = gan::makeCgan();
    else
        util::fatal("unknown model '", model_name,
                    "' (dcgan, mnist-gan, cgan)");

    bench::banner(
        "Fault resilience — transient masking by dataflow",
        "zero-free address generation masks the upsets that land on "
        "skipped structural zeros; NLR/OST sample every armed site");

    fault::FaultPlan plan;
    plan.seed = std::uint64_t(seed);
    plan.transient.sitesPerJob = sites;
    plan.memory.flipProbPerAccess = flip_prob;

    fault::CampaignOptions opt;
    opt.dataSeed = plan.seed;
    opt.jobs = jobs;

    std::cout << "model " << model.name << ", " << sites
              << " sites/job, seed " << seed << "\n\n";
    const fault::CampaignResult result =
        fault::runResilienceCampaign(model, plan, opt);

    util::Table cells({"row", "arch", "armed", "fired", "masked",
                       "mask-rate", "output-rmse"});
    for (const auto &cell : result.cells)
        cells.addRow(cell.row, cell.arch, cell.mac.armed, cell.mac.fired,
                     cell.mac.masked(), rate(cell.mac.maskingRate()),
                     err(cell.outputRmse));
    cells.print(std::cout);

    std::cout << "\nper-architecture aggregate (all four Table V rows, "
                 "identical armed sites):\n";
    util::Table summary({"arch", "armed", "masked", "mask-rate",
                         "output-rmse"});
    for (const auto &s : result.archs)
        summary.addRow(s.arch, s.armed, s.armed - s.fired,
                       rate(s.maskingRate), err(s.outputRmse));
    summary.print(std::cout);

    if (flip_prob > 0.0) {
        std::cout << "\nstorage flips at p=" << flip_prob
                  << " per word access (traffic-proportional):\n";
        util::Table mem({"arch", "flips", "mem-rmse"});
        for (const auto &s : result.archs)
            mem.addRow(s.arch, s.memFlips, err(s.memRmse));
        mem.print(std::cout);
    }

    if (trainer_iters > 0) {
        const fault::TrainerDegradation deg =
            fault::runTrainerDegradation(model, plan, trainer_iters, 2,
                                         plan.seed);
        std::cout << "\ntrainer degradation over " << deg.iterations
                  << " iterations: " << deg.weightFlips
                  << " weight flips, mean |dD|="
                  << deg.meanAbsDiscLossDelta << ", mean |dG|="
                  << deg.meanAbsGenLossDelta
                  << ", parameter rmse=" << deg.weightRmse << "\n";
    }
    return 0;
} catch (const ganacc::util::FatalError &e) {
    std::cerr << "bench_fault_resilience: " << e.what() << "\n";
    return 2;
}
