/**
 * @file
 * CPU/GPU roofline implementations.
 */

#include "baseline/cpu_gpu_model.hh"

#include "util/logging.hh"

namespace ganacc {
namespace baseline {

using gan::GanModel;
using sim::Phase;
using sim::PhaseFamily;

double
DeviceModel::efficiencyFor(PhaseFamily f) const
{
    switch (f) {
      case PhaseFamily::D:
        return convEfficiency;
      case PhaseFamily::G:
      case PhaseFamily::Gw:
      case PhaseFamily::Dw:
        // Zero-inserted / dilated phases: Caffe's im2col-based path
        // materializes the stuffed maps and multiplies the zeros, at
        // a lower sustained fraction of peak (strided gathers, poor
        // locality).
        return tconvEfficiency;
    }
    util::panic("unknown phase family");
}

DeviceModel
intelI7_6850K()
{
    // 6 cores x 3.6 GHz x 32 SP FLOP/cycle (2 AVX2 FMA ports) ~= 691
    // GFLOP/s peak. Efficiency fractions and sustained package power
    // are the calibrated free parameters (EXPERIMENTS.md).
    return {"CPU i7-6850K", 691.0, 0.31, 0.187, 120.0};
}

DeviceModel
nvidiaK20()
{
    // GK110: 3.52 TFLOP/s SP peak; sustained power under the Caffe
    // workload sits below the 225 W board TDP.
    return {"GPU K20", 3520.0, 0.45, 0.32, 165.0};
}

DeviceModel
nvidiaTitanX()
{
    // GM200: 6.6 TFLOP/s SP peak, 250 W TDP.
    return {"GPU Titan X", 6600.0, 0.40, 0.30, 210.0};
}

double
fpgaBoardPowerWatts()
{
    // VCU118 board-level estimate under load (the paper measured wall
    // power with a WattsUp meter; a mid-sized UltraScale+ design with
    // two DDR4 channels draws on the order of 20-25 W).
    return 22.0;
}

std::vector<DeviceModel>
allDevices()
{
    return {intelI7_6850K(), nvidiaK20(), nvidiaTitanX()};
}

namespace {

/** Phase-pass multiplicities of one full training iteration
 *  (Fig. 2: one discriminator update plus one generator update). */
const std::vector<std::pair<Phase, int>> &
iterationPhases()
{
    static const std::vector<std::pair<Phase, int>> phases = {
        {Phase::GenForward, 2},  {Phase::DiscForward, 3},
        {Phase::DiscBackward, 3}, {Phase::GenBackward, 1},
        {Phase::DiscWeight, 2},  {Phase::GenWeight, 1},
    };
    return phases;
}

} // namespace

double
iterationSeconds(const DeviceModel &dev, const GanModel &model)
{
    GANACC_ASSERT(dev.peakGops > 0, "device without peak rate");
    double seconds = 0.0;
    for (auto [phase, count] : iterationPhases()) {
        auto jobs = sim::phaseJobs(model, phase);
        double dense_ops = 2.0 * double(sim::totalDenseMacs(jobs));
        double eff = dev.efficiencyFor(sim::familyOf(phase));
        seconds += count * dense_ops / (dev.peakGops * 1e9 * eff);
    }
    return seconds;
}

double
iterationUsefulOps(const GanModel &model)
{
    double ops = 0.0;
    for (auto [phase, count] : iterationPhases())
        ops += count * 2.0 *
               double(sim::totalEffectiveMacs(sim::phaseJobs(model,
                                                             phase)));
    return ops;
}

double
iterationGops(const DeviceModel &dev, const GanModel &model)
{
    return iterationUsefulOps(model) / iterationSeconds(dev, model) /
           1e9;
}

double
iterationJoules(const DeviceModel &dev, const GanModel &model)
{
    return dev.powerWatts * iterationSeconds(dev, model);
}

double
gopsPerWatt(const DeviceModel &dev, const GanModel &model)
{
    return iterationGops(dev, model) / dev.powerWatts;
}

} // namespace baseline
} // namespace ganacc
