/**
 * @file
 * Legality checks implementation.
 */

#include "verify/legality.hh"

#include <algorithm>
#include <sstream>
#include <string>

#include "sim/phase.hh"
#include "util/logging.hh"
#include "verify/static_bounds.hh"

namespace ganacc {
namespace verify {

using gan::GanModel;
using gan::LayerSpec;
using sim::ConvSpec;
using sim::Unroll;

namespace {

std::string
layerWhere(const GanModel &model, const char *which, std::size_t i)
{
    std::ostringstream os;
    os << model.name << " " << which << " L" << i;
    return os.str();
}

/** Streamed-extent consistency of one zero-stuffed axis: the streamed
 *  size must cover the dense extent exactly, up to `zero_stride - 1`
 *  trailing output-padding zeros. */
bool
axisGeomOk(int streamed, int orig, int zero_stride)
{
    if (orig < 0)
        return true; // whole-grid pattern, no trailing crop
    int natural = (orig - 1) * zero_stride + 1;
    int extra = streamed - natural;
    return extra >= 0 && extra < zero_stride;
}

} // namespace

void
checkConvSpec(const ConvSpec &spec, Report &report)
{
    const std::string &where = spec.label;

    if (spec.nif < 1 || spec.nof < 1 || spec.ih < 1 || spec.iw < 1 ||
        spec.kh < 1 || spec.kw < 1 || spec.oh < 1 || spec.ow < 1 ||
        spec.stride < 1 || spec.pad < 0 || spec.inZeroStride < 1 ||
        spec.kZeroStride < 1) {
        report.error(codes::kSpecField, where,
                     "malformed spec fields: " + spec.describe());
        return; // everything below assumes sane fields
    }

    // The last output's receptive field must still overlap the input
    // (the simulator's validate() panics otherwise).
    if ((spec.oh - 1) * spec.stride - spec.pad >= spec.ih ||
        (spec.ow - 1) * spec.stride - spec.pad >= spec.iw)
        report.error(codes::kSpecExtent, where,
                     "output extent exceeds the input's support: " +
                         spec.describe());

    // Zero-inserted inputs only occur under stride-1 streaming in the
    // GAN phase mapping; ZFOST/ZFWST panic on the combination.
    if (spec.inZeroStride > 1 && spec.stride != 1)
        report.error(codes::kSpecZeroInsertStride, where,
                     "zero-inserted input streamed with stride " +
                         std::to_string(spec.stride) +
                         " is not a GAN pattern (T-CONV streams are "
                         "stride-1 over the stuffed map)");

    if (spec.inZeroStride > 1 &&
        (!axisGeomOk(spec.ih, spec.inOrigH, spec.inZeroStride) ||
         !axisGeomOk(spec.iw, spec.inOrigW, spec.inZeroStride)))
        report.error(codes::kSpecZeroInsertGeom, where,
                     "streamed input size disagrees with dense extent "
                     "and zero stride: " + spec.describe());

    if (spec.kZeroStride > 1 &&
        (!axisGeomOk(spec.kh, spec.kOrigH, spec.kZeroStride) ||
         !axisGeomOk(spec.kw, spec.kOrigW, spec.kZeroStride)))
        report.error(codes::kSpecKernelZeroGeom, where,
                     "dilated kernel size disagrees with dense extent "
                     "and zero stride: " + spec.describe());
}

namespace {

/** Per-layer shape arithmetic; true when the layer is sound. */
bool
checkLayerShape(const LayerSpec &l, const std::string &where,
                Report &report)
{
    if (l.inChannels < 1 || l.outChannels < 1 || l.inH < 1 ||
        l.inW < 1 || l.geom.kernel < 1 || l.geom.stride < 1 ||
        l.geom.pad < 0 || l.geom.outPad < 0) {
        // describe() derives the output shape, which panics on these
        // very fields — report the raw values instead.
        std::ostringstream os;
        os << "malformed layer fields: " << l.inChannels << "x" << l.inH
           << "x" << l.inW << " -> " << l.outChannels << " ch, k"
           << l.geom.kernel << " s" << l.geom.stride << " p"
           << l.geom.pad << " op" << l.geom.outPad;
        report.error(codes::kNetShape, where, os.str());
        return false;
    }
    if (l.kind == nn::ConvKind::Transposed) {
        // tconvJob needs outPad < stride and pad <= kernel-1.
        if (l.geom.outPad >= l.geom.stride) {
            report.error(codes::kNetShape, where,
                         "T-CONV output padding " +
                             std::to_string(l.geom.outPad) +
                             " must be smaller than stride " +
                             std::to_string(l.geom.stride));
            return false;
        }
        if (l.geom.pad > l.geom.kernel - 1) {
            report.error(codes::kNetShape, where,
                         "T-CONV padding " + std::to_string(l.geom.pad) +
                             " exceeds kernel-1 (the zero-insert "
                             "streaming pad would be negative)");
            return false;
        }
    }
    if (l.outH() < 1 || l.outW() < 1) {
        report.error(codes::kNetShape, where,
                     "layer produces an empty output map: " +
                         l.describe());
        return false;
    }
    return true;
}

/** Shape-check one network and its layer-to-layer chaining. */
bool
checkStack(const GanModel &model, const std::vector<LayerSpec> &layers,
           const char *which, Report &report)
{
    bool ok = true;
    for (std::size_t i = 0; i < layers.size(); ++i)
        ok = checkLayerShape(layers[i], layerWhere(model, which, i),
                             report) &&
             ok;
    if (!ok)
        return false;
    for (std::size_t i = 1; i < layers.size(); ++i) {
        const LayerSpec &prev = layers[i - 1];
        const LayerSpec &cur = layers[i];
        if (cur.inChannels != prev.outChannels ||
            cur.inH != prev.outH() || cur.inW != prev.outW()) {
            std::ostringstream os;
            os << "expects " << cur.inChannels << "x" << cur.inH << "x"
               << cur.inW << " but the previous layer produces "
               << prev.outChannels << "x" << prev.outH() << "x"
               << prev.outW();
            report.error(codes::kNetChain,
                         layerWhere(model, which, i), os.str());
            ok = false;
        }
    }
    return ok;
}

} // namespace

void
checkModel(const GanModel &model, Report &report)
{
    if (model.disc.empty() || model.gen.empty()) {
        report.error(codes::kNetEmpty, model.name,
                     "model needs both a discriminator and a "
                     "generator stack");
        return;
    }

    bool ok = checkStack(model, model.disc, "disc", report);
    ok = checkStack(model, model.gen, "gen", report) && ok;
    if (!ok)
        return;

    const LayerSpec &head = model.disc.back();
    if (head.outChannels != 1 || head.outH() != 1 || head.outW() != 1)
        report.warning(codes::kNetHead,
                       layerWhere(model, "disc",
                                  model.disc.size() - 1),
                       "discriminator does not end in a 1x1x1 scalar "
                       "head: " + head.describe());

    const LayerSpec &last = model.gen.back();
    const LayerSpec &first = model.disc.front();
    if (last.outChannels != first.inChannels ||
        last.outH() != first.inH || last.outW() != first.inW) {
        std::ostringstream os;
        os << "generator produces " << last.outChannels << "x"
           << last.outH() << "x" << last.outW()
           << " but the discriminator consumes " << first.inChannels
           << "x" << first.inH << "x" << first.inW;
        report.error(codes::kNetImage, model.name, os.str());
        return;
    }

    // The graph is sound: derive every phase's streamed job and check
    // the specs themselves (zero-insert geometry, extents). A failure
    // here is a phase-mapping bug, not a user error, but it is still
    // reported instead of panicking.
    try {
        for (sim::Phase p : sim::allPhases())
            for (const ConvSpec &job : sim::phaseJobs(model, p))
                checkConvSpec(job, report);
    } catch (const util::PanicError &e) {
        report.error(codes::kNetShape, model.name,
                     std::string("phase-job derivation failed: ") +
                         e.what());
    }
}

namespace {

struct DimCheck
{
    const char *name;
    int bound;
    int factor;
};

/** Loop bounds the unrolling must divide for a job on a dataflow.
 *  ZFOST/ZFWST bounds are per parity class of the zero-stuffed map. */
std::vector<DimCheck>
unrollDims(core::ArchKind kind, const Unroll &u, const ConvSpec &spec)
{
    std::vector<DimCheck> dims;
    switch (kind) {
      case core::ArchKind::NLR:
        if (!spec.fourDimOutput)
            dims.push_back({"nif", spec.nif, u.pIf});
        dims.push_back({"nof", spec.nof, u.pOf});
        break;
      case core::ArchKind::WST:
        dims.push_back({"kh", spec.kh, u.pKy});
        dims.push_back({"kw", spec.kw, u.pKx});
        dims.push_back({"nof", spec.nof, u.pOf});
        break;
      case core::ArchKind::OST:
        dims.push_back({"oh", spec.oh, u.pOy});
        dims.push_back({"ow", spec.ow, u.pOx});
        dims.push_back({"nof", spec.nof, u.pOf});
        break;
      case core::ArchKind::ZFOST: {
        const int z = spec.inZeroStride;
        for (int cy = 0; cy < z && cy < spec.oh; ++cy)
            for (int cx = 0; cx < z && cx < spec.ow; ++cx) {
                dims.push_back(
                    {"class rows", (spec.oh - cy + z - 1) / z, u.pOy});
                dims.push_back(
                    {"class cols", (spec.ow - cx + z - 1) / z, u.pOx});
            }
        dims.push_back({"nof", spec.nof, u.pOf});
        break;
      }
      case core::ArchKind::ZFWST: {
        const int cap = u.pKx * u.pKy;
        const int z = spec.inZeroStride;
        for (int cy = 0; cy < z && cy < spec.oh; ++cy)
            for (int cx = 0; cx < z && cx < spec.ow; ++cx) {
                int eff = 0;
                for (int ky = 0; ky < spec.kh; ++ky) {
                    if (spec.kernelRowZero(ky))
                        continue;
                    if (z > 1 && (cy + ky - spec.pad) % z != 0)
                        continue;
                    for (int kx = 0; kx < spec.kw; ++kx) {
                        if (spec.kernelColZero(kx))
                            continue;
                        if (z > 1 && (cx + kx - spec.pad) % z != 0)
                            continue;
                        ++eff;
                    }
                }
                if (eff > 0)
                    dims.push_back({"class kernel elems", eff, cap});
            }
        dims.push_back({"nof", spec.nof, u.pOf});
        break;
      }
    }
    return dims;
}

/** Unroll factors a dataflow reads / ignores. */
void
relevantFactors(core::ArchKind kind, const Unroll &u,
                std::vector<std::pair<const char *, int>> &used,
                std::vector<std::pair<const char *, int>> &unused)
{
    auto pIf = std::make_pair("P_if", u.pIf);
    auto pOf = std::make_pair("P_of", u.pOf);
    auto pKx = std::make_pair("P_kx", u.pKx);
    auto pKy = std::make_pair("P_ky", u.pKy);
    auto pOx = std::make_pair("P_ox", u.pOx);
    auto pOy = std::make_pair("P_oy", u.pOy);
    switch (kind) {
      case core::ArchKind::NLR:
        used = {pIf, pOf};
        unused = {pKx, pKy, pOx, pOy};
        break;
      case core::ArchKind::WST:
      case core::ArchKind::ZFWST:
        used = {pKx, pKy, pOf};
        unused = {pIf, pOx, pOy};
        break;
      case core::ArchKind::OST:
      case core::ArchKind::ZFOST:
        used = {pOx, pOy, pOf};
        unused = {pIf, pKx, pKy};
        break;
    }
}

} // namespace

void
checkUnroll(core::ArchKind kind, const Unroll &unroll,
            const std::vector<ConvSpec> &jobs, Report &report)
{
    const std::string arch = core::archKindName(kind);

    std::vector<std::pair<const char *, int>> used, unused;
    relevantFactors(kind, unroll, used, unused);
    bool positive = true;
    for (const auto &[name, value] : used) {
        if (value < 1) {
            report.error(codes::kUnrollPositive, arch,
                         std::string(name) + " = " +
                             std::to_string(value) +
                             " must be at least 1");
            positive = false;
        }
    }
    for (const auto &[name, value] : unused)
        if (value != 1)
            report.warning(codes::kUnrollUnused, arch,
                           std::string(name) + " = " +
                               std::to_string(value) + " is ignored by "
                               "the " + arch + " dataflow");
    if (!positive)
        return;

    const bool zero_free = kind == core::ArchKind::ZFOST ||
                           kind == core::ArchKind::ZFWST;
    for (const ConvSpec &job : jobs) {
        // A stuffed input streamed with stride > 1 already fails
        // checkConvSpec (GA-SPEC-ZI-STRIDE); the zero-free schedules
        // are undefined on it.
        if (zero_free && job.inZeroStride > 1 && job.stride != 1)
            continue;
        std::vector<const char *> offending;
        for (const DimCheck &d : unrollDims(kind, unroll, job)) {
            if (d.bound % d.factor != 0 &&
                std::find(offending.begin(), offending.end(), d.name) ==
                    offending.end())
                offending.push_back(d.name);
        }
        if (offending.empty())
            continue;
        // Quantify the boundary cost with the closed-form schedule:
        // the fraction of offered PE slots nothing was scheduled on.
        sim::RunStats st = staticRunStats(kind, unroll, job);
        double idle_frac =
            st.totalSlots()
                ? double(st.idlePeSlots) / double(st.totalSlots())
                : 0.0;
        std::ostringstream os;
        os << arch << " unrolling does not divide";
        for (std::size_t i = 0; i < offending.size(); ++i)
            os << (i ? ", " : " ") << offending[i];
        os << "; " << int(idle_frac * 100.0)
           << "% of PE slots idle on this job";
        report.note(codes::kUnrollDivide, job.label, os.str());
        if (idle_frac > 0.5)
            report.warning(codes::kUnrollWaste, job.label,
                           arch + " boundary tiles idle more than half "
                           "the array on this job (" +
                               std::to_string(int(idle_frac * 100.0)) +
                               "%)");
    }
}

std::string
baselineName(BaselineKind kind)
{
    return kind == BaselineKind::CNV ? "CNV" : "RST";
}

void
checkBaselineUnroll(BaselineKind kind, const Unroll &unroll,
                    const std::vector<ConvSpec> &jobs, Report &report)
{
    const std::string arch = baselineName(kind);

    std::vector<std::pair<const char *, int>> used, unused;
    if (kind == BaselineKind::CNV) {
        used = {{"P_if", unroll.pIf}, {"P_of", unroll.pOf}};
        unused = {{"P_kx", unroll.pKx},
                  {"P_ky", unroll.pKy},
                  {"P_ox", unroll.pOx},
                  {"P_oy", unroll.pOy}};
    } else {
        used = {{"P_ky", unroll.pKy},
                {"P_oy", unroll.pOy},
                {"P_of", unroll.pOf}};
        unused = {{"P_if", unroll.pIf},
                  {"P_kx", unroll.pKx},
                  {"P_ox", unroll.pOx}};
    }
    bool positive = true;
    for (const auto &[name, value] : used) {
        if (value < 1) {
            report.error(codes::kUnrollPositive, arch,
                         std::string(name) + " = " +
                             std::to_string(value) +
                             " must be at least 1");
            positive = false;
        }
    }
    for (const auto &[name, value] : unused)
        if (value != 1)
            report.warning(codes::kUnrollUnused, arch,
                           std::string(name) + " = " +
                               std::to_string(value) + " is ignored by "
                               "the " + arch + " dataflow");
    if (!positive)
        return;

    for (const ConvSpec &job : jobs) {
        std::vector<DimCheck> dims;
        if (kind == BaselineKind::CNV) {
            if (!job.fourDimOutput)
                dims.push_back({"nif", job.nif, unroll.pIf});
            dims.push_back({"nof", job.nof, unroll.pOf});
        } else {
            dims.push_back({"kh", job.kh, unroll.pKy});
            dims.push_back({"oh", job.oh, unroll.pOy});
            dims.push_back({"nof", job.nof, unroll.pOf});
        }
        std::vector<const char *> offending;
        for (const DimCheck &d : dims)
            if (d.bound % d.factor != 0 &&
                std::find(offending.begin(), offending.end(), d.name) ==
                    offending.end())
                offending.push_back(d.name);
        if (offending.empty())
            continue;
        std::ostringstream os;
        os << arch << " unrolling does not divide";
        for (std::size_t i = 0; i < offending.size(); ++i)
            os << (i ? ", " : " ") << offending[i];
        os << "; boundary tiles idle PE slots on this job";
        report.note(codes::kUnrollDivide, job.label, os.str());
    }
}

void
checkBufferWorkingSets(const GanModel &model, const mem::BufferPlan &plan,
                       int w_pof, int bytes_per_elem, Report &report)
{
    if (model.disc.empty() || model.gen.empty())
        return; // checkModel reports GA-NET-EMPTY
    const std::uint64_t bpe = std::uint64_t(bytes_per_elem);

    auto scan = [&](const std::vector<LayerSpec> &layers,
                    const char *which) {
        for (std::size_t i = 0; i < layers.size(); ++i) {
            const LayerSpec &l = layers[i];
            const std::string where = layerWhere(model, which, i);
            std::uint64_t out_bytes = l.outputElems() * bpe;
            if (out_bytes > plan.inOutBytes)
                report.error(codes::kBufWorkset, where,
                             "layer output (" +
                                 std::to_string(out_bytes) +
                                 " B) exceeds an In&Out half (" +
                                 std::to_string(plan.inOutBytes) +
                                 " B)");
            std::uint64_t w_bytes = l.numWeights() * bpe;
            if (w_bytes > plan.weightBytes)
                report.error(codes::kBufWorkset, where,
                             "kernel set (" + std::to_string(w_bytes) +
                                 " B) exceeds the Weight buffer (" +
                                 std::to_string(plan.weightBytes) +
                                 " B)");
            std::uint64_t grad_bytes = std::uint64_t(w_pof) *
                                       std::uint64_t(l.inChannels) *
                                       std::uint64_t(l.geom.kernel) *
                                       std::uint64_t(l.geom.kernel) * bpe;
            if (grad_bytes > plan.gradWBytes)
                report.error(codes::kBufWorkset, where,
                             "W_Pof-wide partial-gradient set (" +
                                 std::to_string(grad_bytes) +
                                 " B) exceeds a gradient half (" +
                                 std::to_string(plan.gradWBytes) +
                                 " B)");
        }
    };
    scan(model.disc, "disc");
    scan(model.gen, "gen");

    std::uint64_t image = std::uint64_t(model.disc.front().inChannels) *
                          std::uint64_t(model.disc.front().inH) *
                          std::uint64_t(model.disc.front().inW);
    std::uint64_t sample_bytes =
        (std::max(model.discIntermediateElems(),
                  model.genIntermediateElems()) +
         image) *
        bpe;
    if (sample_bytes > plan.dataBytes)
        report.error(codes::kBufWorkset, model.name,
                     "per-sample forward data set (" +
                         std::to_string(sample_bytes) +
                         " B) exceeds the Data buffer (" +
                         std::to_string(plan.dataBytes) + " B)");
    if (sample_bytes > plan.errorBytes)
        report.error(codes::kBufWorkset, model.name,
                     "per-sample error set (" +
                         std::to_string(sample_bytes) +
                         " B) exceeds the Error buffer (" +
                         std::to_string(plan.errorBytes) + " B)");
}

void
checkBramBudget(const mem::BufferPlan &plan, int bram36_budget,
                Report &report)
{
    int need = plan.bram36Count();
    if (need > bram36_budget)
        report.error(codes::kBufCapacity, "buffer plan",
                     "needs " + std::to_string(need) +
                         " BRAM36 but the device provides " +
                         std::to_string(bram36_budget));
}

void
checkDesignPoint(const Report &model_report, int w_pof, int st_pof,
                 int pes_per_channel, Report &report)
{
    if (w_pof < 1 || st_pof < 1 || pes_per_channel < 1)
        report.error(codes::kDsePoint, "DSE point",
                     "degenerate parallelism (W_Pof=" +
                         std::to_string(w_pof) + ", ST_Pof=" +
                         std::to_string(st_pof) + ", PEs/channel=" +
                         std::to_string(pes_per_channel) + ")");
    if (!model_report.ok())
        report.merge(model_report);
}

} // namespace verify
} // namespace ganacc
