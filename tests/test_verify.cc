/**
 * @file
 * Negative-path tests of the static verifier: every seeded-illegal
 * spec must be rejected with its documented stable code, every
 * bundled network must pass clean, and the DSE pre-filter must reject
 * points instead of letting the sweep panic.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/dse.hh"
#include "core/unrolling.hh"
#include "gan/models.hh"
#include "mem/onchip_buffer.hh"
#include "sim/phase.hh"
#include "verify/diagnostics.hh"
#include "verify/legality.hh"
#include "verify/range_analysis.hh"
#include "verify/verifier.hh"

namespace {

using namespace ganacc;
using verify::Report;

/** A dense, legal 3x3 stride-1 job used as the mutation base. */
sim::ConvSpec
legalSpec()
{
    sim::ConvSpec s;
    s.label = "test job";
    s.nif = 2;
    s.nof = 6;
    s.ih = 8;
    s.iw = 8;
    s.kh = 3;
    s.kw = 3;
    s.oh = 6;
    s.ow = 6;
    return s;
}

// ---------------------------------------------------------------------
// ConvSpec legality (GA-SPEC-*)

TEST(ConvSpecLegality, LegalSpecIsClean)
{
    Report r;
    verify::checkConvSpec(legalSpec(), r);
    EXPECT_TRUE(r.empty()) << "unexpected diagnostics";
}

TEST(ConvSpecLegality, MalformedFieldsAreRejected)
{
    sim::ConvSpec s = legalSpec();
    s.oh = 0;
    Report r;
    verify::checkConvSpec(s, r);
    EXPECT_TRUE(r.has(verify::codes::kSpecField));
    EXPECT_FALSE(r.ok());
}

TEST(ConvSpecLegality, OutputExtentBeyondInputIsRejected)
{
    sim::ConvSpec s = legalSpec();
    s.oh = 9; // (9-1)*1 - 0 >= ih=8: last row reads past the input
    Report r;
    verify::checkConvSpec(s, r);
    EXPECT_TRUE(r.has(verify::codes::kSpecExtent));
    EXPECT_FALSE(r.ok());
}

TEST(ConvSpecLegality, StuffedInputWithStrideIsRejected)
{
    sim::ConvSpec s = legalSpec();
    s.inZeroStride = 2;
    s.inOrigH = 4;
    s.inOrigW = 4;
    s.stride = 2;
    s.oh = 3;
    s.ow = 3;
    Report r;
    verify::checkConvSpec(s, r);
    EXPECT_TRUE(r.has(verify::codes::kSpecZeroInsertStride));
    EXPECT_FALSE(r.ok());
}

TEST(ConvSpecLegality, StuffedGeometryMismatchIsRejected)
{
    sim::ConvSpec s = legalSpec();
    s.inZeroStride = 2;
    s.inOrigH = 4; // natural streamed size 7; 9 leaves 2 >= z extras
    s.inOrigW = 4;
    s.ih = 9;
    s.iw = 7;
    Report r;
    verify::checkConvSpec(s, r);
    EXPECT_TRUE(r.has(verify::codes::kSpecZeroInsertGeom));
    EXPECT_FALSE(r.ok());
}

TEST(ConvSpecLegality, DilatedKernelGeometryMismatchIsRejected)
{
    sim::ConvSpec s = legalSpec();
    s.kZeroStride = 2;
    s.kOrigH = 2; // natural dilated size 3; kh=6 leaves 3 >= z extras
    s.kOrigW = 2;
    s.kh = 6;
    s.kw = 3;
    s.oh = 3;
    s.ow = 6;
    Report r;
    verify::checkConvSpec(s, r);
    EXPECT_TRUE(r.has(verify::codes::kSpecKernelZeroGeom));
    EXPECT_FALSE(r.ok());
}

// ---------------------------------------------------------------------
// Network legality (GA-NET-*)

TEST(NetworkLegality, BundledNetworksAreClean)
{
    std::vector<gan::GanModel> models = gan::allModels();
    models.push_back(gan::makeContextEncoder());
    for (const gan::GanModel &m : models) {
        Report r;
        verify::checkModel(m, r);
        std::ostringstream os;
        r.renderText(os);
        EXPECT_TRUE(r.empty()) << m.name << ":\n" << os.str();
    }
}

TEST(NetworkLegality, EmptyModelIsRejected)
{
    gan::GanModel m;
    m.name = "Empty";
    Report r;
    verify::checkModel(m, r);
    EXPECT_TRUE(r.has(verify::codes::kNetEmpty));
    EXPECT_FALSE(r.ok());
}

TEST(NetworkLegality, MalformedLayerIsRejected)
{
    gan::GanModel m = gan::makeDcgan();
    m.disc[0].geom.kernel = 0;
    Report r;
    verify::checkModel(m, r);
    EXPECT_TRUE(r.has(verify::codes::kNetShape));
    EXPECT_FALSE(r.ok());
}

TEST(NetworkLegality, TconvOutPadAtLeastStrideIsRejected)
{
    gan::GanModel m = gan::makeDcgan();
    m.gen[0].geom.outPad = m.gen[0].geom.stride;
    Report r;
    verify::checkModel(m, r);
    EXPECT_TRUE(r.has(verify::codes::kNetShape));
    EXPECT_FALSE(r.ok());
}

TEST(NetworkLegality, BrokenChainIsRejected)
{
    gan::GanModel m = gan::makeDcgan();
    m.disc[1].inChannels += 1;
    Report r;
    verify::checkModel(m, r);
    EXPECT_TRUE(r.has(verify::codes::kNetChain));
    EXPECT_FALSE(r.ok());
    const verify::Diagnostic *d = r.find(verify::codes::kNetChain);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->where, "DCGAN disc L1"); // location is precise
}

TEST(NetworkLegality, GeneratorImageMismatchIsRejected)
{
    gan::GanModel m = gan::makeDcgan();
    m.gen.back().outChannels += 1;
    Report r;
    verify::checkModel(m, r);
    EXPECT_TRUE(r.has(verify::codes::kNetImage));
    EXPECT_FALSE(r.ok());
}

TEST(NetworkLegality, NonScalarHeadIsAWarningOnly)
{
    gan::GanModel m = gan::makeDcgan();
    m.disc.back().outChannels = 2;
    Report r;
    verify::checkModel(m, r);
    EXPECT_TRUE(r.has(verify::codes::kNetHead));
    EXPECT_TRUE(r.ok()) << "a non-scalar head is legal to simulate";
    EXPECT_GE(r.warningCount(), 1);
}

// ---------------------------------------------------------------------
// Unrolling legality (GA-UNROLL-*)

TEST(UnrollLegality, DividingUnrollIsClean)
{
    sim::Unroll u;
    u.pOy = 2;
    u.pOx = 2;
    u.pOf = 3; // divides oh=6, ow=6, nof=6
    Report r;
    verify::checkUnroll(core::ArchKind::OST, u, {legalSpec()}, r);
    EXPECT_TRUE(r.empty());
}

TEST(UnrollLegality, NonPositiveRelevantFactorIsRejected)
{
    sim::Unroll u;
    u.pOf = 0;
    Report r;
    verify::checkUnroll(core::ArchKind::OST, u, {legalSpec()}, r);
    EXPECT_TRUE(r.has(verify::codes::kUnrollPositive));
    EXPECT_FALSE(r.ok());
}

TEST(UnrollLegality, IrrelevantFactorIsAWarning)
{
    sim::Unroll u;
    u.pKx = 2; // OST never reads kernel unrollings
    Report r;
    verify::checkUnroll(core::ArchKind::OST, u, {legalSpec()}, r);
    EXPECT_TRUE(r.has(verify::codes::kUnrollUnused));
    EXPECT_TRUE(r.ok());
}

TEST(UnrollLegality, NonDividingBoundIsANoteWithIdleFigure)
{
    sim::Unroll u;
    u.pOy = 4; // oh=6 is not a multiple
    Report r;
    verify::checkUnroll(core::ArchKind::OST, u, {legalSpec()}, r);
    EXPECT_TRUE(r.has(verify::codes::kUnrollDivide));
    EXPECT_TRUE(r.ok());
    const verify::Diagnostic *d = r.find(verify::codes::kUnrollDivide);
    ASSERT_NE(d, nullptr);
    EXPECT_NE(d->message.find("idle"), std::string::npos);
}

TEST(UnrollLegality, MostlyIdleBoundaryTilesAreAWarning)
{
    sim::Unroll u;
    u.pOf = 64; // nof=6: 58 of 64 channel lanes idle every cycle
    Report r;
    verify::checkUnroll(core::ArchKind::OST, u, {legalSpec()}, r);
    EXPECT_TRUE(r.has(verify::codes::kUnrollWaste));
    EXPECT_GE(r.warningCount(), 1);
}

TEST(UnrollLegality, BaselineCnvChecksLaneAndChannelFactors)
{
    sim::Unroll u;
    u.pIf = 0;
    verify::Report r;
    verify::checkBaselineUnroll(verify::BaselineKind::CNV, u,
                                {legalSpec()}, r);
    EXPECT_TRUE(r.has(verify::codes::kUnrollPositive));
    EXPECT_FALSE(r.ok());

    u.pIf = 16; // nif=2 is not a multiple of 16 lanes
    u.pOy = 2;  // ignored by CNV
    verify::Report r2;
    verify::checkBaselineUnroll(verify::BaselineKind::CNV, u,
                                {legalSpec()}, r2);
    EXPECT_TRUE(r2.has(verify::codes::kUnrollDivide));
    EXPECT_TRUE(r2.has(verify::codes::kUnrollUnused));
    EXPECT_TRUE(r2.ok());
}

TEST(UnrollLegality, BaselineRstChecksRowGridFactors)
{
    sim::Unroll u;
    u.pKy = 4; // kh=3 rows cannot fill a 4-row grid
    u.pOy = 3;
    u.pOf = 3;
    verify::Report r;
    verify::checkBaselineUnroll(verify::BaselineKind::RST, u,
                                {legalSpec()}, r);
    EXPECT_TRUE(r.has(verify::codes::kUnrollDivide));
    EXPECT_TRUE(r.ok());

    u.pKy = 3; // 3x3 kernel rows, oh=6, nof=6: everything divides
    verify::Report r2;
    verify::checkBaselineUnroll(verify::BaselineKind::RST, u,
                                {legalSpec()}, r2);
    EXPECT_TRUE(r2.empty());
}

// ---------------------------------------------------------------------
// Buffer capacity (GA-BUF-*)

TEST(BufferLegality, PlannedBuffersFitTheirWorkingSets)
{
    gan::GanModel dcgan = gan::makeDcgan();
    mem::BufferPlan plan = mem::planBuffers(dcgan, 30, 2);
    Report r;
    verify::checkBufferWorkingSets(dcgan, plan, 30, 2, r);
    EXPECT_TRUE(r.empty());
}

TEST(BufferLegality, UndersizedPlanIsRejected)
{
    gan::GanModel dcgan = gan::makeDcgan();
    mem::BufferPlan tiny; // all-zero capacities
    Report r;
    verify::checkBufferWorkingSets(dcgan, tiny, 30, 2, r);
    EXPECT_TRUE(r.has(verify::codes::kBufWorkset));
    EXPECT_FALSE(r.ok());
}

TEST(BufferLegality, BramBudgetOverflowIsRejected)
{
    gan::GanModel dcgan = gan::makeDcgan();
    mem::BufferPlan plan = mem::planBuffers(dcgan, 30, 2);
    Report r;
    verify::checkBramBudget(plan, 1, r);
    EXPECT_TRUE(r.has(verify::codes::kBufCapacity));
    EXPECT_FALSE(r.ok());
}

// ---------------------------------------------------------------------
// Fixed-point range analysis (GA-RANGE-*)

TEST(RangeAnalysis, RequiredIntBits)
{
    EXPECT_EQ(verify::requiredIntBits(0.5), 0);
    EXPECT_EQ(verify::requiredIntBits(1.5), 1);
    EXPECT_EQ(verify::requiredIntBits(100.0), 7);  // Q7.8 holds 127.996
    EXPECT_EQ(verify::requiredIntBits(200.0), 8);
    EXPECT_EQ(verify::requiredIntBits(1e6), -1);   // beyond 16 bits
}

TEST(RangeAnalysis, BundledNetworksPassUnderKaimingModel)
{
    std::vector<gan::GanModel> models = gan::allModels();
    models.push_back(gan::makeContextEncoder());
    for (const gan::GanModel &m : models) {
        Report r;
        verify::RangeAnalysis a =
            verify::analyzeRanges(m, verify::RangeOptions{}, r);
        std::ostringstream os;
        r.renderText(os);
        EXPECT_TRUE(r.empty()) << m.name << ":\n" << os.str();
        EXPECT_LE(a.worstPeak, a.maxRepresentable) << m.name;
    }
}

TEST(RangeAnalysis, WorstCaseIntervalModeFlagsDcganSaturation)
{
    verify::RangeOptions opts;
    opts.weights = verify::RangeOptions::WeightModel::FixedBound;
    Report r;
    verify::RangeAnalysis a =
        verify::analyzeRanges(gan::makeDcgan(), opts, r);
    // A 512-channel 5x5 layer with |w| <= 0.25 can accumulate far
    // past Q7.8: the sound worst-case bound must flag it.
    EXPECT_TRUE(r.has(verify::codes::kRangeSaturate));
    EXPECT_TRUE(r.has(verify::codes::kRangeWorstCase));
    EXPECT_FALSE(r.ok());
    EXPECT_GT(a.worstPeak, a.maxRepresentable);
    const verify::Diagnostic *d = r.find(verify::codes::kRangeSaturate);
    ASSERT_NE(d, nullptr);
    EXPECT_NE(d->message.find("Q"), std::string::npos)
        << "the diagnostic must name the containing Q format";
}

// ---------------------------------------------------------------------
// Composed pipelines

TEST(Verifier, BundledNetworksVerifyClean)
{
    std::vector<gan::GanModel> models = gan::allModels();
    models.push_back(gan::makeContextEncoder());
    for (const gan::GanModel &m : models) {
        Report r = verify::verifyModel(m);
        std::ostringstream os;
        r.renderText(os);
        EXPECT_TRUE(r.empty()) << m.name << ":\n" << os.str();
    }
}

TEST(Verifier, IllegalModelShortCircuitsBeforeRangeAnalysis)
{
    gan::GanModel m = gan::makeDcgan();
    m.disc[1].inChannels += 1;
    Report r = verify::verifyModel(m);
    EXPECT_TRUE(r.has(verify::codes::kNetChain));
    EXPECT_FALSE(r.has(verify::codes::kRangeSaturate));
    EXPECT_FALSE(r.has(verify::codes::kBufWorkset));
}

TEST(Verifier, PaperSchedulesVerifyLegal)
{
    gan::GanModel dcgan = gan::makeDcgan();
    for (core::ArchKind kind : core::allArchKinds()) {
        sim::Unroll u = core::paperUnroll(
            kind, core::BankRole::ST, sim::PhaseFamily::D, 1200);
        Report r = verify::verifySchedule(dcgan, kind, u);
        std::ostringstream os;
        r.renderText(os);
        EXPECT_TRUE(r.ok()) << core::archKindName(kind) << ":\n"
                            << os.str();
    }
}

// ---------------------------------------------------------------------
// DSE pre-filter (GA-DSE-POINT and the sweep wiring)

TEST(DsePrefilter, DegenerateParametersAreRejected)
{
    Report model_report; // a clean model
    Report r;
    verify::checkDesignPoint(model_report, 0, 75, 16, r);
    EXPECT_TRUE(r.has(verify::codes::kDsePoint));
    EXPECT_FALSE(r.ok());
}

TEST(DsePrefilter, IllegalModelRejectsEveryPointInsteadOfPanicking)
{
    gan::GanModel broken = gan::makeDcgan();
    broken.disc[1].inChannels += 1;

    core::DseConstraints cons;
    cons.budget = core::vcu9pBudget();
    cons.maxWPof = 5;
    ASSERT_TRUE(cons.verify) << "the pre-filter must be on by default";

    std::vector<core::DsePoint> serial =
        core::sweepFrontier(cons, broken);
    ASSERT_EQ(serial.size(), 5u);
    EXPECT_EQ(core::verifierRejectedCount(serial), 5);
    for (const core::DsePoint &p : serial) {
        EXPECT_TRUE(p.verifierRejected);
        EXPECT_EQ(p.verifierCode, verify::codes::kNetChain);
        EXPECT_FALSE(p.verifierMessage.empty());
        EXPECT_FALSE(p.feasible());
    }
    EXPECT_FALSE(core::bestFeasible(serial).has_value());

    // The parallel engine must agree point for point.
    std::vector<core::DsePoint> par =
        core::sweepFrontierParallel(cons, broken, 2);
    ASSERT_EQ(par.size(), serial.size());
    for (std::size_t i = 0; i < par.size(); ++i) {
        EXPECT_EQ(par[i].wPof, serial[i].wPof);
        EXPECT_EQ(par[i].verifierRejected, serial[i].verifierRejected);
        EXPECT_EQ(par[i].verifierCode, serial[i].verifierCode);
    }
}

TEST(DsePrefilter, LegalModelPassesTheFilterUntouched)
{
    core::DseConstraints cons;
    cons.budget = core::vcu9pBudget();
    cons.maxWPof = 3;
    std::vector<core::DsePoint> pts =
        core::sweepFrontier(cons, gan::makeDcgan());
    EXPECT_EQ(core::verifierRejectedCount(pts), 0);
    for (const core::DsePoint &p : pts)
        EXPECT_GT(p.iterationCycles, 0u) << "point was simulated";
}

// ---------------------------------------------------------------------
// Report rendering

TEST(Diagnostics, TextAndJsonRendering)
{
    Report r;
    r.error("GA-TEST", "spot \"here\"", "a \"quoted\" message");
    r.warning("GA-TEST-2", "there", "soft finding");
    r.note("GA-TEST-3", "there", "fyi");
    EXPECT_EQ(r.errorCount(), 1);
    EXPECT_EQ(r.warningCount(), 1);
    EXPECT_EQ(r.noteCount(), 1);
    EXPECT_FALSE(r.ok());

    std::ostringstream text;
    r.renderText(text);
    EXPECT_NE(text.str().find("error GA-TEST"), std::string::npos);

    std::ostringstream json;
    r.renderJson(json);
    EXPECT_NE(json.str().find("\"errors\":1"), std::string::npos);
    EXPECT_NE(json.str().find("\\\"quoted\\\""), std::string::npos)
        << "JSON strings must be escaped: " << json.str();
}

} // namespace
