/**
 * @file
 * Engine implementation.
 */

#include "serve/engine.hh"

#include <chrono>
#include <exception>

#include "core/cycle_cache.hh"
#include "gan/models.hh"
#include "sim/phase.hh"
#include "util/logging.hh"

namespace ganacc {
namespace serve {

namespace {

/** The dedupe key of a request: everything but the id. */
std::string
flightKey(const Request &req)
{
    if (req.hasSpec)
        return contentKey(req.kind, req.unroll, req.spec);
    return "net|" + core::archKindName(req.kind) + '|' +
           sim::toJson(req.unroll) + '|' + req.model + '|' +
           req.family;
}

gan::GanModel
modelByName(const std::string &name)
{
    if (name == "dcgan")
        return gan::makeDcgan();
    if (name == "mnist-gan")
        return gan::makeMnistGan();
    if (name == "cgan")
        return gan::makeCgan();
    if (name == "context-encoder")
        return gan::makeContextEncoder();
    util::fatal("unknown model \"", name,
                "\" (dcgan, mnist-gan, cgan, context-encoder)");
}

sim::PhaseFamily
familyByName(const std::string &name)
{
    if (name == "D")
        return sim::PhaseFamily::D;
    if (name == "G")
        return sim::PhaseFamily::G;
    if (name == "Dw")
        return sim::PhaseFamily::Dw;
    if (name == "Gw")
        return sim::PhaseFamily::Gw;
    util::fatal("unknown phase family \"", name,
                "\" (D, G, Dw, Gw)");
}

/** sim > disk > mem: an aggregate is only as warm as its coldest job. */
int
coldness(core::CacheOutcome o)
{
    switch (o) {
      case core::CacheOutcome::MemoryHit: return 0;
      case core::CacheOutcome::DiskHit: return 1;
      case core::CacheOutcome::Simulated: return 2;
    }
    return 2;
}

} // namespace

Engine::Engine(const EngineOptions &opts)
    : opts_(opts), cache_(opts.cacheDir),
      pool_(std::make_unique<util::ThreadPool>(opts.jobs))
{
    if (opts_.maxQueue == 0)
        util::fatal("engine: maxQueue must be positive");
}

Engine::~Engine()
{
    try {
        drain();
    } catch (...) {
        // Destruction during stack unwinding must not throw.
    }
}

Response
Engine::executeSpec(const Request &req)
{
    Response rsp;
    rsp.id = req.id;
    core::CacheOutcome worst = core::CacheOutcome::MemoryHit;
    auto &cache = core::CycleCache::instance();
    if (req.hasSpec) {
        req.spec.validate();
        rsp.stats = cache.stats(req.kind, req.unroll, req.spec, &worst);
    } else {
        const gan::GanModel model = modelByName(req.model);
        const auto jobs =
            sim::familyJobs(model, familyByName(req.family));
        if (jobs.empty())
            util::fatal("model \"", req.model, "\" family \"",
                        req.family, "\" has no jobs");
        for (const auto &job : jobs) {
            core::CacheOutcome o = core::CacheOutcome::Simulated;
            rsp.stats += cache.stats(req.kind, req.unroll, job, &o);
            if (coldness(o) > coldness(worst))
                worst = o;
        }
    }
    rsp.ok = true;
    rsp.simVersion = simulatorVersion();
    rsp.arch = core::archKindName(req.kind);
    rsp.unroll = req.unroll;
    rsp.cache = core::cacheOutcomeName(worst);
    return rsp;
}

Response
Engine::execute(const Request &req)
{
    const auto t0 = std::chrono::steady_clock::now();
    Response rsp;
    try {
        rsp = executeSpec(req);
    } catch (const std::exception &e) {
        rsp = errorResponse(req.id, e.what());
    }
    const auto t1 = std::chrono::steady_clock::now();
    rsp.latencyUs =
        opts_.deterministic
            ? 0
            : std::uint64_t(
                  std::chrono::duration_cast<std::chrono::microseconds>(
                      t1 - t0)
                      .count());
    {
        std::lock_guard<std::mutex> lk(counters_m_);
        ++counters_.requests;
        if (!rsp.ok)
            ++counters_.errors;
        else if (rsp.cache == "mem")
            ++counters_.memHits;
        else if (rsp.cache == "disk")
            ++counters_.diskHits;
        else
            ++counters_.simulated;
    }
    return rsp;
}

std::future<Response>
Engine::submit(const Request &req)
{
    std::unique_lock<std::mutex> lk(m_);
    queueCv_.wait(lk, [&] {
        return draining_ || inFlight_ < opts_.maxQueue;
    });
    if (draining_)
        util::fatal("engine: submit after drain");

    // Single-flight: piggyback on an identical in-flight request.
    // The follower future is deferred — it costs no worker and only
    // re-labels the leader's response with its own id.
    const std::string key = flightKey(req);
    auto it = inflightByKey_.find(key);
    if (it != inflightByKey_.end()) {
        std::shared_future<Response> leader = it->second;
        {
            std::lock_guard<std::mutex> clk(counters_m_);
            ++counters_.requests;
            ++counters_.deduped;
        }
        const std::uint64_t id = req.id;
        return std::async(std::launch::deferred,
                          [leader, id]() mutable {
                              Response rsp = leader.get();
                              rsp.id = id;
                              rsp.cache = "dup";
                              rsp.latencyUs = 0;
                              return rsp;
                          });
    }

    ++inFlight_;
    auto task = std::make_shared<std::packaged_task<Response()>>(
        [this, req, key] {
            const Response rsp = execute(req);
            // Unregister before the future becomes ready: a caller
            // that has already observed .get() must miss the flight
            // table on its next submit, or an immediate resubmit
            // dedupes against a finished request instead of hitting
            // the memory tier.
            std::lock_guard<std::mutex> glk(m_);
            inflightByKey_.erase(key);
            --inFlight_;
            queueCv_.notify_all();
            return rsp;
        });
    std::shared_future<Response> shared =
        task->get_future().share();
    inflightByKey_.emplace(key, shared);
    lk.unlock();

    pool_->submit([task] { (*task)(); });

    // Adapt the shared_future back to the unique future the caller
    // owns (deferred: just forwards the shared result).
    return std::async(std::launch::deferred,
                      [shared]() { return shared.get(); });
}

Response
Engine::handle(const Request &req)
{
    return submit(req).get();
}

void
Engine::drain()
{
    std::unique_lock<std::mutex> lk(m_);
    draining_ = true;
    queueCv_.notify_all();
    queueCv_.wait(lk, [&] { return inFlight_ == 0; });
    lk.unlock();
    pool_->wait();
}

EngineCounters
Engine::counters() const
{
    std::lock_guard<std::mutex> lk(counters_m_);
    return counters_;
}

std::string
Engine::summary() const
{
    const EngineCounters c = counters();
    std::string out =
        "served " + std::to_string(c.requests) + " requests: " +
        std::to_string(c.memHits) + " mem, " +
        std::to_string(c.diskHits) + " disk, " +
        std::to_string(c.simulated) + " simulated, " +
        std::to_string(c.deduped) + " deduped, " +
        std::to_string(c.errors) + " errors";
    if (cache_.store())
        out += "; " + cache_.store()->summary();
    return out;
}

} // namespace serve
} // namespace ganacc
