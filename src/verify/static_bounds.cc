/**
 * @file
 * Closed-form performance-bound derivations, one per dataflow.
 *
 * Shared notation: u64 arithmetic throughout; ceil(a/b) via ceilDiv;
 * per-axis occupancy counts reuse sim::countNonzeroCoords, whose sum
 * over a partition of the output range equals the count over the whole
 * range (the cycle walks tile that range, the closed forms do not).
 */

#include "verify/static_bounds.hh"

#include <algorithm>
#include <sstream>
#include <vector>

#include "util/logging.hh"

namespace ganacc {
namespace verify {

using core::ArchKind;
using sim::ConvSpec;
using sim::countNonzeroCoords;
using sim::RunStats;
using sim::Unroll;

namespace {

using u64 = std::uint64_t;

u64
ceilDiv(u64 a, u64 b)
{
    return (a + b - 1) / b;
}

/**
 * OST: an output tile is pinned per pass; every (ofb, tyb, txb, c,
 * ky, kx) combination is one cycle. Input-register traffic depends on
 * whether raster weight order still shifts (stride 1) or reloads the
 * tile (strided).
 */
RunStats
ostBounds(const Unroll &u, const ConvSpec &s)
{
    RunStats st;
    st.nPes = u64(u.pOx) * u.pOy * u.pOf;

    const u64 oh = u64(s.oh), ow = u64(s.ow);
    const u64 n_ofb = ceilDiv(u64(s.nof), u64(u.pOf));
    const u64 n_tyb = ceilDiv(oh, u64(u.pOy));
    const u64 n_txb = ceilDiv(ow, u64(u.pOx));
    const u64 kpos = u64(s.kh) * s.kw;

    st.cycles = n_ofb * n_tyb * n_txb * s.nif * kpos;
    st.weightLoads = u64(s.nof) * n_tyb * n_txb * s.nif * kpos;

    // Per (ofb, tile, c): full tile at the first kernel position; at
    // stride 1 each later position shifts in one row (kx == 0) or one
    // column; strided raster order reloads the tile every cycle.
    // Summed over the tile grid: sum(tile) = oh*ow,
    // sum(tx_cnt) = n_tyb*ow, sum(ty_cnt) = n_txb*oh.
    u64 loads_all_tiles;
    if (s.stride == 1)
        loads_all_tiles = oh * ow + u64(s.kh - 1) * n_tyb * ow +
                          u64(s.kh) * u64(s.kw - 1) * n_txb * oh;
    else
        loads_all_tiles = kpos * oh * ow;
    st.inputLoads = n_ofb * s.nif * loads_all_tiles;

    // Occupancy: scheduled slots cover the whole tile; effective ones
    // are the per-axis non-zero counts, separable per kernel position.
    u64 eff_positions = 0;
    for (int ky = 0; ky < s.kh; ++ky) {
        if (s.kernelRowZero(ky))
            continue;
        u64 rows = u64(countNonzeroCoords(0, s.oh, s.stride, ky, s.pad,
                                          s.ih, s.inZeroStride,
                                          s.inOrigH));
        for (int kx = 0; kx < s.kw; ++kx) {
            if (s.kernelColZero(kx))
                continue;
            eff_positions +=
                rows * u64(countNonzeroCoords(0, s.ow, s.stride, kx,
                                              s.pad, s.iw,
                                              s.inZeroStride,
                                              s.inOrigW));
        }
    }
    const u64 scheduled = u64(s.nof) * s.nif * kpos * oh * ow;
    st.effectiveMacs = u64(s.nof) * s.nif * eff_positions;
    st.ineffectualMacs = scheduled - st.effectiveMacs;
    st.idlePeSlots = st.nPes * st.cycles - scheduled;

    st.outputWrites =
        s.fourDimOutput ? u64(s.nof) * s.nif * oh * ow
                        : u64(s.nof) * oh * ow;
    return st;
}

/** The kernel rows (or columns) a ZFOST/ZFWST parity class streams:
 *  not structural kernel zeros, and parity-compatible with the input
 *  stuffing (plain C++ `%` — negative remainders match the walk). */
std::vector<int>
classKernelAxis(const ConvSpec &s, int k_extent, bool row, int c, int z)
{
    std::vector<int> eff;
    for (int k = 0; k < k_extent; ++k) {
        if (row ? s.kernelRowZero(k) : s.kernelColZero(k))
            continue;
        if (z > 1 && (c + k - s.pad) % z != 0)
            continue;
        eff.push_back(k);
    }
    return eff;
}

/**
 * ZFOST: OST per parity class of the zero-stuffed output, with the
 * class's effective kernel positions only. The reordered weight feed
 * keeps the register array shifting even on strided jobs.
 */
RunStats
zfostBounds(const Unroll &u, const ConvSpec &s)
{
    RunStats st;
    st.nPes = u64(u.pOx) * u.pOy * u.pOf;

    const int z = s.inZeroStride;
    GANACC_ASSERT(z == 1 || s.stride == 1,
                  "stuffed input with strided streaming is not a GAN "
                  "pattern: ", s.describe());
    const u64 n_ofb = ceilDiv(u64(s.nof), u64(u.pOf));

    for (int cy = 0; cy < z && cy < s.oh; ++cy) {
        for (int cx = 0; cx < z && cx < s.ow; ++cx) {
            const u64 n_y = u64((s.oh - cy + z - 1) / z);
            const u64 n_x = u64((s.ow - cx + z - 1) / z);
            std::vector<int> eff_ky =
                classKernelAxis(s, s.kh, true, cy, z);
            std::vector<int> eff_kx =
                classKernelAxis(s, s.kw, false, cx, z);
            if (eff_ky.empty() || eff_kx.empty())
                continue;
            const u64 n_ky = eff_ky.size(), n_kx = eff_kx.size();
            const u64 n_tyb = ceilDiv(n_y, u64(u.pOy));
            const u64 n_txb = ceilDiv(n_x, u64(u.pOx));

            st.cycles += n_ofb * n_tyb * n_txb * s.nif * n_ky * n_kx;
            st.weightLoads +=
                u64(s.nof) * n_tyb * n_txb * s.nif * n_ky * n_kx;

            // Reordered feed always shifts: tile at the first kernel
            // position, a row (tx_cnt) at each later ky step, a column
            // (ty_cnt) otherwise.
            st.inputLoads +=
                n_ofb * s.nif *
                (n_y * n_x + (n_ky - 1) * n_tyb * n_x +
                 n_ky * (n_kx - 1) * n_txb * n_y);

            u64 rows_sum = 0, cols_sum = 0;
            for (int ky : eff_ky)
                rows_sum += u64(countNonzeroCoords(
                    0, int(n_y), z * s.stride,
                    cy * s.stride + ky - s.pad, 0, s.ih, s.inZeroStride,
                    s.inOrigH));
            for (int kx : eff_kx)
                cols_sum += u64(countNonzeroCoords(
                    0, int(n_x), z * s.stride,
                    cx * s.stride + kx - s.pad, 0, s.iw, s.inZeroStride,
                    s.inOrigW));
            const u64 scheduled =
                u64(s.nof) * s.nif * n_ky * n_kx * n_y * n_x;
            st.effectiveMacs += u64(s.nof) * s.nif * rows_sum * cols_sum;
            st.ineffectualMacs +=
                scheduled - u64(s.nof) * s.nif * rows_sum * cols_sum;
            st.idlePeSlots +=
                st.nPes * (n_ofb * n_tyb * n_txb * s.nif * n_ky * n_kx) -
                scheduled;

            st.outputWrites += s.fourDimOutput
                                   ? u64(s.nof) * s.nif * n_y * n_x
                                   : u64(s.nof) * n_y * n_x;
        }
    }
    return st;
}

/** Per-axis WST stream counts for one kernel coordinate: input
 *  positions that contribute to some output (total) and the non-zero
 *  subset (effective). */
void
wstAxisCounts(const ConvSpec &s, int k, int in_extent, int out_extent,
              bool row, u64 &total, u64 &nonzero)
{
    total = nonzero = 0;
    for (int i = 0; i < in_extent; ++i) {
        int n = i - k + s.pad;
        if (n < 0 || n % s.stride != 0 || n / s.stride >= out_extent)
            continue;
        ++total;
        if (!(row ? s.inputRowZero(i) : s.inputColZero(i)))
            ++nonzero;
    }
}

/**
 * WST: a kernel tile is resident; every streamed input position is a
 * cycle, and its contributions factorize per axis.
 */
RunStats
wstBounds(const Unroll &u, const ConvSpec &s)
{
    RunStats st;
    st.nPes = u64(u.pKx) * u.pKy * u.pOf;

    const u64 n_ofb = ceilDiv(u64(s.nof), u64(u.pOf));
    const u64 kt_y = ceilDiv(u64(s.kh), u64(u.pKy));
    const u64 kt_x = ceilDiv(u64(s.kw), u64(u.pKx));

    st.cycles = n_ofb * kt_y * kt_x * s.nif * u64(s.ih) * s.iw;
    st.inputLoads = st.cycles;
    st.weightLoads = u64(s.nof) * s.kh * s.kw;

    u64 vy_sum = 0, vy_nz_sum = 0, vx_sum = 0, vx_nz_sum = 0;
    for (int ky = 0; ky < s.kh; ++ky) {
        u64 total, nonzero;
        wstAxisCounts(s, ky, s.ih, s.oh, true, total, nonzero);
        vy_sum += total;
        if (!s.kernelRowZero(ky))
            vy_nz_sum += nonzero;
    }
    for (int kx = 0; kx < s.kw; ++kx) {
        u64 total, nonzero;
        wstAxisCounts(s, kx, s.iw, s.ow, false, total, nonzero);
        vx_sum += total;
        if (!s.kernelColZero(kx))
            vx_nz_sum += nonzero;
    }
    const u64 contrib = vy_sum * vx_sum;
    const u64 eff = vy_nz_sum * vx_nz_sum;

    st.effectiveMacs = u64(s.nof) * s.nif * eff;
    st.ineffectualMacs = u64(s.nof) * s.nif * (contrib - eff);
    st.idlePeSlots =
        st.nPes * st.cycles - u64(s.nof) * s.nif * contrib;
    st.outputReads = u64(s.nof) * s.nif * contrib;
    st.outputWrites = st.outputReads;
    return st;
}

/**
 * ZFWST: per parity class, the effective kernel elements stream in
 * resident chunks of P_ky*P_kx; one output neuron per cycle through
 * the adder tree.
 */
RunStats
zfwstBounds(const Unroll &u, const ConvSpec &s)
{
    RunStats st;
    st.nPes = u64(u.pKx) * u.pKy * u.pOf;

    const int z = s.inZeroStride;
    GANACC_ASSERT(z == 1 || s.stride == 1,
                  "stuffed input with strided streaming is not a GAN "
                  "pattern: ", s.describe());
    const int cap = u.pKx * u.pKy;
    const u64 n_ofb = ceilDiv(u64(s.nof), u64(u.pOf));

    for (int cy = 0; cy < z && cy < s.oh; ++cy) {
        for (int cx = 0; cx < z && cx < s.ow; ++cx) {
            const u64 n_y = u64((s.oh - cy + z - 1) / z);
            const u64 n_x = u64((s.ow - cx + z - 1) / z);
            std::vector<int> eff_ky =
                classKernelAxis(s, s.kh, true, cy, z);
            std::vector<int> eff_kx =
                classKernelAxis(s, s.kw, false, cx, z);
            const u64 n_eff = u64(eff_ky.size()) * eff_kx.size();
            if (n_eff == 0)
                continue;
            const u64 n_chunks = ceilDiv(n_eff, u64(cap));
            const u64 positions = n_y * n_x;

            st.cycles += n_ofb * n_chunks * s.nif * positions;
            st.weightLoads += u64(s.nof) * n_eff;

            // Register traffic per (ofb, chunk, c): the chunk's
            // footprint once, then a column shift per later output.
            u64 chunk_loads = 0;
            for (u64 chunk = 0; chunk < n_chunks; ++chunk) {
                u64 e_cnt = std::min(u64(cap), n_eff - chunk * cap);
                chunk_loads +=
                    e_cnt + (positions - 1) * std::min(e_cnt, u64(u.pKy));
            }
            st.inputLoads += n_ofb * s.nif * chunk_loads;

            // Effective slots factorize exactly as in ZFOST; the
            // chunking only partitions the same kernel-element set.
            u64 rows_sum = 0, cols_sum = 0;
            for (int ky : eff_ky)
                rows_sum += u64(countNonzeroCoords(
                    0, int(n_y), z * s.stride,
                    cy * s.stride + ky - s.pad, 0, s.ih, s.inZeroStride,
                    s.inOrigH));
            for (int kx : eff_kx)
                cols_sum += u64(countNonzeroCoords(
                    0, int(n_x), z * s.stride,
                    cx * s.stride + kx - s.pad, 0, s.iw, s.inZeroStride,
                    s.inOrigW));
            const u64 scheduled = u64(s.nof) * s.nif * positions * n_eff;
            st.effectiveMacs += u64(s.nof) * s.nif * rows_sum * cols_sum;
            st.ineffectualMacs +=
                scheduled - u64(s.nof) * s.nif * rows_sum * cols_sum;
            st.idlePeSlots +=
                st.nPes * (n_ofb * n_chunks * s.nif * positions) -
                scheduled;

            st.outputWrites += u64(s.nof) * n_chunks * s.nif * positions;
            // Accumulating passes read the partial back: every pass
            // but the first per output for accumulating jobs, every
            // chunk but the first per (c, output) for four-dim jobs.
            st.outputReads +=
                s.fourDimOutput
                    ? u64(s.nof) * (n_chunks - 1) * s.nif * positions
                    : u64(s.nof) * (n_chunks * s.nif - 1) * positions;
        }
    }
    return st;
}

/**
 * NLR (zero-skipping): scheduled output/kernel combinations classify
 * per axis into in-bounds non-zero, in-bounds zero, and padding;
 * skipped ones are those whose operand is an in-bounds structural
 * zero.
 */
RunStats
nlrBounds(const Unroll &u, const ConvSpec &s)
{
    RunStats st;
    st.nPes = u64(u.pIf) * u.pOf;

    const u64 n_ofb = ceilDiv(u64(s.nof), u64(u.pOf));
    const u64 n_ifb = ceilDiv(u64(s.nif), u64(u.pIf));

    u64 sched_pos = 0, eff_pos = 0;
    for (int ky = 0; ky < s.kh; ++ky) {
        for (int kx = 0; kx < s.kw; ++kx) {
            if (s.kernelIsZero(ky, kx))
                continue; // never scheduled
            u64 in_y = 0, nz_y = 0, in_x = 0, nz_x = 0;
            for (int oy = 0; oy < s.oh; ++oy) {
                int iy = oy * s.stride + ky - s.pad;
                if (iy < 0 || iy >= s.ih)
                    continue;
                ++in_y;
                if (!s.inputRowZero(iy))
                    ++nz_y;
            }
            for (int ox = 0; ox < s.ow; ++ox) {
                int ix = ox * s.stride + kx - s.pad;
                if (ix < 0 || ix >= s.iw)
                    continue;
                ++in_x;
                if (!s.inputColZero(ix))
                    ++nz_x;
            }
            // Skipped: both coordinates in bounds but the operand is a
            // structural zero (padding still burns cycles).
            u64 skipped = in_y * in_x - nz_y * nz_x;
            sched_pos += u64(s.oh) * s.ow - skipped;
            eff_pos += nz_y * nz_x;
        }
    }
    const u64 pad_pos = sched_pos - eff_pos;

    if (!s.fourDimOutput) {
        st.cycles = sched_pos * n_ofb * n_ifb;
        st.weightLoads = sched_pos * u64(s.nof) * s.nif;
        st.inputLoads = sched_pos * n_ofb * s.nif;
        st.outputReads = sched_pos * u64(s.nof) * n_ifb;
        st.outputWrites = st.outputReads;
        st.effectiveMacs = eff_pos * u64(s.nof) * s.nif;
        st.ineffectualMacs = pad_pos * u64(s.nof) * s.nif;
        st.idlePeSlots =
            st.nPes * st.cycles - sched_pos * u64(s.nof) * s.nif;
    } else {
        st.cycles = sched_pos * n_ofb * s.nif;
        st.weightLoads = sched_pos * u64(s.nof) * s.nif;
        st.inputLoads = sched_pos * n_ofb * s.nif;
        st.outputReads = sched_pos * u64(s.nof) * s.nif;
        st.outputWrites = st.outputReads;
        st.effectiveMacs = eff_pos * u64(s.nof) * s.nif;
        st.ineffectualMacs = pad_pos * u64(s.nof) * s.nif;
        st.idlePeSlots =
            st.nPes * st.cycles - sched_pos * u64(s.nof) * s.nif;
    }
    return st;
}

} // namespace

bool
staticBoundsSupported(ArchKind kind)
{
    switch (kind) {
      case ArchKind::NLR:
      case ArchKind::WST:
      case ArchKind::OST:
      case ArchKind::ZFOST:
      case ArchKind::ZFWST:
        return true;
    }
    return false;
}

RunStats
staticRunStats(ArchKind kind, const Unroll &unroll, const ConvSpec &spec)
{
    spec.validate();
    switch (kind) {
      case ArchKind::NLR:
        return nlrBounds(unroll, spec);
      case ArchKind::WST:
        return wstBounds(unroll, spec);
      case ArchKind::OST:
        return ostBounds(unroll, spec);
      case ArchKind::ZFOST:
        return zfostBounds(unroll, spec);
      case ArchKind::ZFWST:
        return zfwstBounds(unroll, spec);
    }
    util::panic("unknown arch kind");
}

bool
checkBoundsAgainstSim(ArchKind kind, const Unroll &unroll,
                      const ConvSpec &spec, const RunStats &simulated,
                      Report &report)
{
    RunStats expect = staticRunStats(kind, unroll, spec);
    const std::string where =
        core::archKindName(kind) + " " + spec.label;
    bool agree = true;
    auto check = [&](const char *name, u64 stat, u64 simv) {
        if (stat == simv)
            return;
        agree = false;
        std::ostringstream os;
        os << name << ": closed form says " << stat
           << " but the cycle walk counted " << simv
           << " (one of the two derivations is buggy)";
        report.error(codes::kBoundsDiverge, where, os.str());
    };
    check("cycles", expect.cycles, simulated.cycles);
    check("nPes", expect.nPes, simulated.nPes);
    check("effectiveMacs", expect.effectiveMacs, simulated.effectiveMacs);
    check("ineffectualMacs", expect.ineffectualMacs,
          simulated.ineffectualMacs);
    check("idlePeSlots", expect.idlePeSlots, simulated.idlePeSlots);
    check("weightLoads", expect.weightLoads, simulated.weightLoads);
    check("inputLoads", expect.inputLoads, simulated.inputLoads);
    check("outputReads", expect.outputReads, simulated.outputReads);
    check("outputWrites", expect.outputWrites, simulated.outputWrites);
    return agree;
}

} // namespace verify
} // namespace ganacc
