/**
 * @file
 * Deterministic random number generation.
 *
 * All stochastic components of the simulator (synthetic data, weight
 * initialization, property-test shape sampling) draw from an Rng seeded
 * explicitly, so every experiment is exactly reproducible.
 */

#ifndef GANACC_UTIL_RANDOM_HH
#define GANACC_UTIL_RANDOM_HH

#include <cstdint>
#include <random>

namespace ganacc {
namespace util {

/** A seedable PRNG wrapper with convenience distributions. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5eedULL) : engine_(seed) {}

    /** Uniform real in [lo, hi). */
    double
    uniform(double lo = 0.0, double hi = 1.0)
    {
        std::uniform_real_distribution<double> dist(lo, hi);
        return dist(engine_);
    }

    /** Uniform float in [lo, hi). */
    float
    uniformf(float lo = 0.0f, float hi = 1.0f)
    {
        std::uniform_real_distribution<float> dist(lo, hi);
        return dist(engine_);
    }

    /** Gaussian with the given mean and standard deviation. */
    double
    gaussian(double mean = 0.0, double stddev = 1.0)
    {
        std::normal_distribution<double> dist(mean, stddev);
        return dist(engine_);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int
    uniformInt(int lo, int hi)
    {
        std::uniform_int_distribution<int> dist(lo, hi);
        return dist(engine_);
    }

    /** Bernoulli draw with probability p of true. */
    bool
    bernoulli(double p)
    {
        std::bernoulli_distribution dist(p);
        return dist(engine_);
    }

    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace util
} // namespace ganacc

#endif // GANACC_UTIL_RANDOM_HH
