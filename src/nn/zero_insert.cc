/**
 * @file
 * Zero-insertion and spatial rearrangement implementations.
 */

#include "nn/zero_insert.hh"

#include "util/logging.hh"

namespace ganacc {
namespace nn {

using tensor::Shape4;
using tensor::Tensor;

Tensor
zeroInsertSpatial(const Tensor &in, int stride, int extra)
{
    GANACC_ASSERT(stride >= 1 && extra >= 0, "bad stride/extra");
    const Shape4 &s = in.shape();
    if (stride == 1 && extra == 0)
        return in;
    Shape4 out_shape(s.d0, s.d1, (s.d2 - 1) * stride + 1 + extra,
                     (s.d3 - 1) * stride + 1 + extra);
    Tensor out(out_shape, 0.0f);
    for (int n = 0; n < s.d0; ++n)
        for (int c = 0; c < s.d1; ++c)
            for (int y = 0; y < s.d2; ++y)
                for (int x = 0; x < s.d3; ++x)
                    out.ref(n, c, y * stride, x * stride) =
                        in.get(n, c, y, x);
    return out;
}

Tensor
padSpatial(const Tensor &in, int pad)
{
    GANACC_ASSERT(pad >= 0, "pad must be >= 0");
    if (pad == 0)
        return in;
    const Shape4 &s = in.shape();
    Tensor out(Shape4(s.d0, s.d1, s.d2 + 2 * pad, s.d3 + 2 * pad), 0.0f);
    for (int n = 0; n < s.d0; ++n)
        for (int c = 0; c < s.d1; ++c)
            for (int y = 0; y < s.d2; ++y)
                for (int x = 0; x < s.d3; ++x)
                    out.ref(n, c, y + pad, x + pad) = in.get(n, c, y, x);
    return out;
}

Tensor
flipKernelSpatial(const Tensor &w)
{
    const Shape4 &s = w.shape();
    Tensor out(s);
    for (int a = 0; a < s.d0; ++a)
        for (int b = 0; b < s.d1; ++b)
            for (int y = 0; y < s.d2; ++y)
                for (int x = 0; x < s.d3; ++x)
                    out.ref(a, b, s.d2 - 1 - y, s.d3 - 1 - x) =
                        w.get(a, b, y, x);
    return out;
}

Tensor
swapLeadingAxes(const Tensor &w)
{
    const Shape4 &s = w.shape();
    Tensor out(Shape4(s.d1, s.d0, s.d2, s.d3));
    for (int a = 0; a < s.d0; ++a)
        for (int b = 0; b < s.d1; ++b)
            for (int y = 0; y < s.d2; ++y)
                for (int x = 0; x < s.d3; ++x)
                    out.ref(b, a, y, x) = w.get(a, b, y, x);
    return out;
}

double
zeroInsertZeroFraction(int h, int w, int stride)
{
    GANACC_ASSERT(h > 0 && w > 0 && stride >= 1, "bad map dims");
    double dense = double(h) * w;
    double expanded =
        double((h - 1) * stride + 1) * double((w - 1) * stride + 1);
    return 1.0 - dense / expanded;
}

} // namespace nn
} // namespace ganacc
