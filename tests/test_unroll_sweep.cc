/**
 * @file
 * Property sweep over random unrolling shapes: every architecture
 * must stay functionally correct and invariant-clean for *any*
 * unrolling, not just the Table V points — tile remainders, single-
 * channel arrays, over-wide arrays, degenerate 1x1 shapes.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/unrolling.hh"
#include "sim/conv_spec.hh"
#include "tensor/tensor.hh"
#include "util/random.hh"

namespace {

using namespace ganacc;
using core::ArchKind;
using sim::ConvSpec;
using sim::RunStats;
using sim::Unroll;
using tensor::approxEqual;
using tensor::Tensor;
using util::Rng;

/** Draw a random job of any of the three GAN patterns. */
ConvSpec
randomSpec(Rng &rng)
{
    ConvSpec s;
    s.label = "sweep";
    s.nif = rng.uniformInt(1, 4);
    s.nof = rng.uniformInt(1, 5);
    switch (rng.uniformInt(0, 2)) {
      case 0: // dense strided
        s.ih = s.iw = rng.uniformInt(5, 12);
        s.kh = s.kw = rng.uniformInt(1, std::min(4, s.ih));
        s.stride = rng.uniformInt(1, 2);
        s.pad = rng.uniformInt(0, s.kh / 2);
        s.oh = tensor::convOutDim(s.ih, s.kh, s.stride, s.pad);
        s.ow = tensor::convOutDim(s.iw, s.kw, s.stride, s.pad);
        break;
      case 1: { // stuffed
        int dense = rng.uniformInt(2, 5);
        s.inZeroStride = 2;
        s.inOrigH = s.inOrigW = dense;
        s.ih = s.iw = (dense - 1) * 2 + 1 + rng.uniformInt(0, 1);
        s.kh = s.kw = rng.uniformInt(2, 5);
        s.stride = 1;
        s.pad = rng.uniformInt(0, s.kh - 1);
        s.oh = tensor::convOutDim(s.ih, s.kh, 1, s.pad);
        s.ow = tensor::convOutDim(s.iw, s.kw, 1, s.pad);
        break;
      }
      default: { // dilated-kernel four-dim
        s.ih = s.iw = rng.uniformInt(7, 12);
        int err = rng.uniformInt(2, 4);
        s.kZeroStride = 2;
        s.kOrigH = s.kOrigW = err;
        s.kh = s.kw = (err - 1) * 2 + 1;
        s.stride = 1;
        s.pad = rng.uniformInt(0, 1);
        s.fourDimOutput = true;
        int natural = s.ih + 2 * s.pad - s.kh + 1;
        s.oh = s.ow = std::min(natural, rng.uniformInt(2, 4));
        break;
      }
    }
    return s;
}

/** Draw a random unrolling for an architecture kind. */
Unroll
randomUnroll(ArchKind kind, Rng &rng)
{
    Unroll u;
    u.pOf = rng.uniformInt(1, 6);
    switch (kind) {
      case ArchKind::NLR:
        u.pIf = rng.uniformInt(1, 6);
        break;
      case ArchKind::WST:
      case ArchKind::ZFWST:
        u.pKy = rng.uniformInt(1, 6);
        u.pKx = rng.uniformInt(1, 6);
        break;
      case ArchKind::OST:
      case ArchKind::ZFOST:
        u.pOy = rng.uniformInt(1, 6);
        u.pOx = rng.uniformInt(1, 6);
        break;
    }
    return u;
}

class UnrollSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(UnrollSweep, AnyUnrollStaysCorrectAndConservative)
{
    Rng rng(5000 + GetParam());
    ConvSpec spec = randomSpec(rng);
    Tensor in = sim::makeStreamedInput(spec, rng);
    Tensor w = sim::makeStreamedKernel(spec, rng);
    Tensor golden = sim::genericConvRef(spec, in, w);

    for (ArchKind kind : core::allArchKinds()) {
        Unroll u = randomUnroll(kind, rng);
        auto arch = core::makeArch(kind, u);
        Tensor out = sim::makeOutputTensor(spec);
        // run() asserts slot conservation and work bounds internally.
        RunStats st = arch->run(spec, &in, &w, &out);
        EXPECT_TRUE(approxEqual(golden, out, 1e-3f))
            << core::archKindName(kind) << " with " << u.str()
            << " on " << spec.describe();
        EXPECT_EQ(st.effectiveMacs, spec.effectiveMacs())
            << core::archKindName(kind) << " with " << u.str();
        EXPECT_GT(st.cycles, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Random, UnrollSweep, ::testing::Range(0, 40));

TEST(UnrollSweep, Single1x1ArrayStillCorrect)
{
    // The degenerate one-PE array: everything serial.
    Rng rng(9999);
    ConvSpec spec = randomSpec(rng);
    Tensor in = sim::makeStreamedInput(spec, rng);
    Tensor w = sim::makeStreamedKernel(spec, rng);
    Tensor golden = sim::genericConvRef(spec, in, w);
    for (ArchKind kind : core::allArchKinds()) {
        auto arch = core::makeArch(kind, Unroll{});
        EXPECT_EQ(arch->numPes(), 1) << core::archKindName(kind);
        Tensor out = sim::makeOutputTensor(spec);
        RunStats st = arch->run(spec, &in, &w, &out);
        EXPECT_TRUE(approxEqual(golden, out, 1e-3f));
        // One PE: cycles at least the effective work.
        EXPECT_GE(st.cycles, spec.effectiveMacs());
    }
}

} // namespace
