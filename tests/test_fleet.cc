/**
 * @file
 * Fleet-layer tests: consistent-hash ring placement (determinism,
 * coverage, stability under shard loss, replica-walk invariants),
 * topology JSON round-trips, the telemetry merge arithmetic pinned
 * byte-exactly, and a live in-process 3-shard TCP fleet — routed
 * responses must be bit-identical to direct simulation, fresh results
 * must replicate to RF=2 stores, a dead primary must fail over to its
 * replica, a rolling restart of every shard must lose nothing, and a
 * shedding shard must be retried with backoff by the router.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "core/unrolling.hh"
#include "fleet/ring.hh"
#include "fleet/router.hh"
#include "fleet/stats.hh"
#include "fleet/topology.hh"
#include "fleet/trace_merge.hh"
#include "gan/models.hh"
#include "obs/trace.hh"
#include "serve/daemon.hh"
#include "serve/engine.hh"
#include "serve/protocol.hh"
#include "sim/json.hh"
#include "sim/phase.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace {

using namespace ganacc;
namespace fs = std::filesystem;

std::vector<std::string>
fakeShards(int n)
{
    std::vector<std::string> out;
    for (int i = 0; i < n; ++i)
        out.push_back("10.0.0." + std::to_string(i + 1) + ":7741");
    return out;
}

TEST(FleetRing, PlacementIsDeterministicAndCoversEveryShard)
{
    const auto shards = fakeShards(3);
    const fleet::Ring a(shards, 64);
    const fleet::Ring b(shards, 64);
    EXPECT_EQ(a.points(), b.points());
    EXPECT_EQ(a.shardCount(), 3);

    std::set<int> owners;
    for (int k = 0; k < 2000; ++k)
        owners.insert(a.primary("key-" + std::to_string(k)));
    EXPECT_EQ(owners.size(), 3u)
        << "2000 keys must touch every shard of a 3-shard ring";
}

TEST(FleetRing, LosingOneShardOnlyRemapsItsOwnKeys)
{
    const auto three = fakeShards(3);
    const std::vector<std::string> two(three.begin(),
                                       three.begin() + 2);
    const fleet::Ring before(three, 64);
    const fleet::Ring after(two, 64);

    int remapped = 0, kept = 0;
    for (int k = 0; k < 2000; ++k) {
        const std::string key = "key-" + std::to_string(k);
        const int p = before.primary(key);
        if (p == 2) {
            ++remapped; // the lost shard's keys move somewhere
            continue;
        }
        EXPECT_EQ(after.primary(key), p)
            << "a surviving shard's key must not move: " << key;
        ++kept;
    }
    EXPECT_GT(remapped, 0);
    EXPECT_GT(kept, 0);
}

TEST(FleetRing, ReplicaWalkIsDistinctPrimaryFirstAndClamped)
{
    const fleet::Ring ring(fakeShards(3), 64);
    for (int k = 0; k < 200; ++k) {
        const std::string key = "key-" + std::to_string(k);
        const std::vector<int> two = ring.replicas(key, 2);
        ASSERT_EQ(two.size(), 2u);
        EXPECT_EQ(two[0], ring.primary(key));
        EXPECT_NE(two[0], two[1]);
        const std::vector<int> clamped = ring.replicas(key, 10);
        ASSERT_EQ(clamped.size(), 3u) << "rf clamps to fleet size";
        EXPECT_EQ(std::set<int>(clamped.begin(), clamped.end()).size(),
                  3u);
        EXPECT_EQ(clamped[0], two[0]);
        EXPECT_EQ(clamped[1], two[1])
            << "the rf=2 walk must be a prefix of the rf=3 walk";
    }
}

TEST(FleetTopology, JsonRoundTripsAndShardListParses)
{
    fleet::Topology t;
    t.shards = {"127.0.0.1:7741", "127.0.0.1:7742"};
    t.vnodes = 32;
    t.rf = 2;
    t.self = 1;
    const fleet::Topology back =
        fleet::topologyFromJson(fleet::toJson(t));
    EXPECT_EQ(back.shards, t.shards);
    EXPECT_EQ(back.vnodes, t.vnodes);
    EXPECT_EQ(back.rf, t.rf);
    EXPECT_EQ(back.self, t.self);
    EXPECT_EQ(fleet::toJson(back), fleet::toJson(t));

    const fleet::Topology csv =
        fleet::parseShardList("a:1,b:2,c:3");
    EXPECT_EQ(csv.shards,
              (std::vector<std::string>{"a:1", "b:2", "c:3"}));
    EXPECT_EQ(csv.vnodes, 64);
    EXPECT_EQ(csv.rf, 2);
    EXPECT_EQ(csv.self, -1);
}

/** Satellite: the merge is pure integer arithmetic — pin it. */
TEST(FleetStats, MergeArithmeticIsPinnedByteExact)
{
    const std::string a =
        "{\"counters\":{\"x\":2,\"y\":3},\"gauges\":{\"g\":1},"
        "\"histograms\":{\"h\":{\"count\":2,\"sum\":10,"
        "\"buckets\":[1,1]}}}";
    const std::string b =
        "{\"counters\":{\"x\":5},\"gauges\":{\"g\":4},"
        "\"histograms\":{\"h\":{\"count\":1,\"sum\":7,"
        "\"buckets\":[0,1]}}}";
    EXPECT_EQ(fleet::mergeTelemetry({a, b}),
              "{\"counters\":{\"x\":7,\"y\":3},\"gauges\":{\"g\":5},"
              "\"histograms\":{\"h\":{\"count\":3,\"sum\":17,"
              "\"buckets\":[1,2]}}}");
    // Unreachable shards (empty snapshots) contribute nothing.
    EXPECT_EQ(fleet::mergeTelemetry({a, "", a}),
              fleet::mergeTelemetry({a, a}));
    // Mismatched bucket layouts are a config error, not a zero.
    const std::string shortBuckets =
        "{\"counters\":{},\"gauges\":{},\"histograms\":"
        "{\"h\":{\"count\":1,\"sum\":1,\"buckets\":[1]}}}";
    EXPECT_THROW(fleet::mergeTelemetry({a, shortBuckets}),
                 util::FatalError);
}

/** Satellite: the merged latency summary is exact integer arithmetic
 *  over the aggregate power-of-two histogram — pin the whole report. */
TEST(FleetStats, LatencyQuantilesArePinnedByteExact)
{
    // 4-bucket layout (le 1, 2, 4, +Inf) keeps the fixture readable;
    // the quantile walk only depends on the shared bucket bounds.
    const std::string a =
        "{\"counters\":{},\"gauges\":{},\"histograms\":"
        "{\"ganacc_serve_latency_us\":{\"count\":3,\"sum\":30,"
        "\"buckets\":[1,1,1,0]}}}";
    const std::string b =
        "{\"counters\":{},\"gauges\":{},\"histograms\":"
        "{\"ganacc_serve_latency_us\":{\"count\":1,\"sum\":70,"
        "\"buckets\":[0,0,0,1]}}}";
    // Merged: count 4, sum 100, buckets [1,1,1,1]. p50 lands on le=2
    // (cumulative 2 of 4); p99 needs the +Inf bucket.
    EXPECT_EQ(
        fleet::fleetStatsReport({{"h1:1", a}, {"h2:2", b}}),
        "{\"fleet\":{\"shards\":2,\"reachable\":2},"
        "\"latency\":{\"count\":4,\"sumUs\":100,\"p50Le\":\"2\","
        "\"p99Le\":\"+Inf\"},"
        "\"perShard\":[{\"shard\":0,\"address\":\"h1:1\","
        "\"telemetry\":" +
            a +
            "},{\"shard\":1,\"address\":\"h2:2\",\"telemetry\":" + b +
            "}],"
            "\"aggregate\":{\"counters\":{},\"gauges\":{},"
            "\"histograms\":{\"ganacc_serve_latency_us\":"
            "{\"count\":4,\"sum\":100,\"buckets\":[1,1,1,1]}}}}");

    // No latency histogram anywhere: the summary stays, zeroed.
    const std::string bare =
        "{\"counters\":{\"x\":1},\"gauges\":{},\"histograms\":{}}";
    const auto doc =
        util::json::parse(fleet::fleetStatsReport({{"h1:1", bare}}));
    const auto &lat = doc.asObject().at("latency").asObject();
    EXPECT_EQ(lat.at("count").asUint64(), 0u);
    EXPECT_EQ(lat.at("sumUs").asUint64(), 0u);
    EXPECT_EQ(lat.at("p50Le").asString(), "0");
    EXPECT_EQ(lat.at("p99Le").asString(), "0");
}

TEST(FleetStats, ReportCountsReachableAndKeepsShardRows)
{
    const std::string t =
        "{\"counters\":{\"x\":1},\"gauges\":{},\"histograms\":{}}";
    const std::string report = fleet::fleetStatsReport(
        {{"h1:1", t}, {"h2:2", ""}, {"h3:3", t}});
    const auto doc = util::json::parse(report);
    const auto &root = doc.asObject();
    EXPECT_EQ(root.at("fleet").asObject().at("shards").asUint64(),
              3u);
    EXPECT_EQ(root.at("fleet").asObject().at("reachable").asUint64(),
              2u);
    const auto &rows = root.at("perShard").asArray();
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[1].asObject().at("address").asString(), "h2:2");
    EXPECT_TRUE(rows[1].asObject().at("telemetry").isNull());
    EXPECT_EQ(root.at("aggregate")
                  .asObject()
                  .at("counters")
                  .asObject()
                  .at("x")
                  .asUint64(),
              2u);
}

/** An in-process TCP fleet for the live tests: each shard owns its
 *  cache and store, restarts rebind the same address. The caller must
 *  disconnect the router from a shard before stopping it (an open
 *  idle connection holds the listener's drain). */
class TestFleet
{
  public:
    TestFleet(int n, std::string root, std::size_t maxQueue = 256,
              bool shed = false)
        : root_(std::move(root)), maxQueue_(maxQueue), shed_(shed)
    {
        fs::remove_all(root_);
        fs::create_directories(root_);
        shards_.resize(std::size_t(n));
        for (int i = 0; i < n; ++i)
            startShard(i, "127.0.0.1:0");
    }

    ~TestFleet()
    {
        for (std::size_t i = 0; i < shards_.size(); ++i)
            if (shards_[i]->thread.joinable())
                stopShard(int(i));
    }

    void
    startShard(int i, const std::string &addr)
    {
        auto sh = std::make_unique<Shard>();
        sh->store = root_ + "/store" + std::to_string(i);
        serve::EngineOptions eo;
        eo.jobs = 2;
        eo.maxQueue = maxQueue_;
        eo.cacheDir = sh->store;
        eo.deterministic = true;
        eo.ownCache = true;
        eo.shedOverload = shed_;
        sh->engine = std::make_unique<serve::Engine>(eo);
        const int listener = serve::listenTcp(addr, &sh->bound);
        Shard *raw = sh.get();
        sh->thread = std::thread([raw, listener] {
            serve::serveListener(listener, *raw->engine, raw->stop);
        });
        shards_[std::size_t(i)] = std::move(sh);
    }

    void
    stopShard(int i)
    {
        Shard &sh = *shards_[std::size_t(i)];
        sh.stop.store(true);
        sh.thread.join();
        sh.engine.reset();
    }

    std::vector<std::string>
    addresses() const
    {
        std::vector<std::string> out;
        for (const auto &sh : shards_)
            out.push_back(sh->bound);
        return out;
    }

    const std::string &
    storeOf(int i) const
    {
        return shards_[std::size_t(i)]->store;
    }

  private:
    struct Shard
    {
        std::string store;
        std::string bound;
        std::unique_ptr<serve::Engine> engine;
        std::thread thread;
        std::atomic<bool> stop{false};
    };

    std::string root_;
    std::size_t maxQueue_;
    bool shed_;
    std::vector<std::unique_ptr<Shard>> shards_;
};

std::string
scratchRoot(const char *tag)
{
    return (fs::temp_directory_path() /
            ("ganacc-fleet-test-" + std::to_string(::getpid()) + "-" +
             tag))
        .string();
}

/** The mnist-gan D jobs as spec requests across two arch kinds — a
 *  real workload whose keys spread over the ring. Deduplicated by
 *  content key so every request has its own cache entry (repeated
 *  layer shapes would pipeline into single-flight "dup" followers
 *  and muddy tier assertions). */
std::vector<serve::Request>
sampleWorkload()
{
    std::vector<serve::Request> reqs;
    std::set<std::string> seen;
    const gan::GanModel model = gan::makeMnistGan();
    std::uint64_t id = 1;
    for (core::ArchKind kind :
         {core::ArchKind::NLR, core::ArchKind::ZFOST}) {
        const sim::Unroll u = core::paperUnroll(
            kind, core::BankRole::ST, sim::PhaseFamily::D, 1200);
        for (const auto &job :
             sim::familyJobs(model, sim::PhaseFamily::D)) {
            if (!seen.insert(serve::contentKey(kind, u, job)).second)
                continue;
            serve::Request req;
            req.id = id++;
            req.kind = kind;
            req.unroll = u;
            req.hasSpec = true;
            req.spec = job;
            reqs.push_back(req);
        }
    }
    return reqs;
}

std::string
entryFile(const std::string &store, const std::string &key)
{
    return store + "/" + key.substr(0, 2) + "/" + key + ".json";
}

TEST(FleetLive, ThreeShardsServeBitIdenticalAndReplicateRfTwo)
{
    TestFleet shards(3, scratchRoot("identity"));
    fleet::RouterOptions ropt;
    ropt.topology.shards = shards.addresses();
    fleet::Router router(std::move(ropt));

    const auto reqs = sampleWorkload();
    std::vector<std::string> lines;
    for (const auto &req : reqs)
        lines.push_back(serve::encodeRequest(req));

    const auto cold = router.transactLines(lines);
    ASSERT_EQ(cold.size(), reqs.size());
    std::set<int> servingShards;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        const serve::Response rsp = serve::decodeResponse(cold[i]);
        ASSERT_TRUE(rsp.ok) << rsp.error;
        EXPECT_EQ(rsp.id, reqs[i].id);
        const sim::RunStats direct =
            core::makeArch(reqs[i].kind, reqs[i].unroll)
                ->run(reqs[i].spec);
        EXPECT_EQ(sim::toJson(rsp.stats), sim::toJson(direct))
            << "fleet-served stats diverged from direct simulation";
        const std::string key = serve::contentKey(
            reqs[i].kind, reqs[i].unroll, reqs[i].spec);
        servingShards.insert(router.ring().primary(key));
        // RF=2: after the synchronous replication pass, both replica
        // stores hold the entry on disk.
        for (int r : router.ring().replicas(key, 2))
            EXPECT_TRUE(
                fs::exists(entryFile(shards.storeOf(r), key)))
                << "replica " << r << " missing " << key;
    }
    EXPECT_GT(servingShards.size(), 1u)
        << "the workload must actually spread over the ring";
    EXPECT_GT(router.counters().puts, 0u);
    EXPECT_EQ(router.counters().failovers, 0u);

    // Warm pass: byte-identical modulo the serving tier.
    const auto warm = router.transactLines(lines);
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        const serve::Response rsp = serve::decodeResponse(warm[i]);
        ASSERT_TRUE(rsp.ok);
        EXPECT_EQ(rsp.cache, "mem");
    }
}

TEST(FleetLive, DeadPrimaryFailsOverToTheWarmReplica)
{
    TestFleet shards(3, scratchRoot("failover"));
    fleet::RouterOptions ropt;
    ropt.topology.shards = shards.addresses();
    fleet::Router router(std::move(ropt));

    const auto reqs = sampleWorkload();
    std::vector<std::string> lines;
    for (const auto &req : reqs)
        lines.push_back(serve::encodeRequest(req));
    for (const std::string &line : router.transactLines(lines))
        ASSERT_TRUE(serve::decodeResponse(line).ok);

    // Kill the primary of the first request's key.
    const std::string key = serve::contentKey(
        reqs[0].kind, reqs[0].unroll, reqs[0].spec);
    const int primary = router.ring().primary(key);
    router.disconnect(primary);
    shards.stopShard(primary);

    const auto again = router.transactLines(lines);
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        const serve::Response rsp = serve::decodeResponse(again[i]);
        ASSERT_TRUE(rsp.ok)
            << "request " << i << " lost to a single shard death: "
            << rsp.error;
        const sim::RunStats direct =
            core::makeArch(reqs[i].kind, reqs[i].unroll)
                ->run(reqs[i].spec);
        EXPECT_EQ(sim::toJson(rsp.stats), sim::toJson(direct));
    }
    EXPECT_GT(router.counters().failovers, 0u);
}

TEST(FleetLive, RollingRestartOfEveryShardLosesNothing)
{
    TestFleet shards(3, scratchRoot("rolling"));
    std::vector<std::string> addrs = shards.addresses();
    fleet::RouterOptions ropt;
    ropt.topology.shards = addrs;
    fleet::Router router(std::move(ropt));

    const auto reqs = sampleWorkload();
    std::vector<std::string> lines;
    for (const auto &req : reqs)
        lines.push_back(serve::encodeRequest(req));

    for (int k = 0; k < 3; ++k) {
        for (const std::string &line : router.transactLines(lines))
            ASSERT_TRUE(serve::decodeResponse(line).ok);
        // Roll shard k: disconnect (the drain contract), stop, rebind
        // the same address so the ring placement never moves.
        router.disconnect(k);
        shards.stopShard(k);
        shards.startShard(k, addrs[std::size_t(k)]);
    }
    const auto final_pass = router.transactLines(lines);
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        const serve::Response rsp =
            serve::decodeResponse(final_pass[i]);
        ASSERT_TRUE(rsp.ok) << rsp.error;
        const sim::RunStats direct =
            core::makeArch(reqs[i].kind, reqs[i].unroll)
                ->run(reqs[i].spec);
        EXPECT_EQ(sim::toJson(rsp.stats), sim::toJson(direct));
    }
}

/** A shard whose admission queue never empties: every request line is
 *  answered with the pinned overloaded error. Speaking the real wire
 *  protocol from a scripted server makes the router's retry/backoff
 *  path fully deterministic — a live engine only sheds under racy
 *  queue pressure. */
class SheddingDaemon
{
  public:
    SheddingDaemon()
    {
        const int listener = serve::listenTcp("127.0.0.1:0", &bound_);
        thread_ = std::thread([this, listener] { serve(listener); });
    }

    ~SheddingDaemon() { thread_.join(); } ///< joins on client EOF

    const std::string &address() const { return bound_; }

  private:
    void
    serve(int listener)
    {
        const int fd = ::accept(listener, nullptr, nullptr);
        ::close(listener);
        if (fd < 0)
            return;
        std::string buf;
        char chunk[4096];
        ssize_t n;
        while ((n = ::read(fd, chunk, sizeof chunk)) > 0) {
            buf.append(chunk, std::size_t(n));
            std::size_t pos;
            while ((pos = buf.find('\n')) != std::string::npos) {
                const std::string line = buf.substr(0, pos);
                buf.erase(0, pos + 1);
                std::uint64_t id = 0;
                try {
                    id = serve::decodeRequest(line).id;
                } catch (const util::FatalError &) {
                }
                const std::string rsp =
                    serve::encodeResponse(serve::errorResponse(
                        id, serve::kOverloadedError)) +
                    "\n";
                std::size_t off = 0;
                while (off < rsp.size()) {
                    const ssize_t w = ::write(fd, rsp.data() + off,
                                              rsp.size() - off);
                    if (w <= 0)
                        break;
                    off += std::size_t(w);
                }
            }
        }
        ::close(fd);
    }

    std::string bound_;
    std::thread thread_;
};

TEST(FleetLive, ShedShardIsRetriedWithBackoffUntilTheBudgetEnds)
{
    SheddingDaemon shard;
    fleet::RouterOptions ropt;
    ropt.topology.shards = {shard.address()};
    ropt.topology.rf = 1;
    ropt.overloadRetries = 3;
    ropt.overloadBackoffMs = 1;
    {
        fleet::Router router(std::move(ropt));
        const auto reqs = sampleWorkload();
        const auto out =
            router.transactLines({serve::encodeRequest(reqs[0])});
        ASSERT_EQ(out.size(), 1u);
        const serve::Response rsp = serve::decodeResponse(out[0]);
        EXPECT_FALSE(rsp.ok);
        EXPECT_EQ(rsp.error, serve::kOverloadedError)
            << "past the retry budget the shed response is the answer";
        EXPECT_EQ(router.counters().overloadRetries, 3u);
    } // the router hangs up; the daemon thread exits on EOF
}

TEST(FleetLive, RecoveredQueuePressureEndsInAllOkResponses)
{
    // A real tiny queue (1 deep, 1 worker): sheds may or may not
    // happen depending on scheduling, but with retry the batch must
    // finish fully answered either way.
    TestFleet shards(2, scratchRoot("pressure"), /*maxQueue=*/1,
                     /*shed=*/true);
    fleet::RouterOptions ropt;
    ropt.topology.shards = shards.addresses();
    fleet::Router router(std::move(ropt));

    const auto reqs = sampleWorkload();
    std::vector<std::string> lines;
    for (const auto &req : reqs)
        lines.push_back(serve::encodeRequest(req));
    const auto out = router.transactLines(lines);
    ASSERT_EQ(out.size(), lines.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
        const serve::Response rsp = serve::decodeResponse(out[i]);
        EXPECT_TRUE(rsp.ok)
            << "line " << i << " ended overloaded: " << rsp.error;
    }
}

TEST(FleetLive, BootstrapLearnsTheTopologyFromOneShard)
{
    TestFleet shards(2, scratchRoot("bootstrap"));
    // Re-create shard 0 with the fleet topology configured, as
    // ganacc-served --fleet would be.
    fleet::Topology topo;
    topo.shards = shards.addresses();
    topo.rf = 2;
    topo.self = 0;

    serve::EngineOptions eo;
    eo.jobs = 1;
    eo.deterministic = true;
    eo.ownCache = true;
    eo.fleetJson = fleet::toJson(topo);
    serve::Engine engine(eo);
    std::string bound;
    const int listener = serve::listenTcp("127.0.0.1:0", &bound);
    std::atomic<bool> stop{false};
    std::thread daemon([&] {
        serve::serveListener(listener, engine, stop);
    });

    const fleet::Topology learned = fleet::Router::bootstrap(bound);
    EXPECT_EQ(learned.shards, topo.shards);
    EXPECT_EQ(learned.rf, topo.rf);
    EXPECT_EQ(learned.vnodes, topo.vnodes);
    EXPECT_EQ(learned.self, 0);

    stop.store(true);
    daemon.join();
}

TEST(FleetTrace, MergedTraceAssignsPidsAndKeepsParentage)
{
    // A router root span and one child span per "shard", parented via
    // the args identity the merge must carry through verbatim.
    obs::TraceContext ctx;
    ctx.traceHi = 0x11;
    ctx.traceLo = 0x22;
    ctx.span = 0xA0;

    std::vector<obs::TraceEvent> local(1);
    local[0].name = "fleet.request";
    local[0].cat = "fleet";
    local[0].ts = 1;
    local[0].dur = 100;
    local[0].args = obs::spanArgs(ctx, ctx.span, 0);

    std::vector<obs::TraceEvent> shardEv(1);
    shardEv[0].name = "serve.request";
    shardEv[0].cat = "serve";
    shardEv[0].ts = 10;
    shardEv[0].dur = 50;
    shardEv[0].args = obs::spanArgs(ctx, 0xB0, ctx.span);

    const std::string merged = fleet::mergeTraces(
        {{"127.0.0.1:7741", serve::encodeSpanBatch(shardEv)},
         {"127.0.0.1:7742", ""}}, // unreachable: label only
        local);

    const auto doc = util::json::parse(merged);
    const auto &events = doc.asObject().at("traceEvents").asArray();
    // 3 process_name labels + 1 local + 1 shard span.
    ASSERT_EQ(events.size(), 5u);
    std::uint64_t rootSpanSeen = 0;
    bool sawShardLabel = false, sawChild = false;
    for (const auto &evv : events) {
        const auto &ev = evv.asObject();
        const std::string name = ev.at("name").asString();
        if (name == "process_name") {
            if (ev.at("args").asObject().at("name").asString() ==
                "shard0 (127.0.0.1:7741)")
                sawShardLabel = ev.at("pid").asUint64() == 1u;
            continue;
        }
        const auto &args = ev.at("args").asObject();
        EXPECT_EQ(args.at("trace").asString(),
                  ctx.traceIdHex());
        if (name == "fleet.request") {
            EXPECT_EQ(ev.at("pid").asUint64(), 0u);
            EXPECT_FALSE(args.contains("parent")) << "root has no parent";
            rootSpanSeen = 1;
        } else if (name == "serve.request") {
            EXPECT_EQ(ev.at("pid").asUint64(), 1u);
            // The cross-process edge: the shard span still names the
            // router's root span after the merge.
            EXPECT_EQ(args.at("parent").asString(),
                      ctx.spanIdHex());
            sawChild = true;
        }
    }
    EXPECT_EQ(rootSpanSeen, 1u);
    EXPECT_TRUE(sawShardLabel);
    EXPECT_TRUE(sawChild);
}

TEST(FleetLive, ScrapeAndTraceDrainReachEveryShard)
{
    TestFleet shards(2, scratchRoot("scrape"));
    fleet::RouterOptions ropt;
    ropt.topology.shards = shards.addresses();
    fleet::Router router(std::move(ropt));

    const auto scraped = router.scrapeAll();
    ASSERT_EQ(scraped.size(), 2u);
    for (std::size_t s = 0; s < scraped.size(); ++s) {
        EXPECT_EQ(scraped[s].first, shards.addresses()[s]);
        EXPECT_NE(scraped[s].second.find("# TYPE"),
                  std::string::npos)
            << "shard " << s << " returned no Prometheus text";
    }

    // Drains answer even with tracing off: the pinned empty batch.
    const auto drainedOff = router.drainTracesAll();
    ASSERT_EQ(drainedOff.size(), 2u);
    for (const auto &[addr, batch] : drainedOff) {
        (void)addr;
        EXPECT_TRUE(serve::decodeSpanBatch(batch).empty());
    }

    // Armed, a traced workload leaves spans behind to drain. (The
    // in-process fleet shares one TraceSink, so per-shard attribution
    // is meaningless here — the 3-process CI smoke covers that; this
    // pins the probe plumbing end to end.)
    obs::TraceSink &sink = obs::TraceSink::instance();
    sink.enable("");
    sink.setSampling(1.0, 0);
    const auto reqs = sampleWorkload();
    std::vector<std::string> lines;
    for (const auto &req : reqs)
        lines.push_back(serve::encodeRequest(req));
    for (const std::string &line : router.transactLines(lines))
        ASSERT_TRUE(serve::decodeResponse(line).ok);

    std::size_t total = 0;
    bool sawServeSpan = false, sawRootSpan = false;
    for (const auto &[addr, batch] : router.drainTracesAll()) {
        (void)addr;
        for (const obs::TraceEvent &ev :
             serve::decodeSpanBatch(batch)) {
            ++total;
            if (ev.name == "serve.request")
                sawServeSpan = true;
            if (ev.name == "fleet.request")
                sawRootSpan = true;
        }
    }
    sink.disable();
    sink.drain();
    EXPECT_GT(total, 0u);
    EXPECT_TRUE(sawServeSpan);
    EXPECT_TRUE(sawRootSpan);
}

TEST(FleetLive, TracingIsInvisibleInResponseBytes)
{
    TestFleet shards(2, scratchRoot("parity"));
    fleet::RouterOptions ropt;
    ropt.topology.shards = shards.addresses();
    fleet::Router router(std::move(ropt));

    const auto reqs = sampleWorkload();
    std::vector<std::string> lines;
    for (const auto &req : reqs)
        lines.push_back(serve::encodeRequest(req));

    // Warm the caches, then compare a warm untraced pass against a
    // warm traced pass: telemetry must never leak into responses.
    for (const std::string &line : router.transactLines(lines))
        ASSERT_TRUE(serve::decodeResponse(line).ok);
    const auto untraced = router.transactLines(lines);

    obs::TraceSink &sink = obs::TraceSink::instance();
    sink.enable("");
    sink.setSampling(1.0, 0);
    const auto traced = router.transactLines(lines);
    sink.disable();
    sink.drain();

    ASSERT_EQ(traced.size(), untraced.size());
    for (std::size_t i = 0; i < traced.size(); ++i)
        EXPECT_EQ(traced[i], untraced[i])
            << "line " << i << " changed under tracing";
}

} // namespace
