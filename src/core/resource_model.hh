/**
 * @file
 * First-order FPGA resource model calibrated against the paper's
 * synthesis report (Table III) on the Xilinx UltraScale+ XCVU9P.
 *
 * The paper built Verilog; we substitute an analytic cost model so
 * design-space sweeps can reject infeasible points. Calibration: one
 * DSP slice per 16-bit MAC PE plus a fixed control margin, linear
 * LUT/FF cost per PE fitted to Table III's 1680-PE design, and Block
 * RAM from the Fig. 14 buffer plan.
 */

#ifndef GANACC_CORE_RESOURCE_MODEL_HH
#define GANACC_CORE_RESOURCE_MODEL_HH

#include <cstdint>

#include "mem/onchip_buffer.hh"

namespace ganacc {
namespace core {

/** Resource vector of a design or a device. */
struct FpgaResources
{
    std::uint64_t luts = 0;
    std::uint64_t flipFlops = 0;
    int bram36 = 0;
    int dsp = 0;
};

/** The XCVU9P totals from Table III's "total resource on board". */
FpgaResources vcu9pBudget();

/**
 * Estimate the design's resources.
 *
 * @param total_pes ST-bank + W-bank PEs.
 * @param plan      the Fig. 14 buffer plan.
 */
FpgaResources estimateResources(int total_pes,
                                const mem::BufferPlan &plan);

/** True when every component of `need` fits within `budget`. */
bool fits(const FpgaResources &need, const FpgaResources &budget);

/** Utilization fraction of the scarcest resource. */
double worstUtilization(const FpgaResources &need,
                        const FpgaResources &budget);

} // namespace core
} // namespace ganacc

#endif // GANACC_CORE_RESOURCE_MODEL_HH
