/**
 * @file
 * The request-execution engine behind the daemon.
 *
 * Separating execution from transport means the Unix-socket daemon,
 * the CI pipe mode, the throughput bench and the bit-identity tests
 * all drive the *same* object. The engine owns:
 *
 *  - a util::ThreadPool of workers executing requests,
 *  - a bounded admission queue: submit() blocks once `maxQueue`
 *    requests are in flight, which is the backpressure that keeps a
 *    fast client from ballooning daemon memory,
 *  - single-flight dedupe: identical requests (same content key)
 *    that arrive while the first is still simulating share one
 *    execution — followers wait on the leader's result and are
 *    reported with cache status "dup",
 *  - the lookup chain: CycleCache memory tier, then the optional
 *    persistent ResultStore tier, then the cycle walk (write-through
 *    both tiers),
 *  - drain(): stop admitting, finish everything in flight — the
 *    SIGTERM path.
 *
 * Determinism: the executed RunStats are a pure function of the
 * request, so responses are bit-identical to direct in-process
 * simulation no matter which tier serves them or how requests
 * interleave (asserted by tests/test_serve_service.cc).
 */

#ifndef GANACC_SERVE_ENGINE_HH
#define GANACC_SERVE_ENGINE_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/metrics.hh"
#include "serve/protocol.hh"
#include "serve/result_store.hh"
#include "util/thread_pool.hh"

namespace ganacc {
namespace serve {

/** Engine configuration. */
struct EngineOptions
{
    int jobs = 0; ///< worker threads (0 = GANACC_JOBS / hardware)
    std::size_t maxQueue = 256; ///< admission bound (backpressure)
    std::string cacheDir;       ///< persistent tier; "" = memory only
    /// Golden mode: report latencyUs as 0 so responses byte-compare.
    bool deterministic = false;

    /// Own the memory tier (a private core::CycleCache + ResultStore)
    /// instead of sharing the process singleton. Fleet shards hosted
    /// in one process (tests, the conformance harness, the bench)
    /// need this so each shard has its own tiers; a standalone
    /// ganacc-served keeps the singleton so sweeps and the daemon
    /// share warm entries.
    bool ownCache = false;

    /// Admission policy at a full queue: false = block the submitter
    /// (historical backpressure), true = shed with an immediate
    /// ok:false kOverloadedError response that the fleet router
    /// retries with backoff. Shards run with shedding so one slow
    /// client cannot wedge its peers' replication writes.
    bool shedOverload = false;

    /// Shard map answered to {"fleet":true} probes, as canonical JSON
    /// object text (see fleet/topology.hh). Empty = not part of a
    /// fleet; the probe then answers ok:false.
    std::string fleetJson;
};

/** Aggregate service counters. */
struct EngineCounters
{
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;
    std::uint64_t memHits = 0;
    std::uint64_t diskHits = 0;
    std::uint64_t simulated = 0;
    std::uint64_t deduped = 0;    ///< single-flight followers
    std::uint64_t puts = 0;       ///< replication writes acknowledged
    std::uint64_t overloaded = 0; ///< requests shed at admission
};

/** The long-lived execution core of the simulation service. */
class Engine
{
  public:
    explicit Engine(const EngineOptions &opts);
    ~Engine();

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /**
     * Enqueue one request; the future resolves to its response.
     * Blocks while `maxQueue` requests are already in flight; throws
     * util::FatalError after drain() began.
     */
    std::future<Response> submit(const Request &req);

    /** Synchronous convenience: submit and wait. */
    Response handle(const Request &req);

    /** Stop admitting and wait for every in-flight request. */
    void drain();

    EngineCounters counters() const;

    /** One-line load/cache summary for logs and bench output. */
    std::string summary() const;

    ResultStore *store() const
    {
        return ownStore_ ? ownStore_.get() : cache_.store();
    }

    /** Drop every memory-tier entry of the cache this engine uses
     *  (the private one under ownCache, the singleton otherwise). */
    void clearMemoryCache();

    /**
     * The metric-registry snapshot as canonical JSON object text —
     * the payload of a stats-probe response:
     * {"counters":{...},"gauges":{...},"histograms":{...}}.
     */
    static std::string telemetryJson();

  private:
    Response execute(const Request &req, std::uint64_t admitUs);
    Response executeSpec(const Request &req);
    Response executePut(const Request &req);
    Response statsResponse(std::uint64_t id) const;
    Response fleetResponse(std::uint64_t id) const;
    Response metricsResponse(std::uint64_t id) const;
    Response traceDrainResponse(std::uint64_t id) const;
    core::CycleCache &liveCache();

    EngineOptions opts_;
    ScopedDiskCache cache_;
    /// ownCache mode only: this engine's private tiers.
    std::unique_ptr<ResultStore> ownStore_;
    std::unique_ptr<core::CycleCache> ownCache_;
    std::unique_ptr<util::ThreadPool> pool_;

    mutable std::mutex m_;
    std::condition_variable queueCv_; ///< wakes blocked submitters
    std::size_t inFlight_ = 0;
    bool draining_ = false;
    /// content key -> leader's shared result (single-flight).
    std::map<std::string, std::shared_future<Response>> inflightByKey_;

    mutable std::mutex counters_m_;
    EngineCounters counters_;

    /// Always-on registry mirrors of the counters above (plus the
    /// latency histogram and in-flight gauge): one relaxed atomic
    /// each, resolved once here so the hot path never does a
    /// name lookup.
    obs::Counter &mRequests_;
    obs::Counter &mErrors_;
    obs::Counter &mMemHits_;
    obs::Counter &mDiskHits_;
    obs::Counter &mSimulated_;
    obs::Counter &mDeduped_;
    obs::Counter &mStatsProbes_;
    obs::Counter &mFleetProbes_;
    obs::Counter &mMetricsProbes_;
    obs::Counter &mTraceDrains_;
    obs::Counter &mPuts_;
    obs::Counter &mOverloaded_;
    obs::Gauge &mInFlight_;
    obs::Histogram &mLatencyUs_;
};

} // namespace serve
} // namespace ganacc

#endif // GANACC_SERVE_ENGINE_HH
