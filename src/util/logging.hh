/**
 * @file
 * Status and error reporting helpers.
 *
 * Follows the gem5 convention: fatal() reports unrecoverable *user*
 * errors (bad configuration, invalid arguments) and exits cleanly;
 * panic() reports *internal* invariant violations (simulator bugs) and
 * aborts; warn()/inform() print status without stopping.
 */

#ifndef GANACC_UTIL_LOGGING_HH
#define GANACC_UTIL_LOGGING_HH

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace ganacc {
namespace util {

/** Exception carrying a fatal (user-caused) error message. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg) {}
};

/** Exception carrying a panic (internal-bug) error message. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg) {}
};

namespace detail {

inline void
appendAll(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
appendAll(std::ostringstream &os, const T &head, const Rest &...rest)
{
    os << head;
    appendAll(os, rest...);
}

template <typename... Args>
std::string
format(const Args &...args)
{
    std::ostringstream os;
    appendAll(os, args...);
    return os.str();
}

/** The mutable stream slot behind inform(). */
inline std::ostream *&
informSlot()
{
    static std::ostream *s = &std::cerr;
    return s;
}

/** The mutable stream slot behind warn(). */
inline std::ostream *&
warnSlot()
{
    static std::ostream *s = &std::cerr;
    return s;
}

} // namespace detail

/**
 * Redirect inform() (default: stderr, so status lines never pollute
 * the machine-readable stdout of the tools and benches). Returns the
 * previous stream so scoped redirections can restore it.
 */
inline std::ostream &
setInformStream(std::ostream &os)
{
    std::ostream &prev = *detail::informSlot();
    detail::informSlot() = &os;
    return prev;
}

/** Redirect warn() (default: stderr). Returns the previous stream. */
inline std::ostream &
setWarnStream(std::ostream &os)
{
    std::ostream &prev = *detail::warnSlot();
    detail::warnSlot() = &os;
    return prev;
}

/**
 * Report an unrecoverable user/configuration error.
 *
 * Throws FatalError so library consumers (and tests) can catch it;
 * an uncaught FatalError terminates with a clean message.
 */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    throw FatalError(detail::format("fatal: ", args...));
}

/**
 * Report an internal invariant violation (a bug in ganacc itself).
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    throw PanicError(detail::format("panic: ", args...));
}

/** Print a warning (to the configurable warn stream, default
 *  stderr); simulation continues. */
template <typename... Args>
void
warn(const Args &...args)
{
    *detail::warnSlot() << "warn: " << detail::format(args...) << "\n";
}

/**
 * Print an informational status message to the configurable inform
 * stream — stderr by default, so tools whose stdout is a
 * machine-readable JSON stream (ganacc-served, ganacc-client) can
 * inform() freely.
 */
template <typename... Args>
void
inform(const Args &...args)
{
    *detail::informSlot() << "info: " << detail::format(args...)
                          << "\n";
}

/**
 * Assert an internal invariant; panics with the given message when the
 * condition does not hold. Always enabled (not compiled out) because
 * the simulator's correctness claims depend on these checks.
 */
#define GANACC_ASSERT(cond, ...)                                           \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::ganacc::util::panic("assertion '", #cond, "' failed at ",    \
                                  __FILE__, ":", __LINE__, ": ",           \
                                  ##__VA_ARGS__);                          \
        }                                                                  \
    } while (0)

} // namespace util
} // namespace ganacc

#endif // GANACC_UTIL_LOGGING_HH
