/**
 * @file
 * Chrome-trace writer and span-sink implementation.
 */

#include "obs/trace.hh"

#include <cstdlib>
#include <fstream>

#include "util/logging.hh"
#include "util/strings.hh"

namespace ganacc {
namespace obs {

void
writeChromeTraceJson(
    std::ostream &os, const std::vector<TraceEvent> &events,
    const std::vector<std::pair<std::string, std::string>> &metadata,
    const std::string &displayTimeUnit)
{
    os << "{\"traceEvents\":[\n";
    bool first = true;
    for (const TraceEvent &e : events) {
        if (!first)
            os << ",\n";
        first = false;
        os << "{\"name\":\"" << util::escapeJson(e.name) << "\"";
        if (!e.cat.empty())
            os << ",\"cat\":\"" << util::escapeJson(e.cat) << "\"";
        os << ",\"ph\":\"" << e.ph << "\",\"pid\":" << e.pid
           << ",\"tid\":" << e.tid << ",\"ts\":" << e.ts;
        if (e.ph == 'X')
            os << ",\"dur\":" << e.dur;
        if (!e.args.empty())
            os << ",\"args\":" << e.args;
        os << "}";
    }
    os << "\n],\n\"displayTimeUnit\":\""
       << util::escapeJson(displayTimeUnit) << "\",\n\"metadata\":{";
    bool mfirst = true;
    for (const auto &[key, value] : metadata) {
        if (!mfirst)
            os << ",";
        mfirst = false;
        os << "\"" << util::escapeJson(key) << "\":\""
           << util::escapeJson(value) << "\"";
    }
    os << "}}\n";
}

TraceSink &
TraceSink::instance()
{
    // Leaked: spans may close during static destruction.
    static TraceSink *sink = new TraceSink;
    return *sink;
}

namespace {

void
flushAtExit()
{
    TraceSink &sink = TraceSink::instance();
    if (sink.enabled())
        sink.flush();
}

} // namespace

void
TraceSink::enable(const std::string &path)
{
    GANACC_ASSERT(!path.empty(), "trace sink needs an output path");
    {
        std::lock_guard<std::mutex> lk(m_);
        path_ = path;
        events_.clear();
        t0_ = std::chrono::steady_clock::now();
    }
    enabled_.store(true, std::memory_order_relaxed);
    // Last-resort flush for tools that exit without a telemetry
    // scope; registered once.
    static bool registered = (std::atexit(flushAtExit), true);
    (void)registered;
}

void
TraceSink::disable()
{
    enabled_.store(false, std::memory_order_relaxed);
}

std::uint64_t
TraceSink::nowUs() const
{
    std::chrono::steady_clock::time_point t0;
    {
        std::lock_guard<std::mutex> lk(m_);
        t0 = t0_;
    }
    return std::uint64_t(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

int
TraceSink::threadLane()
{
    static std::atomic<int> next{0};
    thread_local int lane = next.fetch_add(1);
    return lane;
}

void
TraceSink::record(TraceEvent ev)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lk(m_);
    events_.push_back(std::move(ev));
}

std::size_t
TraceSink::eventCount() const
{
    std::lock_guard<std::mutex> lk(m_);
    return events_.size();
}

bool
TraceSink::flush()
{
    std::vector<TraceEvent> events;
    std::string path;
    {
        std::lock_guard<std::mutex> lk(m_);
        events.swap(events_);
        path = path_;
    }
    disable();
    if (path.empty())
        return false;
    std::ofstream os(path, std::ios::trunc);
    if (!os) {
        util::warn("cannot write trace to ", path);
        return false;
    }
    writeChromeTraceJson(os, events,
                         {{"tool", "ganacc telemetry"},
                          {"clock", "steady, us since enable"}},
                         "ms");
    return bool(os);
}

Span::Span(const char *name, const char *cat, std::string args)
    : armed_(TraceSink::instance().enabled()), name_(name), cat_(cat),
      args_(std::move(args))
{
    if (armed_)
        t0_ = TraceSink::instance().nowUs();
}

Span::~Span()
{
    if (!armed_)
        return;
    TraceSink &sink = TraceSink::instance();
    if (!sink.enabled())
        return; // sink shut down while the span was open
    TraceEvent ev;
    ev.name = name_;
    ev.cat = cat_;
    ev.ph = 'X';
    ev.pid = 0;
    ev.tid = TraceSink::threadLane();
    ev.ts = t0_;
    const std::uint64_t now = sink.nowUs();
    ev.dur = now >= t0_ ? now - t0_ : 0;
    ev.args = std::move(args_);
    sink.record(std::move(ev));
}

} // namespace obs
} // namespace ganacc
