/**
 * @file
 * PE-split ablation for eq. (8): sweep the ST:W bank ratio at a fixed
 * 1680-PE budget and show that the paper's 5:2 split (2.5x) minimizes
 * the deferred-sync iteration time — the W bank is exactly saturated
 * during discriminator updates, neither starving nor idling.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "core/unrolling.hh"
#include "gan/models.hh"
#include "sched/design.hh"
#include "util/table.hh"

int
main()
{
    using namespace ganacc;
    using core::ArchKind;
    using sched::Design;
    using sched::SyncPolicy;

    bench::banner("Ablation — eq. (8) bank split",
                  "ST_Pof = 2.5 x W_Pof balances the 5 ST : 2 W phase "
                  "ratio of discriminator updates");

    struct Split
    {
        const char *label;
        int st, w;
    };
    // 1680 PEs divided at various ratios (channel granularity 16).
    const Split splits[] = {
        {"1.0x (1:1)", 840, 840},   {"1.5x (3:2)", 1008, 672},
        {"2.0x (2:1)", 1120, 560},  {"2.5x (5:2, paper)", 1200, 480},
        {"3.0x (3:1)", 1260, 420},  {"4.0x (4:1)", 1344, 336},
        {"6.0x (6:1)", 1440, 240},
    };

    for (const auto &m : gan::allModels()) {
        std::cout << "\n" << m.name
                  << " (deferred-sync cycles per iteration; lower is "
                     "better)\n";
        util::Table t({"ST:W ratio", "ST PEs", "W PEs", "D-upd ST",
                       "D-upd W", "iter cycles", "vs paper split"});
        std::uint64_t paper_cycles = 0;
        std::vector<std::vector<std::string>> rows;
        // First pass to get the paper split's number.
        for (const Split &s : splits) {
            Design d = Design::comboWithSplit(
                ArchKind::ZFOST, ArchKind::ZFWST, s.st, s.w);
            std::uint64_t c =
                sched::iterationCycles(d, m, SyncPolicy::Deferred);
            if (s.st == 1200)
                paper_cycles = c;
        }
        for (const Split &s : splits) {
            Design d = Design::comboWithSplit(
                ArchKind::ZFOST, ArchKind::ZFWST, s.st, s.w);
            auto du = sched::discriminatorUpdateTiming(d, m);
            std::uint64_t c =
                sched::iterationCycles(d, m, SyncPolicy::Deferred);
            t.addRow(s.label, s.st, s.w, du.bank.st, du.bank.w, c,
                     double(c) / double(paper_cycles));
        }
        t.print(std::cout);
    }
    std::cout << "\nExpected: the optimum sits at or adjacent to the "
                 "paper's 2.5x; extreme splits starve one bank.\n";
    return 0;
}
