/**
 * @file
 * OST cycle-level model.
 */

#include "sim/ost.hh"

#include <algorithm>

#include "sim/closed_form.hh"
#include "util/logging.hh"

namespace ganacc {
namespace sim {

using tensor::Tensor;

RunStats
Ost::doRun(const ConvSpec &spec, const Tensor *in, const Tensor *w,
           Tensor *out) const
{
    const bool functional = in != nullptr;
    const int n_pes = numPes();
    ScheduleRecorder *const rec = schedRec();
    RunStats st;

    for (int of0 = 0; of0 < spec.nof; of0 += unroll_.pOf) {
        const int of_cnt = std::min(unroll_.pOf, spec.nof - of0);
        for (int ty = 0; ty < spec.oh; ty += unroll_.pOy) {
            const int ty_cnt = std::min(unroll_.pOy, spec.oh - ty);
            for (int tx = 0; tx < spec.ow; tx += unroll_.pOx) {
                const int tx_cnt = std::min(unroll_.pOx, spec.ow - tx);
                const int tile = ty_cnt * tx_cnt;
                // The accumulation window of the output-stationary
                // register array: cleared at tile start, drained once
                // the tile's contributions are complete — per input
                // map for four-dimension outputs, per whole nif loop
                // otherwise.
                if (rec && !spec.fourDimOutput)
                    rec->onWindowBegin(std::uint64_t(tile) * of_cnt,
                                       WindowKind::RegisterTile);
                for (int c = 0; c < spec.nif; ++c) {
                    if (rec && spec.fourDimOutput)
                        rec->onWindowBegin(std::uint64_t(tile) * of_cnt,
                                           WindowKind::RegisterTile);
                    bool first_kpos = true;
                    for (int ky = 0; ky < spec.kh; ++ky) {
                        for (int kx = 0; kx < spec.kw; ++kx) {
                            // ---- one cycle ----
                            st.cycles += 1;
                            st.weightLoads += std::uint64_t(of_cnt);
                            // Raster-order weights: with stride 1 the
                            // register array shifts (one new column or
                            // row); with stride > 1 adjacent cycles
                            // share nothing and the tile reloads.
                            std::uint64_t in_words;
                            if (first_kpos) {
                                in_words = std::uint64_t(tile);
                                first_kpos = false;
                            } else if (spec.stride == 1) {
                                in_words = std::uint64_t(
                                    kx == 0 ? tx_cnt : ty_cnt);
                            } else {
                                in_words = std::uint64_t(tile);
                            }
                            st.inputLoads += in_words;
                            if (rec) {
                                rec->onCycle();
                                rec->onPort(SchedPort::Weight,
                                            std::uint64_t(of_cnt));
                                rec->onPort(SchedPort::Input, in_words);
                                for (int dy = 0; dy < ty_cnt; ++dy)
                                    for (int dx = 0; dx < tx_cnt; ++dx)
                                        rec->onLanes(
                                            (dy * unroll_.pOx + dx) *
                                                unroll_.pOf,
                                            of_cnt);
                                rec->onCellWrite(
                                    0, std::uint64_t(tile) * of_cnt);
                            }

                            int eff_pos = 0;
                            if (!spec.kernelIsZero(ky, kx)) {
                                int rows = countNonzeroCoords(
                                    ty, ty_cnt, spec.stride, ky,
                                    spec.pad, spec.ih, spec.inZeroStride,
                                    spec.inOrigH);
                                int cols = countNonzeroCoords(
                                    tx, tx_cnt, spec.stride, kx,
                                    spec.pad, spec.iw, spec.inZeroStride,
                                    spec.inOrigW);
                                eff_pos = rows * cols;
                            }
                            st.effectiveMacs +=
                                std::uint64_t(eff_pos) * of_cnt;
                            st.ineffectualMacs +=
                                std::uint64_t(tile - eff_pos) * of_cnt;
                            st.idlePeSlots += std::uint64_t(n_pes) -
                                              std::uint64_t(tile) * of_cnt;

                            if (functional) {
                                // Zero-valued inputs contribute nothing
                                // but are still scheduled on the tile's
                                // multipliers, so the fault hook may ask
                                // to see them.
                                const bool want_ineff =
                                    faultVisitsIneffectual();
                                for (int dy = 0; dy < ty_cnt; ++dy)
                                    for (int dx = 0; dx < tx_cnt; ++dx) {
                                        int oy = ty + dy, ox = tx + dx;
                                        int iy = oy * spec.stride + ky -
                                                 spec.pad;
                                        int ix = ox * spec.stride + kx -
                                                 spec.pad;
                                        float v =
                                            in->getPadded(0, c, iy, ix);
                                        if (v == 0.0f && !want_ineff)
                                            continue;
                                        for (int f = 0; f < of_cnt; ++f) {
                                            int of = of0 + f;
                                            int wc = spec.fourDimOutput
                                                         ? 0
                                                         : c;
                                            float ww =
                                                w->get(of, wc, ky, kx);
                                            const MacContext ctx{
                                                (dy * unroll_.pOx + dx) *
                                                        unroll_.pOf +
                                                    f,
                                                of, c, oy, ox, ky, kx};
                                            float p =
                                                macProduct(v, ww, ctx);
                                            if (spec.fourDimOutput)
                                                out->ref(of, c, oy, ox) +=
                                                    p;
                                            else
                                                out->ref(0, of, oy, ox) +=
                                                    p;
                                        }
                                    }
                            }
                        }
                    }
                    // Four-dimension outputs leave the array per input
                    // feature map (a fresh (of, if) plane each time).
                    if (spec.fourDimOutput) {
                        st.outputWrites += std::uint64_t(tile) * of_cnt;
                        if (rec) {
                            rec->onPort(SchedPort::OutputWrite,
                                        std::uint64_t(tile) * of_cnt);
                            rec->onDrain(0, std::uint64_t(tile) * of_cnt);
                            rec->onWindowEnd();
                        }
                    }
                }
                // Accumulating convs keep partial sums in the PE
                // registers across the whole nif loop and write once.
                if (!spec.fourDimOutput) {
                    st.outputWrites += std::uint64_t(tile) * of_cnt;
                    if (rec) {
                        rec->onPort(SchedPort::OutputWrite,
                                    std::uint64_t(tile) * of_cnt);
                        rec->onDrain(0, std::uint64_t(tile) * of_cnt);
                        rec->onWindowEnd();
                    }
                }
            }
        }
    }
    return st;
}

bool
Ost::fastStats(const ConvSpec &spec, RunStats &st) const
{
    st = ostClosedForm(unroll_, spec);
    return true;
}

} // namespace sim
} // namespace ganacc
