/**
 * @file
 * Resource model implementation.
 */

#include "core/resource_model.hh"

#include <algorithm>

#include "util/logging.hh"

namespace ganacc {
namespace core {

namespace {

// Linear coefficients fitted so a 1680-PE design with the DCGAN
// buffer plan reproduces Table III (254523 LUTs, 79668 FFs, 1694
// DSPs).
constexpr std::uint64_t kLutsPerPe = 130;
constexpr std::uint64_t kLutsFixed = 36123;
constexpr std::uint64_t kFfsPerPe = 40;
constexpr std::uint64_t kFfsFixed = 12468;
constexpr int kDspPerPe = 1;
constexpr int kDspFixed = 14; // address generation / control

} // namespace

FpgaResources
vcu9pBudget()
{
    FpgaResources r;
    r.luts = 1182240;
    r.flipFlops = 2364480;
    r.bram36 = 2160;
    r.dsp = 6840;
    return r;
}

FpgaResources
estimateResources(int total_pes, const mem::BufferPlan &plan)
{
    GANACC_ASSERT(total_pes > 0, "design needs at least one PE");
    FpgaResources r;
    r.luts = kLutsPerPe * total_pes + kLutsFixed;
    r.flipFlops = kFfsPerPe * total_pes + kFfsFixed;
    r.dsp = kDspPerPe * total_pes + kDspFixed;
    r.bram36 = plan.bram36Count();
    return r;
}

bool
fits(const FpgaResources &need, const FpgaResources &budget)
{
    return need.luts <= budget.luts &&
           need.flipFlops <= budget.flipFlops &&
           need.bram36 <= budget.bram36 && need.dsp <= budget.dsp;
}

double
worstUtilization(const FpgaResources &need, const FpgaResources &budget)
{
    double u = 0.0;
    u = std::max(u, double(need.luts) / double(budget.luts));
    u = std::max(u, double(need.flipFlops) / double(budget.flipFlops));
    u = std::max(u, double(need.bram36) / double(budget.bram36));
    u = std::max(u, double(need.dsp) / double(budget.dsp));
    return u;
}

} // namespace core
} // namespace ganacc
