/**
 * @file
 * Minimal command-line flag parser for the examples and benches.
 *
 * Flags are "--name value" or "--name=value"; bare "--name" is a
 * boolean. Every lookup registers the flag with its default and help
 * text so usage() can print an accurate synopsis, and finish() rejects
 * unknown flags (typos fail loudly instead of silently running the
 * default experiment).
 */

#ifndef GANACC_UTIL_ARGS_HH
#define GANACC_UTIL_ARGS_HH

#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace ganacc {
namespace util {

/** Typed access to "--flag value" style command lines. */
class ArgParser
{
  public:
    ArgParser(int argc, const char *const *argv);

    /** Integer flag with default and help text. */
    int getInt(const std::string &name, int def,
               const std::string &help);

    /** Floating-point flag. */
    double getDouble(const std::string &name, double def,
                     const std::string &help);

    /** String flag. */
    std::string getString(const std::string &name,
                          const std::string &def,
                          const std::string &help);

    /** Boolean flag (present => true). */
    bool getFlag(const std::string &name, const std::string &help);

    /**
     * Worker-count flag for the parallel sweep engine: registers
     * "--jobs N" and resolves it through util::resolveJobs — an
     * explicit N wins, then the GANACC_JOBS environment variable,
     * then std::thread::hardware_concurrency(). Always >= 1.
     */
    int getJobs();

    /**
     * Persistent result-cache directory for the serving subsystem's
     * disk tier: registers "--cache-dir PATH"; an explicit path wins,
     * then the GANACC_CACHE_DIR environment variable, else "" (disk
     * tier off).
     */
    std::string getCacheDir();

    /**
     * Telemetry trace output for the observability layer: registers
     * "--trace [PATH]"; an explicit path wins, a bare --trace selects
     * "ganacc_trace.json", then the GANACC_TRACE environment
     * variable, else "" (tracing off).
     */
    std::string getTracePath();

    /** True when --help was passed. */
    bool helpRequested() const;

    /** Print the registered synopsis. */
    void usage(std::ostream &os) const;

    /**
     * Validate: throws FatalError listing any flag the user passed
     * that no getter registered. Call after all getters.
     */
    void finish() const;

    const std::string &program() const { return program_; }

  private:
    std::optional<std::string> rawValue(const std::string &name) const;
    void registerFlag(const std::string &name,
                      const std::string &default_text,
                      const std::string &help);

    std::string program_;
    std::map<std::string, std::string> values_; ///< name -> raw value
    struct Registered
    {
        std::string name;
        std::string defaultText;
        std::string help;
    };
    std::vector<Registered> registered_;
};

} // namespace util
} // namespace ganacc

#endif // GANACC_UTIL_ARGS_HH
