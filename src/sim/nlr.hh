/**
 * @file
 * NLR — the No-Local-Reuse architecture (Fig. 5(a), DianNao-style),
 * *improved* with zero skipping as the paper's evaluation grants it
 * ("we optimize the dataflow of NLR so that it can skip over zeros in
 * its input data and kernel weights", Section VI-A).
 *
 * P_if input lanes feed an adder tree per output channel; P_of output
 * channels run in parallel. Operands stream from the buffers every
 * cycle (no register reuse), so NLR matches the zero-free designs in
 * throughput on S-CONV/T-CONV but pays far more on-chip accesses
 * (Fig. 16) — and on W-CONV its adder tree is useless because
 * four-dimension outputs accumulate nothing across input maps, idling
 * P_of x (P_if - 1) multipliers (Section III-C1).
 */

#ifndef GANACC_SIM_NLR_HH
#define GANACC_SIM_NLR_HH

#include "sim/arch.hh"

namespace ganacc {
namespace sim {

/** Improved (zero-skipping) no-local-reuse array. */
class Nlr : public Architecture
{
  public:
    /** Whether structural zeros are skipped (the paper's "improved"
     *  NLR) or executed (the vanilla DianNao-style dataflow — kept as
     *  an ablation to show what the evaluation granted the baseline). */
    enum class ZeroPolicy
    {
        Skip,
        Execute,
    };

    explicit Nlr(Unroll unroll, ZeroPolicy policy = ZeroPolicy::Skip)
        : Architecture(policy == ZeroPolicy::Skip ? "NLR"
                                                  : "NLR-vanilla",
                       unroll),
          policy_(policy) {}

    int
    numPes() const override
    {
        return unroll_.pIf * unroll_.pOf;
    }

  protected:
    RunStats doRun(const ConvSpec &spec, const tensor::Tensor *in,
                   const tensor::Tensor *w,
                   tensor::Tensor *out) const override;

    bool fastStats(const ConvSpec &spec, RunStats &st) const override;

  private:
    ZeroPolicy policy_;
};

} // namespace sim
} // namespace ganacc

#endif // GANACC_SIM_NLR_HH
