/**
 * @file
 * ganacc-runstats — deterministic RunStats dump for every Table V
 * (architecture, unrolling) entry.
 *
 * For each phase-family row of Table V (D and G on the 1200-PE ST
 * bank, Dw and Gw on the 480-PE W bank) and each of the five
 * architectures, the tool instantiates the published unrolling, runs
 * every DCGAN job of the family timing-only, and emits the complete
 * per-job RunStats as one JSON object per line.
 *
 * The output is a pure function of the cycle walks: no RNG, no
 * threads, no floating point in the counters. tests/ byte-compares it
 * against tests/golden/runstats_table5.json so any silent drift in
 * cycle or access accounting — including from code that is supposed
 * to be inert, like the fault-injection hook with an empty plan —
 * fails CI.
 */

#include <iostream>
#include <string>

#include "core/unrolling.hh"
#include "gan/models.hh"
#include "sim/json.hh"
#include "sim/phase.hh"
#include "util/args.hh"
#include "util/logging.hh"
#include "util/strings.hh"

using namespace ganacc;

int
main(int argc, char **argv)
try {
    util::ArgParser args(argc, argv);
    const std::string model_name = args.getString(
        "model", "dcgan", "network whose jobs are simulated");
    if (args.helpRequested()) {
        args.usage(std::cout);
        return 0;
    }
    args.finish();

    gan::GanModel model;
    if (model_name == "dcgan")
        model = gan::makeDcgan();
    else if (model_name == "mnist-gan")
        model = gan::makeMnistGan();
    else if (model_name == "cgan")
        model = gan::makeCgan();
    else
        util::fatal("unknown model '", model_name,
                    "' (dcgan, mnist-gan, cgan)");

    struct Row
    {
        sim::PhaseFamily family;
        core::BankRole role;
        int pes;
    };
    const Row rows[] = {
        {sim::PhaseFamily::D, core::BankRole::ST, 1200},
        {sim::PhaseFamily::G, core::BankRole::ST, 1200},
        {sim::PhaseFamily::Dw, core::BankRole::W, 480},
        {sim::PhaseFamily::Gw, core::BankRole::W, 480},
    };

    for (const Row &row : rows) {
        const auto jobs = sim::familyJobs(model, row.family);
        for (core::ArchKind kind : core::allArchKinds()) {
            sim::Unroll u =
                core::paperUnroll(kind, row.role, row.family, row.pes);
            auto arch = core::makeArch(kind, u);
            for (std::size_t j = 0; j < jobs.size(); ++j) {
                sim::RunStats st = arch->run(jobs[j]);
                std::cout << "{\"bank\":\""
                          << (row.role == core::BankRole::ST ? "ST" : "W")
                          << "\",\"family\":\""
                          << sim::phaseFamilyName(row.family)
                          << "\",\"arch\":\"" << core::archKindName(kind)
                          << "\",\"unroll\":\""
                          << util::escapeJson(u.str()) << "\",\"job\":\""
                          << util::escapeJson(jobs[j].label)
                          << "\",\"stats\":" << sim::toJson(st)
                          << "}\n";
            }
        }
    }
    return 0;
} catch (const util::FatalError &e) {
    std::cerr << "ganacc-runstats: " << e.what() << "\n";
    return 2;
}
