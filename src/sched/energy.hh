/**
 * @file
 * Energy accounting on top of the cycle-level statistics.
 *
 * Fig. 16 argues data-access counts because accesses dominate energy:
 * a 16-bit MAC costs ~1 pJ while an on-chip SRAM access costs several
 * and a DRAM access two orders of magnitude more (the Horowitz
 * ISSCC'14 ballpark, which Eyeriss-era accelerator papers build on).
 * This module turns each architecture's RunStats plus its off-chip
 * traffic into joules, letting the repository rank designs by energy
 * and sanity-check the board-power figure used in the Fig. 19
 * comparison.
 */

#ifndef GANACC_SCHED_ENERGY_HH
#define GANACC_SCHED_ENERGY_HH

#include "gan/models.hh"
#include "sched/design.hh"
#include "sim/stats.hh"

namespace ganacc {
namespace sched {

/** Per-event energy costs in picojoules (16-bit datapath). */
struct EnergyCoefficients
{
    double macPj = 1.0;       ///< one 16-bit multiply-accumulate
    double registerPj = 0.3;  ///< register-array read/shift
    double sramPj = 5.0;      ///< on-chip buffer access (16-bit word)
    double dramPj = 160.0;    ///< off-chip access (16-bit word)
    double idlePj = 0.05;     ///< clocking an idle PE slot
};

/** Energy breakdown of one job / phase / iteration. */
struct EnergyBreakdown
{
    double computePj = 0.0; ///< executed MACs (incl. wasted ones)
    double onChipPj = 0.0;  ///< buffer accesses
    double dramPj = 0.0;    ///< off-chip words
    double idlePj = 0.0;    ///< idle-slot clocking

    double
    totalPj() const
    {
        return computePj + onChipPj + dramPj + idlePj;
    }

    EnergyBreakdown &operator+=(const EnergyBreakdown &o);
};

/**
 * On-chip energy of one run. `gated_slots` are ineffectual slots
 * whose datapath was clock-gated (RST): they cost idle power instead
 * of MAC power.
 */
EnergyBreakdown runEnergy(const sim::RunStats &stats,
                          const EnergyCoefficients &c,
                          std::uint64_t gated_slots = 0);

/**
 * Full-iteration energy of a design on a model: every phase pass's
 * on-chip energy plus the off-chip traffic (single-fetch weights per
 * pass and the ∇W read+write streams).
 */
EnergyBreakdown iterationEnergy(const Design &design,
                                const gan::GanModel &model,
                                const EnergyCoefficients &c = {});

/**
 * Implied average power (watts) of a design sustaining the given
 * iteration rate: energy/iteration x iterations/second.
 */
double impliedWatts(const EnergyBreakdown &e, double iterations_per_sec);

} // namespace sched
} // namespace ganacc

#endif // GANACC_SCHED_ENERGY_HH
