/**
 * @file
 * Quickstart: build the paper's accelerator, run one DCGAN training
 * iteration through the cycle-level model, and print what you get —
 * cycles, throughput, utilization and the speedup over a traditional
 * baseline. Start here.
 */

#include <iostream>

#include "core/accelerator.hh"
#include "core/unrolling.hh"
#include "gan/models.hh"
#include "sched/design.hh"
#include "util/table.hh"

int
main()
{
    using namespace ganacc;

    // 1. The workload: the DCGAN of the paper's Fig. 1.
    gan::GanModel dcgan = gan::makeDcgan();
    std::cout << "Workload: " << dcgan.name << "\n";
    for (const auto &l : dcgan.disc)
        std::cout << "  D " << l.describe() << "\n";
    for (const auto &l : dcgan.gen)
        std::cout << "  G " << l.describe() << "\n";

    // 2. The accelerator: sized from the VCU118's DRAM bandwidth
    //    (eq. 7 -> 30 ZFWST channels, eq. 8 -> 75 ZFOST channels).
    core::GanAccelerator acc;
    std::cout << "\nAccelerator: " << acc.stPof() << " ZFOST + "
              << acc.wPof() << " ZFWST channels, " << acc.totalPes()
              << " PEs @ 200 MHz\n";

    // 3. One full training iteration (discriminator + generator
    //    update) through the cycle-level model.
    auto rep = acc.evaluate(dcgan);
    std::cout << "\nPer-sample iteration: "
              << rep.iterationCyclesDeferred << " cycles (deferred), "
              << rep.iterationCyclesSync << " (synchronized)\n"
              << "Throughput: " << rep.samplesPerSecond
              << " samples/s, " << rep.gopsDeferred
              << " effective GOPS\n"
              << "ST-bank PE utilization: "
              << rep.discUpdate.stStats.utilization() << ", W-bank: "
              << rep.discUpdate.wStats.utilization() << "\n"
              << "Fits the XCVU9P: "
              << (rep.fitsDevice ? "yes" : "no") << " (BRAM "
              << rep.resources.bram36 << "/2160, DSP "
              << rep.resources.dsp << "/6840)\n";

    // 4. How much the co-design buys over a traditional accelerator
    //    with the same PEs running the original algorithm.
    auto baseline = sched::Design::combo(core::ArchKind::NLR,
                                         core::ArchKind::OST,
                                         acc.totalPes());
    double base_cycles = double(sched::iterationCycles(
        baseline, dcgan, sched::SyncPolicy::Synchronized));
    std::cout << "\nSpeedup over NLR-OST with synchronized training: "
              << base_cycles / double(rep.iterationCyclesDeferred)
              << "x\n";
    return 0;
}
