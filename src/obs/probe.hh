/**
 * @file
 * The cycle-walk observation hook.
 *
 * Architecture::run() reports every finished job to the installed
 * Probe — once per job, after the conservation asserts, so the cost
 * is one relaxed atomic load on the null path (mirroring the
 * MacFaultHook pattern: null by default, bit-identical behaviour).
 * One hook point covers all five dataflows plus the CNV/RST
 * baselines; the sample carries only plain integers and string views
 * so this layer needs no knowledge of sim types.
 */

#ifndef GANACC_OBS_PROBE_HH
#define GANACC_OBS_PROBE_HH

#include <cstdint>
#include <string_view>

namespace ganacc {
namespace obs {

/** Everything one finished cycle walk reports. */
struct RunSample
{
    std::string_view arch;   ///< architecture name ("ZFOST", …)
    std::string_view label;  ///< job label ("D-fwd conv1", may be "")
    std::string_view engine; ///< "walk" or "fast" (closed-form path)

    std::uint64_t cycles = 0;
    std::uint64_t nPes = 0;
    std::uint64_t effectiveMacs = 0;
    std::uint64_t ineffectualMacs = 0;
    std::uint64_t idlePeSlots = 0;
    std::uint64_t gatedSlots = 0;
    std::uint64_t weightLoads = 0;
    std::uint64_t inputLoads = 0;
    std::uint64_t outputReads = 0;
    std::uint64_t outputWrites = 0;
};

/** Observer of finished cycle walks. Implementations must be
 *  thread-safe: sweep workers run jobs concurrently. */
class Probe
{
  public:
    virtual ~Probe() = default;

    /** Called once per finished job; must not mutate anything the
     *  simulation reads — telemetry is strictly observational. */
    virtual void onRun(const RunSample &sample) = 0;
};

/** The installed probe (nullptr = observation off, the default). */
Probe *runProbe();

/** Install (or with nullptr remove) the process-wide probe. The
 *  probe must outlive every run() that can observe it. */
void setRunProbe(Probe *probe);

/**
 * The standard probe behind enableTelemetry(): tallies per-arch run
 * counts, cycles and PE-slot classes (and per-phase-prefix cycles)
 * into the metric registry.
 */
class MetricsProbe : public Probe
{
  public:
    void onRun(const RunSample &sample) override;
};

} // namespace obs
} // namespace ganacc

#endif // GANACC_OBS_PROBE_HH
