/**
 * @file
 * Fallible-filesystem shim implementation.
 */

#include "fault/fs_faults.hh"

#include <atomic>

namespace ganacc {
namespace fault {

namespace {

std::atomic<std::uint32_t> g_fail_reads{0};
std::atomic<std::uint32_t> g_fail_writes{0};
std::atomic<std::uint32_t> g_torn_writes{0};

std::atomic<std::uint32_t> g_fired_reads{0};
std::atomic<std::uint32_t> g_fired_writes{0};
std::atomic<std::uint32_t> g_fired_torn{0};

/** Decrement `budget` if positive; true when a fault fires. */
bool
consume(std::atomic<std::uint32_t> &budget,
        std::atomic<std::uint32_t> &fired)
{
    // Fast path: nothing armed (the common, fault-free case).
    if (budget.load(std::memory_order_relaxed) == 0)
        return false;
    std::uint32_t n = budget.load(std::memory_order_relaxed);
    while (n > 0) {
        if (budget.compare_exchange_weak(n, n - 1,
                                         std::memory_order_relaxed)) {
            fired.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
    }
    return false;
}

} // namespace

void
armFsFaults(const FsFaultPlan &plan)
{
    g_fail_reads.fetch_add(plan.failReads, std::memory_order_relaxed);
    g_fail_writes.fetch_add(plan.failWrites,
                            std::memory_order_relaxed);
    g_torn_writes.fetch_add(plan.tornWrites,
                            std::memory_order_relaxed);
}

void
clearFsFaults()
{
    g_fail_reads.store(0, std::memory_order_relaxed);
    g_fail_writes.store(0, std::memory_order_relaxed);
    g_torn_writes.store(0, std::memory_order_relaxed);
}

FsFaultPlan
armedFsFaults()
{
    FsFaultPlan p;
    p.failReads = g_fail_reads.load(std::memory_order_relaxed);
    p.failWrites = g_fail_writes.load(std::memory_order_relaxed);
    p.tornWrites = g_torn_writes.load(std::memory_order_relaxed);
    return p;
}

FsFaultPlan
firedFsFaults()
{
    FsFaultPlan p;
    p.failReads = g_fired_reads.load(std::memory_order_relaxed);
    p.failWrites = g_fired_writes.load(std::memory_order_relaxed);
    p.tornWrites = g_fired_torn.load(std::memory_order_relaxed);
    return p;
}

bool
consumeReadFault()
{
    return consume(g_fail_reads, g_fired_reads);
}

bool
consumeWriteFault()
{
    return consume(g_fail_writes, g_fired_writes);
}

bool
consumeTornWrite()
{
    return consume(g_torn_writes, g_fired_torn);
}

} // namespace fault
} // namespace ganacc
