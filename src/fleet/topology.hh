/**
 * @file
 * The shard map of a serving fleet.
 *
 * A fleet is N ganacc-served shards speaking the same JSONL protocol
 * (TCP for cross-host fleets, AF_UNIX paths work too for same-host
 * testing), plus a routing convention every client and every shard
 * agree on: consistent hashing of the request's content key over a
 * ring of virtual nodes (fleet/ring.hh), replication factor `rf`
 * copies per key.
 *
 * The topology is configuration, not consensus: every shard is
 * started with the same ordered shard list and answers it verbatim
 * to {"fleet":true} probes, so a client can bootstrap the whole-fleet
 * view from any one address (Router::bootstrap). Changing the member
 * list is a redeploy, not a runtime operation — the ring only
 * rebalances 1/N of the keyspace per changed shard, and the
 * content-addressed store makes mis-routed history merely cold, never
 * wrong.
 */

#ifndef GANACC_FLEET_TOPOLOGY_HH
#define GANACC_FLEET_TOPOLOGY_HH

#include <string>
#include <vector>

namespace ganacc {
namespace fleet {

/** The fleet-wide routing agreement. */
struct Topology
{
    /// Ordered shard addresses ("host:port" or socket paths). Order
    /// matters: ring points hash (address, vnode) pairs, so every
    /// participant must hold the identical list.
    std::vector<std::string> shards;

    /// Virtual nodes per shard on the hash ring. More vnodes =
    /// smoother key distribution at slightly larger ring; 64 keeps
    /// the max/min shard load within ~30% for small fleets.
    int vnodes = 64;

    /// Replication factor: each key is owned by `rf` distinct shards
    /// (clamped to the fleet size). RF=2 means one shard loss costs
    /// latency (failover to the replica), never recomputation.
    int rf = 2;

    /// Index of the answering shard in `shards`, or -1 when this
    /// topology describes the fleet from outside (a client's view).
    int self = -1;

    /** rf clamped to the actual fleet size. */
    int effectiveRf() const;
};

/** Canonical JSON object text, e.g.
 *  {"shards":["127.0.0.1:7741","127.0.0.1:7742"],"vnodes":64,
 *   "rf":2,"self":0}. This is the payload of a fleet-probe response
 *  and the value of serve::EngineOptions::fleetJson. */
std::string toJson(const Topology &topo);

/** Parse the toJson() form; throws util::FatalError on malformed or
 *  inconsistent input (no shards, rf < 1, vnodes < 1, self out of
 *  range). */
Topology topologyFromJson(const std::string &text);

/**
 * Build a topology from a comma-separated shard list (the
 * ganacc-client --fleet / ganacc-served --fleet flag format).
 */
Topology parseShardList(const std::string &csv, int vnodes = 64,
                        int rf = 2);

} // namespace fleet
} // namespace ganacc

#endif // GANACC_FLEET_TOPOLOGY_HH
