/**
 * @file
 * ZFOST — Zero-Free Output-STationary microarchitecture (Fig. 11),
 * the paper's design for ST-ARCH (phases D→, G→, D←, G←).
 *
 * Like OST, a P_oy x P_ox output tile is pinned to the PEs and P_of
 * channels share a broadcast input register array. The two additions:
 *
 *  1. *Reordered weight feed* (Fig. 12(a)): kernel weights enter
 *     grouped by coordinate parity class (K(even,even) first, then
 *     K(even,odd), ...), which restores the register-array shifting
 *     reuse that raster order destroys on strided convolutions.
 *
 *  2. *Zero-free scheduling* (Fig. 12(b)): for zero-inserted inputs,
 *     outputs are processed per parity class, and each class only
 *     streams the kernel positions whose input operands are
 *     structurally non-zero; for zero-inserted kernels (W-CONV of the
 *     discriminator) the zero weight positions are never streamed.
 *     Skipping happens entirely in address generation.
 */

#ifndef GANACC_CORE_ZFOST_HH
#define GANACC_CORE_ZFOST_HH

#include "sim/arch.hh"

namespace ganacc {
namespace core {

/** The paper's zero-free output-stationary array. */
class Zfost : public sim::Architecture
{
  public:
    /** Weight feed order — the Fig. 12(a) design choice. */
    enum class WeightOrder
    {
        Reordered, ///< parity-grouped feed; register array shifts
        Raster,    ///< plain raster feed (ablation): zero skipping
                   ///< still works, but strided convolutions lose the
                   ///< register-array reuse and reload the input tile
                   ///< every cycle, like OST
    };

    explicit Zfost(sim::Unroll unroll,
                   WeightOrder order = WeightOrder::Reordered)
        : sim::Architecture(order == WeightOrder::Reordered
                                ? "ZFOST"
                                : "ZFOST-raster",
                            unroll),
          order_(order) {}

    int
    numPes() const override
    {
        return unroll_.pOx * unroll_.pOy * unroll_.pOf;
    }

  protected:
    sim::RunStats doRun(const sim::ConvSpec &spec,
                        const tensor::Tensor *in, const tensor::Tensor *w,
                        tensor::Tensor *out) const override;

    bool fastStats(const sim::ConvSpec &spec,
                   sim::RunStats &st) const override;

  private:
    WeightOrder order_;
};

} // namespace core
} // namespace ganacc

#endif // GANACC_CORE_ZFOST_HH
