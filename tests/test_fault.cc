/**
 * @file
 * Fault-injection subsystem tests: FaultPlan JSON parsing, the
 * no-fault bit-identity guarantee, the dense-lattice masking contract
 * (a transient on a slot the dataflow never issues is masked), the
 * analytically-predictable stuck-at-zero PE case, the storage-fault
 * primitives, the saturation stress vs the static range analysis, and
 * the headline resilience result: on the Table V matrix the zero-free
 * dataflows mask strictly more transient upsets than the baselines.
 */

#include <gtest/gtest.h>

#include <bitset>
#include <cstring>
#include <string>

#include "core/zfost.hh"
#include "fault/campaign.hh"
#include "fault/fault_plan.hh"
#include "fault/injector.hh"
#include "fault/mem_faults.hh"
#include "gan/models.hh"
#include "mem/offchip.hh"
#include "mem/onchip_buffer.hh"
#include "sim/conv_spec.hh"
#include "sim/ost.hh"
#include "tensor/tensor.hh"
#include "util/fixed_point.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "verify/range_analysis.hh"

namespace {

using namespace ganacc;
using core::Zfost;
using sim::ConvSpec;
using sim::Ost;
using sim::Unroll;
using tensor::Tensor;
using util::Rng;

/** Zero-stuffed T-CONV job: 3/4 of the dense lattice lands on
 *  structural zeros a zero-free dataflow never schedules. */
ConvSpec
stuffedSpec()
{
    ConvSpec s;
    s.label = "stuffed";
    s.nif = 2;
    s.nof = 2;
    s.inZeroStride = 2;
    s.inOrigH = s.inOrigW = 5;
    s.ih = s.iw = 9;
    s.kh = s.kw = 3;
    s.stride = 1;
    s.pad = 1;
    s.oh = s.ow = 9;
    return s;
}

/** Same tiny GAN the determinism tests train (milliseconds/run). */
gan::GanModel
tinyModel()
{
    gan::LayerSpec l0;
    l0.kind = nn::ConvKind::Strided;
    l0.act = nn::Activation::LeakyReLU;
    l0.inChannels = 1;
    l0.outChannels = 4;
    l0.inH = l0.inW = 8;
    l0.geom = nn::Conv2dGeom{4, 2, 1, 0};

    gan::LayerSpec head;
    head.kind = nn::ConvKind::Strided;
    head.act = nn::Activation::None;
    head.inChannels = 4;
    head.outChannels = 1;
    head.inH = head.inW = 4;
    head.geom = nn::Conv2dGeom{4, 1, 0, 0};

    return gan::makeModel("tiny", {l0, head}, 8);
}

// ---------------------------------------------------------------------
// FaultPlan parsing
// ---------------------------------------------------------------------

TEST(FaultPlan, ParsesTheFullSchema)
{
    const fault::FaultPlan plan = fault::FaultPlan::parse(R"({
        "seed": 7,
        "pe": [ {"lane": 3, "kind": "stuck0"},
                {"lane": 9, "kind": "stuck", "value": 0.5} ],
        "transient": {"sitesPerJob": 256, "bits": 2},
        "memory": {"flipProbPerAccess": 1e-7, "bits": 1},
        "saturation": {"fracBits": 12}
    })");
    EXPECT_EQ(plan.seed, 7u);
    ASSERT_EQ(plan.peFaults.size(), 2u);
    EXPECT_EQ(plan.peFaults[0].lane, 3);
    EXPECT_EQ(plan.peFaults[0].kind, fault::PeFault::Kind::StuckAtZero);
    EXPECT_EQ(plan.peFaults[1].lane, 9);
    EXPECT_EQ(plan.peFaults[1].kind, fault::PeFault::Kind::StuckAtValue);
    EXPECT_FLOAT_EQ(plan.peFaults[1].value, 0.5f);
    EXPECT_EQ(plan.transient.sitesPerJob, 256);
    EXPECT_EQ(plan.transient.bits, 2);
    EXPECT_DOUBLE_EQ(plan.memory.flipProbPerAccess, 1e-7);
    EXPECT_EQ(plan.saturation.fracBits, 12);
    EXPECT_FALSE(plan.empty());
    EXPECT_FALSE(plan.describe().empty());
}

TEST(FaultPlan, DefaultPlanIsEmpty)
{
    const fault::FaultPlan plan;
    EXPECT_TRUE(plan.empty());
    const fault::FaultPlan parsed = fault::FaultPlan::parse("{}");
    EXPECT_TRUE(parsed.empty());
}

TEST(FaultPlan, RejectsMalformedInput)
{
    // Syntax errors.
    EXPECT_THROW(fault::FaultPlan::parse(""), util::FatalError);
    EXPECT_THROW(fault::FaultPlan::parse("{"), util::FatalError);
    EXPECT_THROW(fault::FaultPlan::parse("{} trailing"),
                 util::FatalError);
    EXPECT_THROW(fault::FaultPlan::parse(R"({"unknown": 1})"),
                 util::FatalError);
    // Validation errors.
    EXPECT_THROW(fault::FaultPlan::parse(R"({"pe": [{"lane": -1}]})"),
                 util::FatalError);
    EXPECT_THROW(
        fault::FaultPlan::parse(R"({"transient": {"bits": 0}})"),
        util::FatalError);
    EXPECT_THROW(fault::FaultPlan::parse(
                     R"({"memory": {"flipProbPerAccess": 2.0}})"),
                 util::FatalError);
    EXPECT_THROW(
        fault::FaultPlan::parse(R"({"saturation": {"fracBits": 16}})"),
        util::FatalError);
    EXPECT_THROW(fault::FaultPlan::fromFile("/nonexistent/plan.json"),
                 util::FatalError);
}

// ---------------------------------------------------------------------
// The hook contract
// ---------------------------------------------------------------------

TEST(FaultInjector, EmptyPlanLeavesOutputsBitIdentical)
{
    const ConvSpec s = stuffedSpec();
    Rng rng(11);
    const Tensor in = sim::makeStreamedInput(s, rng);
    const Tensor w = sim::makeStreamedKernel(s, rng);
    Zfost zfost(Unroll{.pOf = 2, .pOx = 3, .pOy = 3});

    Tensor bare = sim::makeOutputTensor(s);
    zfost.run(s, &in, &w, &bare);

    fault::FaultInjector injector((fault::FaultPlan()));
    EXPECT_FALSE(injector.visitIneffectual());
    injector.beginJob(s, 0);
    zfost.setFaultHook(&injector);
    Tensor hooked = sim::makeOutputTensor(s);
    zfost.run(s, &in, &w, &hooked);
    zfost.setFaultHook(nullptr);

    EXPECT_EQ(0, std::memcmp(bare.data(), hooked.data(),
                             bare.numel() * sizeof(float)));
    EXPECT_EQ(injector.counters().armed, 0u);
    EXPECT_EQ(injector.counters().fired, 0u);
    EXPECT_GT(injector.counters().macsObserved, 0u);
}

TEST(FaultInjector, NeverIssuedSlotIsMasked)
{
    // The same plan armed on the same (seed, job) lattice: OST
    // physically schedules every dense-lattice multiply, so every
    // armed upset fires; ZFOST never issues the stuffing zeros, so the
    // upsets landing there stay masked.
    const ConvSpec s = stuffedSpec();
    Rng rng(12);
    const Tensor in = sim::makeStreamedInput(s, rng);
    const Tensor w = sim::makeStreamedKernel(s, rng);

    fault::FaultPlan plan;
    plan.seed = 5;
    plan.transient.sitesPerJob = 64;

    fault::FaultInjector on_ost(plan);
    on_ost.beginJob(s, 3);
    Ost ost(Unroll{.pOf = 2, .pOx = 3, .pOy = 3});
    ost.setFaultHook(&on_ost);
    Tensor out = sim::makeOutputTensor(s);
    ost.run(s, &in, &w, &out);

    fault::FaultInjector on_zfost(plan);
    on_zfost.beginJob(s, 3);
    Zfost zfost(Unroll{.pOf = 2, .pOx = 3, .pOy = 3});
    zfost.setFaultHook(&on_zfost);
    Tensor out2 = sim::makeOutputTensor(s);
    zfost.run(s, &in, &w, &out2);

    // Identical arming is the precondition of the comparison.
    EXPECT_EQ(on_ost.counters().armed, 64u);
    EXPECT_EQ(on_zfost.counters().armed, 64u);
    // OST samples every site; ZFOST leaves the structural-zero ones
    // unobserved (~3/4 of this job's lattice is stuffing).
    EXPECT_EQ(on_ost.counters().masked(), 0u);
    EXPECT_GT(on_zfost.counters().masked(), 0u);
    EXPECT_LT(on_zfost.counters().fired, on_zfost.counters().armed);
}

TEST(FaultInjector, StuckAtZeroPeMatchesAnalyticRmse)
{
    // 1x1 kernel, all-ones operands, 4x4 output on a 2x2x1 ZFOST
    // tile: physical lane 0 owns exactly the outputs with even row
    // and even column — 4 of the 16 — and each output is the single
    // product 1*1. Wiring lane 0 to zero must therefore zero exactly
    // those four outputs: RMSE = sqrt(4/16) = 0.5.
    ConvSpec s;
    s.label = "unit";
    s.nif = 1;
    s.nof = 1;
    s.ih = s.iw = 4;
    s.kh = s.kw = 1;
    s.stride = 1;
    s.pad = 0;
    s.oh = s.ow = 4;

    Tensor in(tensor::Shape4(1, 1, 4, 4), 1.0f);
    Tensor w(tensor::Shape4(1, 1, 1, 1), 1.0f);
    const Tensor ref = sim::genericConvRef(s, in, w);

    fault::FaultPlan plan;
    fault::PeFault pe;
    pe.lane = 0;
    pe.kind = fault::PeFault::Kind::StuckAtZero;
    plan.peFaults.push_back(pe);

    fault::FaultInjector injector(plan);
    injector.beginJob(s, 0);
    Zfost zfost(Unroll{.pOf = 1, .pOx = 2, .pOy = 2});
    zfost.setFaultHook(&injector);
    Tensor out = sim::makeOutputTensor(s);
    zfost.run(s, &in, &w, &out);

    EXPECT_NEAR(fault::rmse(out, ref), 0.5, 1e-6);
    EXPECT_EQ(injector.counters().peHits, 4u);
    int zeroed = 0;
    for (int oy = 0; oy < 4; ++oy)
        for (int ox = 0; ox < 4; ++ox)
            if (out.ref(0, 0, oy, ox) == 0.0f) {
                EXPECT_EQ(oy % 2, 0) << oy << "," << ox;
                EXPECT_EQ(ox % 2, 0) << oy << "," << ox;
                ++zeroed;
            }
    EXPECT_EQ(zeroed, 4);
}

// ---------------------------------------------------------------------
// Storage-fault primitives
// ---------------------------------------------------------------------

TEST(MemFaults, SampleBinomialEdgesAndDeterminism)
{
    Rng rng(1);
    EXPECT_EQ(fault::sampleBinomial(rng, 0, 0.5), 0u);
    EXPECT_EQ(fault::sampleBinomial(rng, 1000, 0.0), 0u);
    // p = 1 must return n in every regime: exact, Poisson, normal.
    EXPECT_EQ(fault::sampleBinomial(rng, 100, 1.0), 100u);
    EXPECT_EQ(fault::sampleBinomial(rng, 1u << 20, 1.0), 1u << 20);

    Rng a(77), b(77);
    for (int i = 0; i < 16; ++i) {
        const std::uint64_t x = fault::sampleBinomial(a, 10000, 0.3);
        EXPECT_EQ(x, fault::sampleBinomial(b, 10000, 0.3));
        EXPECT_LE(x, 10000u);
    }
}

TEST(MemFaults, SingleBitFlipIsOneFixed16Bit)
{
    Tensor t(tensor::Shape4(1, 1, 2, 2), 1.0f);
    const Tensor orig = t;
    Rng rng(9);
    EXPECT_EQ(fault::applyBitFlips(t, 1, 1, rng), 1u);

    int changed = 0;
    for (std::size_t i = 0; i < t.numel(); ++i) {
        if (t.data()[i] == orig.data()[i])
            continue;
        ++changed;
        const std::uint16_t before = std::uint16_t(
            util::AccelFixed::fromDouble(orig.data()[i]).raw());
        const std::uint16_t after = std::uint16_t(
            util::AccelFixed::fromDouble(t.data()[i]).raw());
        EXPECT_EQ(std::bitset<16>(before ^ after).count(), 1u);
    }
    EXPECT_EQ(changed, 1);

    // Zero flips must be a no-op.
    Tensor u = orig;
    EXPECT_EQ(fault::applyBitFlips(u, 0, 1, rng), 0u);
    EXPECT_EQ(0, std::memcmp(u.data(), orig.data(),
                             u.numel() * sizeof(float)));
}

TEST(MemFaults, FlipCountingTapObservesBufferTraffic)
{
    fault::FlipCountingTap tap(1.0, 42);

    mem::OnChipBuffer buf("test", 1024);
    buf.setAccessTap(&tap);
    buf.read(64); // 32 words at p=1: all corrupt
    buf.write(10);
    EXPECT_EQ(tap.pendingFlips(), 37u);

    mem::OffChipMemory dram((mem::OffChipConfig()));
    dram.setAccessTap(&tap);
    dram.read(6);
    EXPECT_EQ(tap.pendingFlips(), 40u);
    EXPECT_EQ(tap.takeFlips(), 40u);
    EXPECT_EQ(tap.pendingFlips(), 0u);

    // Detached taps see nothing.
    buf.setAccessTap(nullptr);
    dram.setAccessTap(nullptr);
    buf.read(100);
    dram.write(100);
    EXPECT_EQ(tap.pendingFlips(), 0u);
}

TEST(MemFaults, SaturationStressAgreesWithRangeAnalysis)
{
    // 1.5 needs one integer bit: a Q1.14 writeback must not clip it.
    Tensor fits(tensor::Shape4(1, 1, 1, 2));
    fits.data()[0] = 1.5f;
    fits.data()[1] = -0.3f;
    EXPECT_LE(verify::requiredIntBits(1.5), 1);
    const fault::SaturationStress ok = fault::stressSaturation(fits, 14);
    EXPECT_EQ(ok.saturated, 0u);
    EXPECT_EQ(ok.total, 2u);
    EXPECT_GT(ok.rmseVsFloat, 0.0); // -0.3 is off-grid: rounding error
    EXPECT_LT(ok.rmseVsFloat, 1e-3);

    // 3.0 needs two integer bits: the same format must clip it, and
    // the static analysis must predict that.
    Tensor clips(tensor::Shape4(1, 1, 1, 1));
    clips.data()[0] = 3.0f;
    EXPECT_GT(verify::requiredIntBits(3.0), 1);
    const fault::SaturationStress sat =
        fault::stressSaturation(clips, 14);
    EXPECT_EQ(sat.saturated, 1u);
    EXPECT_NEAR(clips.data()[0], 2.0f, 1e-3);
}

// ---------------------------------------------------------------------
// Campaigns
// ---------------------------------------------------------------------

TEST(FaultCampaign, EmptyPlanCampaignIsFaultFree)
{
    const fault::CampaignResult result = fault::runResilienceCampaign(
        tinyModel(), fault::FaultPlan(), fault::CampaignOptions());
    ASSERT_FALSE(result.cells.empty());
    for (const auto &cell : result.cells) {
        EXPECT_EQ(cell.mac.armed, 0u) << cell.row << " " << cell.arch;
        // Not exactly zero: the cell RMSE is measured against the
        // golden model, whose accumulation order differs from the
        // dataflow's, so ~1e-8 float rounding noise remains. Anything
        // above that would be an injected fault.
        EXPECT_LT(cell.outputRmse, 1e-6) << cell.row << " " << cell.arch;
        EXPECT_EQ(cell.memFlips, 0u);
    }
}

const fault::ArchSummary &
summaryFor(const fault::CampaignResult &result, const std::string &arch)
{
    for (const auto &s : result.archs)
        if (s.arch == arch)
            return s;
    ADD_FAILURE() << "no summary for " << arch;
    static const fault::ArchSummary none{};
    return none;
}

TEST(FaultCampaign, ZeroFreeDataflowsMaskMoreTransients)
{
    // The acceptance result: on the paper's evaluation matrix
    // (Table V rows, identical armed sites everywhere) the zero-free
    // dataflows mask strictly more MAC-path transients than every
    // baseline, *in aggregate* — per-row exceptions are real (WST
    // out-masks ZFOST on D/ST, where its resident kernel never streams
    // the padding ring), which is exactly why the claim is stated over
    // the summed lattice.
    fault::FaultPlan plan;
    plan.seed = 1;
    plan.transient.sitesPerJob = 256;

    fault::CampaignOptions opt;
    opt.dataSeed = plan.seed;
    const fault::CampaignResult result = fault::runResilienceCampaign(
        gan::makeMnistGan(), plan, opt);

    const fault::ArchSummary &nlr = summaryFor(result, "NLR");
    const fault::ArchSummary &wst = summaryFor(result, "WST");
    const fault::ArchSummary &ost = summaryFor(result, "OST");
    const fault::ArchSummary &zfost = summaryFor(result, "ZFOST");
    const fault::ArchSummary &zfwst = summaryFor(result, "ZFWST");

    // Like-for-like: every column sampled the identical armed set.
    EXPECT_EQ(nlr.armed, zfost.armed);
    EXPECT_EQ(wst.armed, zfost.armed);
    EXPECT_EQ(ost.armed, zfost.armed);
    EXPECT_GT(zfost.armed, 0u);

    for (const fault::ArchSummary *zf : {&zfost, &zfwst}) {
        EXPECT_GT(zf->maskingRate, nlr.maskingRate) << zf->arch;
        EXPECT_GT(zf->maskingRate, wst.maskingRate) << zf->arch;
        EXPECT_GT(zf->maskingRate, ost.maskingRate) << zf->arch;
    }
    // The zero-executing baselines sample every armed upset.
    EXPECT_EQ(nlr.fired, nlr.armed);
    EXPECT_EQ(ost.fired, ost.armed);
    // Masking shows up as accuracy: fewer sampled upsets, lower RMSE.
    EXPECT_LT(zfost.outputRmse, nlr.outputRmse);
}

TEST(FaultCampaign, TrainerDegradationIsDeterministicAndFaultDriven)
{
    const gan::GanModel model = tinyModel();

    // No storage faults: the twins stay bit-identical.
    fault::FaultPlan clean;
    const fault::TrainerDegradation none =
        fault::runTrainerDegradation(model, clean, 3, 2, 17);
    EXPECT_EQ(none.weightFlips, 0u);
    EXPECT_EQ(none.meanAbsDiscLossDelta, 0.0);
    EXPECT_EQ(none.meanAbsGenLossDelta, 0.0);
    EXPECT_EQ(none.weightRmse, 0.0);

    // A heavy flip rate must corrupt weights, and two identical runs
    // must agree bit for bit.
    fault::FaultPlan faulty;
    faulty.seed = 23;
    faulty.memory.flipProbPerAccess = 0.01;
    const fault::TrainerDegradation a =
        fault::runTrainerDegradation(model, faulty, 3, 2, 17);
    const fault::TrainerDegradation b =
        fault::runTrainerDegradation(model, faulty, 3, 2, 17);
    EXPECT_GT(a.weightFlips, 0u);
    EXPECT_GT(a.weightRmse, 0.0);
    EXPECT_EQ(a.weightFlips, b.weightFlips);
    EXPECT_EQ(a.weightRmse, b.weightRmse);
    EXPECT_EQ(a.meanAbsDiscLossDelta, b.meanAbsDiscLossDelta);
    EXPECT_EQ(a.meanAbsGenLossDelta, b.meanAbsGenLossDelta);
    EXPECT_EQ(a.cleanFinalDiscLoss, b.cleanFinalDiscLoss);
    EXPECT_EQ(a.faultyFinalDiscLoss, b.faultyFinalDiscLoss);
}

} // namespace
