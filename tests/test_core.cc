/**
 * @file
 * Tests for the core design layer: Table V unrollings and the
 * strategy solver, the Table III resource model, and the Fig. 14
 * accelerator facade.
 */

#include <gtest/gtest.h>

#include "core/accelerator.hh"
#include "core/resource_model.hh"
#include "core/unrolling.hh"
#include "gan/models.hh"
#include "sim/phase.hh"

namespace {

using namespace ganacc;
using core::ArchKind;
using core::BankRole;
using sim::PhaseFamily;

// ---------------------------------------------------------------------
// Table V unrollings
// ---------------------------------------------------------------------

TEST(Unrolling, PaperTable5EntriesAtPaperBudgets)
{
    // ST bank: 1200 PEs.
    auto nlr = core::paperUnroll(ArchKind::NLR, BankRole::ST,
                                 PhaseFamily::D, 1200);
    EXPECT_EQ(nlr.pIf, 16);
    EXPECT_EQ(nlr.pOf, 75);

    auto wst = core::paperUnroll(ArchKind::WST, BankRole::ST,
                                 PhaseFamily::D, 1200);
    EXPECT_EQ(wst.pKx, 5);
    EXPECT_EQ(wst.pOf, 48);

    auto ost = core::paperUnroll(ArchKind::OST, BankRole::ST,
                                 PhaseFamily::D, 1200);
    EXPECT_EQ(ost.pOx, 4);
    EXPECT_EQ(ost.pOf, 75);

    auto zfost = core::paperUnroll(ArchKind::ZFOST, BankRole::ST,
                                   PhaseFamily::G, 1200);
    EXPECT_EQ(zfost.pOx, 4);
    EXPECT_EQ(zfost.pOf, 75);

    // ZFWST on the ST bank is family-dependent (Table V last row).
    auto zfwst_d = core::paperUnroll(ArchKind::ZFWST, BankRole::ST,
                                     PhaseFamily::D, 1200);
    EXPECT_EQ(zfwst_d.pKx, 5);
    EXPECT_EQ(zfwst_d.pOf, 48);
    auto zfwst_g = core::paperUnroll(ArchKind::ZFWST, BankRole::ST,
                                     PhaseFamily::G, 1200);
    EXPECT_EQ(zfwst_g.pKx, 3);
    EXPECT_EQ(zfwst_g.pOf, 133);

    // W bank: 480 PEs.
    auto nlr_w = core::paperUnroll(ArchKind::NLR, BankRole::W,
                                   PhaseFamily::Dw, 480);
    EXPECT_EQ(nlr_w.pIf, 16);
    EXPECT_EQ(nlr_w.pOf, 30);
    auto ost_w = core::paperUnroll(ArchKind::OST, BankRole::W,
                                   PhaseFamily::Dw, 480);
    EXPECT_EQ(ost_w.pOx, 5);
    EXPECT_EQ(ost_w.pOf, 19);
    auto zfost_gw = core::paperUnroll(ArchKind::ZFOST, BankRole::W,
                                      PhaseFamily::Gw, 480);
    EXPECT_EQ(zfost_gw.pOx, 3);
    EXPECT_EQ(zfost_gw.pOf, 53);
    auto zfwst_w = core::paperUnroll(ArchKind::ZFWST, BankRole::W,
                                     PhaseFamily::Gw, 480);
    EXPECT_EQ(zfwst_w.pKx, 4);
    EXPECT_EQ(zfwst_w.pOf, 30);
}

TEST(Unrolling, BudgetScalingKeepsShape)
{
    auto half = core::paperUnroll(ArchKind::ZFOST, BankRole::ST,
                                  PhaseFamily::D, 600);
    EXPECT_EQ(half.pOx, 4);
    EXPECT_EQ(half.pOf, 37);
    auto tiny = core::paperUnroll(ArchKind::ZFOST, BankRole::ST,
                                  PhaseFamily::D, 8);
    EXPECT_GE(tiny.pOf, 1);
}

TEST(Unrolling, MakeArchProducesRightPeCounts)
{
    auto a = core::makeArch(ArchKind::ZFWST,
                            core::paperUnroll(ArchKind::ZFWST,
                                              BankRole::W,
                                              PhaseFamily::Dw, 480));
    EXPECT_EQ(a->numPes(), 480);
    EXPECT_EQ(a->name(), "ZFWST");
}

TEST(Unrolling, SolverFindsNoWorseThanPaperChoice)
{
    // On DCGAN's T-CONV family jobs with 1200 PEs, the exhaustive
    // solver must do at least as well as the published unrolling.
    gan::GanModel m = gan::makeDcgan();
    auto jobs = sim::familyJobs(m, PhaseFamily::G);
    auto choice = core::solveUnrolling(ArchKind::ZFOST, 1200, jobs, 6);

    auto paper_arch = core::makeArch(
        ArchKind::ZFOST,
        core::paperUnroll(ArchKind::ZFOST, BankRole::ST, PhaseFamily::G,
                          1200));
    std::uint64_t paper_cycles = 0;
    for (const auto &j : jobs)
        paper_cycles += paper_arch->run(j).cycles;
    EXPECT_LE(choice.cycles, paper_cycles);
    EXPECT_LE(choice.pes, 1200);
}

TEST(Unrolling, SolverRespectsBudget)
{
    gan::GanModel m = gan::makeMnistGan();
    auto jobs = sim::familyJobs(m, PhaseFamily::Dw);
    for (int budget : {64, 256, 480}) {
        auto c = core::solveUnrolling(ArchKind::ZFWST, budget, jobs, 6);
        EXPECT_LE(c.pes, budget);
        EXPECT_GT(c.cycles, 0u);
    }
}

TEST(Unrolling, ArchKindNamesRoundTrip)
{
    for (ArchKind k : core::allArchKinds())
        EXPECT_FALSE(core::archKindName(k).empty());
    EXPECT_EQ(core::allArchKinds().size(), 5u);
}

// ---------------------------------------------------------------------
// Resource model (Table III)
// ---------------------------------------------------------------------

TEST(ResourceModel, ReproducesTable3AtPaperDesignPoint)
{
    gan::GanModel m = gan::makeDcgan();
    auto plan = mem::planBuffers(m, 30, 2);
    auto r = core::estimateResources(1680, plan);
    // Table III: 254523 LUTs, 79668 FFs, 2008 BRAM, 1694 DSP.
    EXPECT_EQ(r.luts, 254523u);
    EXPECT_EQ(r.flipFlops, 79668u);
    EXPECT_EQ(r.dsp, 1694);
    EXPECT_NEAR(double(r.bram36), 2008.0, 0.15 * 2008);
    EXPECT_TRUE(core::fits(r, core::vcu9pBudget()));
}

TEST(ResourceModel, BudgetComparisons)
{
    auto budget = core::vcu9pBudget();
    core::FpgaResources small{1000, 1000, 10, 10};
    EXPECT_TRUE(core::fits(small, budget));
    core::FpgaResources too_many_dsp{1000, 1000, 10, 7000};
    EXPECT_FALSE(core::fits(too_many_dsp, budget));
    EXPECT_GT(core::worstUtilization(too_many_dsp, budget), 1.0);
}

TEST(ResourceModel, DspScalesWithPes)
{
    gan::GanModel m = gan::makeMnistGan();
    auto plan = mem::planBuffers(m, 30, 2);
    auto a = core::estimateResources(512, plan);
    auto b = core::estimateResources(1024, plan);
    EXPECT_EQ(b.dsp - a.dsp, 512);
    EXPECT_EQ(a.bram36, b.bram36); // buffers independent of PEs
}

// ---------------------------------------------------------------------
// Accelerator facade
// ---------------------------------------------------------------------

TEST(Accelerator, PaperConfiguration)
{
    core::GanAccelerator acc;
    EXPECT_EQ(acc.wPof(), 30);
    EXPECT_EQ(acc.stPof(), 75);
    EXPECT_EQ(acc.totalPes(), 1680);
    auto d = acc.design();
    EXPECT_TRUE(d.isCombo());
    EXPECT_EQ(d.stPes(), 1200);
    EXPECT_EQ(d.wPes(), 480);
    EXPECT_EQ(d.name(), "ZFOST-ZFWST");
}

TEST(Accelerator, EvaluatesAllModelsWithinDevice)
{
    core::GanAccelerator acc;
    for (const auto &m : gan::allModels()) {
        auto rep = acc.evaluate(m);
        EXPECT_TRUE(rep.fitsDevice) << m.name;
        EXPECT_GT(rep.gopsDeferred, 50.0) << m.name;
        EXPECT_LT(rep.gopsDeferred, 2.0 * 1680 * 0.2) << m.name;
        EXPECT_GT(rep.samplesPerSecond, 10.0) << m.name;
        // Deferred synchronization must help end to end.
        EXPECT_LT(rep.iterationCyclesDeferred, rep.iterationCyclesSync)
            << m.name;
    }
}

TEST(Accelerator, DeferredSpeedupIsSubstantial)
{
    // Fig. 17: the combination design gains most of the W-bank
    // overlap; sync/deferred ratio approaches (ST+W)/max(ST,W).
    core::GanAccelerator acc;
    auto rep = acc.evaluate(gan::makeDcgan());
    double ratio = double(rep.iterationCyclesSync) /
                   double(rep.iterationCyclesDeferred);
    EXPECT_GT(ratio, 1.5);
    EXPECT_LT(ratio, 2.0);
}

TEST(Accelerator, ScalesWithBandwidth)
{
    core::AcceleratorConfig cfg;
    cfg.offchip.bandwidthBitsPerSec = 96e9; // half the DDR4 channels
    core::GanAccelerator acc(cfg);
    EXPECT_EQ(acc.wPof(), 15);
    // ST_Pof = floor(2.5 * 15) = 37 -> (37 + 15) * 16 PEs.
    EXPECT_EQ(acc.totalPes(), 832);
    auto rep = acc.evaluate(gan::makeDcgan());
    core::GanAccelerator full;
    auto rep_full = full.evaluate(gan::makeDcgan());
    EXPECT_LT(rep.gopsDeferred, rep_full.gopsDeferred);
}

} // namespace
