/**
 * @file
 * Cross-process trace stitching implementation.
 */

#include "fleet/trace_merge.hh"

#include <sstream>

#include "serve/protocol.hh"
#include "util/strings.hh"

namespace ganacc {
namespace fleet {

namespace {

/** A process_name metadata event labelling `pid` in the viewer. */
obs::TraceEvent
processName(int pid, const std::string &name)
{
    obs::TraceEvent ev;
    ev.name = "process_name";
    ev.ph = 'M';
    ev.pid = pid;
    ev.args = "{\"name\":\"" + util::escapeJson(name) + "\"}";
    return ev;
}

} // namespace

std::string
mergeTraces(
    const std::vector<std::pair<std::string, std::string>> &perShard,
    const std::vector<obs::TraceEvent> &localEvents)
{
    std::vector<obs::TraceEvent> merged;
    merged.push_back(processName(0, "router"));
    for (std::size_t s = 0; s < perShard.size(); ++s)
        merged.push_back(processName(
            int(s) + 1,
            "shard" + std::to_string(s) + " (" + perShard[s].first +
                ")"));

    for (const obs::TraceEvent &ev : localEvents) {
        merged.push_back(ev);
        merged.back().pid = 0;
    }
    for (std::size_t s = 0; s < perShard.size(); ++s) {
        if (perShard[s].second.empty())
            continue; // unreachable shard: label only, no spans
        for (obs::TraceEvent &ev :
             serve::decodeSpanBatch(perShard[s].second)) {
            ev.pid = int(s) + 1;
            merged.push_back(std::move(ev));
        }
    }

    std::ostringstream os;
    obs::writeChromeTraceJson(
        os, merged,
        {{"source", "ganacc fleet trace collector"},
         {"shards", std::to_string(perShard.size())}});
    return os.str();
}

} // namespace fleet
} // namespace ganacc
