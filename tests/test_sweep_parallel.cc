/**
 * @file
 * Parallel sweep-engine tests: the PE-slot conservation invariant of
 * sim/stats.hh as a property over randomized jobs on all four
 * dataflows, and the engine's core promise — sweepFrontierParallel is
 * bit-identical to the serial sweepFrontier on the Table IV networks,
 * at any worker count, with the cycle cache warm or cold.
 */

#include <gtest/gtest.h>

#include "core/cycle_cache.hh"
#include "core/dse.hh"
#include "core/zfost.hh"
#include "core/zfwst.hh"
#include "gan/models.hh"
#include "sim/ost.hh"
#include "sim/rst.hh"
#include "util/random.hh"

namespace {

using namespace ganacc;
using core::DseConstraints;
using core::DsePoint;
using sim::ConvSpec;
using sim::RunStats;
using sim::Unroll;

/** A random valid spec with optional zero structure on both operands. */
ConvSpec
randomSpec(util::Rng &rng)
{
    ConvSpec s;
    s.label = "prop";
    s.nif = rng.uniformInt(1, 3);
    s.nof = rng.uniformInt(1, 4);
    s.kh = s.kw = 2 * rng.uniformInt(0, 2) + 1; // 1, 3 or 5
    const bool in_stuffed = rng.bernoulli(0.4);
    const bool k_stuffed = rng.bernoulli(0.4);
    // The zero-free dataflows stream stuffed operands at stride 1
    // (zfost.cc/zfwst.cc precondition), as the GAN phases do.
    s.stride = (in_stuffed || k_stuffed) ? 1 : rng.uniformInt(1, 2);
    s.pad = rng.uniformInt(0, s.kh / 2);
    s.ih = s.iw = rng.uniformInt(s.kh, 14);
    s.oh = (s.ih - s.kh + 2 * s.pad) / s.stride + 1;
    s.ow = (s.iw - s.kw + 2 * s.pad) / s.stride + 1;
    if (in_stuffed) {
        s.inZeroStride = 2;
        s.inOrigH = (s.ih + 1) / 2;
        s.inOrigW = (s.iw + 1) / 2;
    }
    if (k_stuffed) {
        s.kZeroStride = 2;
        s.kOrigH = (s.kh + 1) / 2;
        s.kOrigW = (s.kw + 1) / 2;
    }
    s.validate();
    return s;
}

TEST(SweepParallel, PeSlotConservationHoldsOnAllDataflows)
{
    // effectiveMacs + ineffectualMacs + idlePeSlots == cycles * nPes:
    // every offered PE slot is exactly one of useful, wasted or idle.
    util::Rng rng(20260805);
    sim::Ost ost(Unroll{.pOf = 2, .pOx = 3, .pOy = 3});
    sim::Rst rst(Unroll{.pOf = 3, .pKy = 3, .pOy = 4});
    core::Zfost zfost(Unroll{.pOf = 2, .pOx = 3, .pOy = 3});
    core::Zfwst zfwst(Unroll{.pOf = 2, .pKx = 3, .pKy = 3});
    const sim::Architecture *archs[] = {&ost, &rst, &zfost, &zfwst};
    for (int i = 0; i < 60; ++i) {
        ConvSpec s = randomSpec(rng);
        for (const sim::Architecture *a : archs) {
            RunStats st = a->run(s);
            EXPECT_EQ(st.effectiveMacs + st.ineffectualMacs +
                          st.idlePeSlots,
                      st.totalSlots())
                << a->name() << " on " << s.describe();
            // Gating is a subset of ineffectual work, and only RST
            // gates.
            EXPECT_LE(st.gatedSlots, st.ineffectualMacs);
            if (a != &rst) {
                EXPECT_EQ(st.gatedSlots, 0u);
            }
        }
    }
}

TEST(SweepParallel, RunIsReentrantAndRepeatable)
{
    // No state may survive a run() on the architecture object: two
    // identical runs must produce identical counters (this is what
    // lets the sweep engine share one arch across threads).
    util::Rng rng(7);
    sim::Rst rst(Unroll{.pOf = 2, .pKy = 3, .pOy = 3});
    for (int i = 0; i < 10; ++i) {
        ConvSpec s = randomSpec(rng);
        RunStats a = rst.run(s);
        RunStats b = rst.run(s);
        EXPECT_EQ(a.cycles, b.cycles);
        EXPECT_EQ(a.effectiveMacs, b.effectiveMacs);
        EXPECT_EQ(a.ineffectualMacs, b.ineffectualMacs);
        EXPECT_EQ(a.gatedSlots, b.gatedSlots);
        EXPECT_EQ(a.idlePeSlots, b.idlePeSlots);
    }
}

void
expectIdentical(const std::vector<DsePoint> &a,
                const std::vector<DsePoint> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].wPof, b[i].wPof);
        EXPECT_EQ(a[i].stPof, b[i].stPof);
        EXPECT_EQ(a[i].totalPes, b[i].totalPes);
        EXPECT_EQ(a[i].iterationCycles, b[i].iterationCycles);
        // Bit-identical, not approximately equal: the parallel engine
        // runs the same arithmetic in the same order per point.
        EXPECT_EQ(a[i].samplesPerSecond, b[i].samplesPerSecond);
        EXPECT_EQ(a[i].resources.luts, b[i].resources.luts);
        EXPECT_EQ(a[i].resources.flipFlops, b[i].resources.flipFlops);
        EXPECT_EQ(a[i].resources.bram36, b[i].resources.bram36);
        EXPECT_EQ(a[i].resources.dsp, b[i].resources.dsp);
        EXPECT_EQ(a[i].fitsDevice, b[i].fitsDevice);
        EXPECT_EQ(a[i].bandwidthFeasible, b[i].bandwidthFeasible);
    }
}

TEST(SweepParallel, BitIdenticalToSerialSweepOnAllNetworks)
{
    DseConstraints cons;
    cons.budget = core::vcu9pBudget();
    cons.maxWPof = 12; // enough points to exercise the pool
    for (const gan::GanModel &m : gan::allModels()) {
        auto serial = core::sweepFrontier(cons, m);
        for (int jobs : {1, 2, 4}) {
            auto parallel = core::sweepFrontierParallel(cons, m, jobs);
            expectIdentical(serial, parallel);
        }
    }
}

TEST(SweepParallel, ColdCacheMatchesWarmCache)
{
    DseConstraints cons;
    cons.budget = core::vcu9pBudget();
    cons.maxWPof = 6;
    gan::GanModel m = gan::makeMnistGan();
    auto warm = core::sweepFrontierParallel(cons, m, 2);
    core::CycleCache::instance().clear();
    auto cold = core::sweepFrontierParallel(cons, m, 2);
    expectIdentical(warm, cold);
    EXPECT_GT(core::CycleCache::instance().size(), 0u);
}

TEST(SweepParallel, CacheDistinguishesShapesNotLabels)
{
    auto &cache = core::CycleCache::instance();
    cache.clear();
    util::Rng rng(3);
    ConvSpec s = randomSpec(rng);
    Unroll u{.pOf = 2, .pOx = 2, .pOy = 2};
    RunStats first = cache.stats(core::ArchKind::ZFOST, u, s);
    ConvSpec renamed = s;
    renamed.label = "same shape, different name";
    RunStats second = cache.stats(core::ArchKind::ZFOST, u, renamed);
    EXPECT_EQ(first.cycles, second.cycles);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_GE(cache.hits(), 1u);
    // A genuinely different shape misses.
    ConvSpec wider = s;
    wider.nof += 1;
    cache.stats(core::ArchKind::ZFOST, u, wider);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(SweepParallel, CacheStatsSnapshotTracksHitMissAccounting)
{
    auto &cache = core::CycleCache::instance();
    cache.clear();
    const core::CacheStats before = cache.cacheStats();
    EXPECT_EQ(before.entries, 0u);

    util::Rng rng(11);
    ConvSpec s = randomSpec(rng);
    Unroll u{.pOf = 2, .pOx = 2, .pOy = 2};
    cache.stats(core::ArchKind::ZFOST, u, s); // miss -> simulate
    cache.stats(core::ArchKind::ZFOST, u, s); // memory hit

    const core::CacheStats after = cache.cacheStats();
    EXPECT_EQ(after.entries, 1u);
    EXPECT_EQ(after.hits, before.hits + 1);
    EXPECT_EQ(after.misses, before.misses + 1);
    // No disk tier attached: every miss ran a cycle walk.
    EXPECT_EQ(after.diskHits, before.diskHits);
    EXPECT_EQ(after.simulated(), after.misses - after.diskHits);
}

} // namespace
