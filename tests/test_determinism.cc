/**
 * @file
 * Bit-level determinism guarantees:
 *
 *  - a gan::Trainer seeded identically produces bit-identical losses
 *    and weights across in-process repetitions, and is immune to the
 *    GANACC_JOBS environment variable (worker count must never leak
 *    into results);
 *  - the fault-injection campaign — the one subsystem that fans out
 *    over the thread pool — returns byte-identical cells for 1 worker
 *    and 8 workers, because all of its randomness is keyed on
 *    (seed, job, site), never on scheduling order.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "fault/campaign.hh"
#include "fault/fault_plan.hh"
#include "gan/models.hh"
#include "gan/trainer.hh"
#include "nn/optimizer.hh"
#include "tensor/tensor.hh"
#include "util/random.hh"

namespace {

using namespace ganacc;

/** A deliberately small GAN so whole-training runs cost milliseconds. */
gan::GanModel
tinyModel()
{
    gan::LayerSpec l0;
    l0.kind = nn::ConvKind::Strided;
    l0.act = nn::Activation::LeakyReLU;
    l0.inChannels = 1;
    l0.outChannels = 4;
    l0.inH = l0.inW = 8;
    l0.geom = nn::Conv2dGeom{4, 2, 1, 0};

    gan::LayerSpec head;
    head.kind = nn::ConvKind::Strided;
    head.act = nn::Activation::None;
    head.inChannels = 4;
    head.outChannels = 1;
    head.inH = head.inW = 4;
    head.geom = nn::Conv2dGeom{4, 1, 0, 0};

    return gan::makeModel("tiny", {l0, head}, 8);
}

/** Everything one training run determines, flattened for comparison. */
struct TrainingTrace
{
    std::vector<double> losses;  ///< disc, gen per iteration
    std::vector<float> weights;  ///< all parameters, stable order
};

TrainingTrace
runTraining(std::uint64_t seed, int iterations)
{
    const gan::GanModel model = tinyModel();
    gan::Trainer trainer(model, seed, gan::SyncMode::Deferred);
    nn::Sgd d_opt(0.01f), g_opt(0.01f);
    util::Rng rng(seed * 31 + 7);

    TrainingTrace trace;
    const tensor::Shape4 img = model.imageShape();
    for (int it = 0; it < iterations; ++it) {
        tensor::Tensor real(img.d0, img.d1, img.d2, img.d3);
        real.fillUniform(rng, -1.0f, 1.0f);
        const gan::IterationLosses losses =
            trainer.trainIteration(real, d_opt, g_opt, rng);
        trace.losses.push_back(losses.discLoss);
        trace.losses.push_back(losses.genLoss);
    }
    trainer.forEachParameterTensor([&](tensor::Tensor &t) {
        trace.weights.insert(trace.weights.end(), t.data(),
                             t.data() + t.numel());
    });
    return trace;
}

void
expectTracesBitIdentical(const TrainingTrace &a, const TrainingTrace &b,
                         const std::string &context)
{
    ASSERT_EQ(a.losses.size(), b.losses.size()) << context;
    ASSERT_EQ(a.weights.size(), b.weights.size()) << context;
    EXPECT_EQ(0, std::memcmp(a.losses.data(), b.losses.data(),
                             a.losses.size() * sizeof(double)))
        << context << ": loss trajectories diverge";
    EXPECT_EQ(0, std::memcmp(a.weights.data(), b.weights.data(),
                             a.weights.size() * sizeof(float)))
        << context << ": final weights diverge";
}

/** RAII override of GANACC_JOBS, restoring the previous value. */
class JobsEnv
{
  public:
    explicit JobsEnv(const char *value)
    {
        const char *old = std::getenv("GANACC_JOBS");
        hadOld_ = old != nullptr;
        if (hadOld_)
            old_ = old;
        setenv("GANACC_JOBS", value, 1);
    }

    ~JobsEnv()
    {
        if (hadOld_)
            setenv("GANACC_JOBS", old_.c_str(), 1);
        else
            unsetenv("GANACC_JOBS");
    }

  private:
    bool hadOld_ = false;
    std::string old_;
};

TEST(Determinism, TrainerBitIdenticalAcrossReps)
{
    const TrainingTrace first = runTraining(0xAB12, 4);
    const TrainingTrace second = runTraining(0xAB12, 4);
    expectTracesBitIdentical(first, second, "same-seed reps");

    // And a different seed must actually change something, or the
    // comparison above proves nothing.
    const TrainingTrace other = runTraining(0xAB13, 4);
    EXPECT_NE(0, std::memcmp(first.weights.data(), other.weights.data(),
                             first.weights.size() * sizeof(float)));
}

TEST(Determinism, TrainerImmuneToJobsEnv)
{
    TrainingTrace narrow, wide;
    {
        JobsEnv env("1");
        narrow = runTraining(0xCD34, 4);
    }
    {
        JobsEnv env("8");
        wide = runTraining(0xCD34, 4);
    }
    expectTracesBitIdentical(narrow, wide,
                             "GANACC_JOBS=1 vs GANACC_JOBS=8");
}

void
expectCampaignsBitIdentical(const fault::CampaignResult &a,
                            const fault::CampaignResult &b)
{
    ASSERT_EQ(a.cells.size(), b.cells.size());
    for (std::size_t i = 0; i < a.cells.size(); ++i) {
        const fault::CellResult &x = a.cells[i];
        const fault::CellResult &y = b.cells[i];
        EXPECT_EQ(x.arch, y.arch);
        EXPECT_EQ(x.row, y.row);
        EXPECT_EQ(x.mac.armed, y.mac.armed) << x.row << " " << x.arch;
        EXPECT_EQ(x.mac.fired, y.mac.fired) << x.row << " " << x.arch;
        EXPECT_EQ(x.mac.macsObserved, y.mac.macsObserved);
        EXPECT_EQ(x.mac.peHits, y.mac.peHits);
        EXPECT_EQ(x.memFlips, y.memFlips) << x.row << " " << x.arch;
        // Bit-identical, not approximately equal: the campaign
        // promises byte-reproducibility under any worker count.
        EXPECT_EQ(x.outputRmse, y.outputRmse) << x.row << " " << x.arch;
        EXPECT_EQ(x.memRmse, y.memRmse) << x.row << " " << x.arch;
    }
}

TEST(Determinism, FaultCampaignIdenticalUnderAnyWorkerCount)
{
    const gan::GanModel model = tinyModel();
    fault::FaultPlan plan;
    plan.seed = 99;
    plan.transient.sitesPerJob = 64;
    plan.memory.flipProbPerAccess = 1e-4;

    fault::CampaignOptions serial;
    serial.jobs = 1;
    fault::CampaignOptions parallel = serial;
    parallel.jobs = 8;

    const fault::CampaignResult a =
        fault::runResilienceCampaign(model, plan, serial);
    const fault::CampaignResult b =
        fault::runResilienceCampaign(model, plan, parallel);
    expectCampaignsBitIdentical(a, b);

    // The matrix must actually have injected something, or the parity
    // holds vacuously.
    std::uint64_t armed = 0;
    for (const auto &cell : a.cells)
        armed += cell.mac.armed;
    EXPECT_GT(armed, 0u);
}

} // namespace
