/**
 * @file
 * Resilience-campaign implementation.
 */

#include "fault/campaign.hh"

#include <cmath>
#include <functional>
#include <iterator>
#include <memory>
#include <utility>

#include "core/unrolling.hh"
#include "fault/mem_faults.hh"
#include "gan/trainer.hh"
#include "nn/optimizer.hh"
#include "obs/trace.hh"
#include "sim/nlr.hh"
#include "sim/phase.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace ganacc {
namespace fault {

namespace {

using core::ArchKind;
using core::BankRole;
using sim::ConvSpec;
using sim::PhaseFamily;
using tensor::Tensor;

/** One Table V evaluation row: a phase family on its PE bank. */
struct Row
{
    PhaseFamily family;
    BankRole role;
    const char *name;
};

constexpr Row kRows[] = {
    {PhaseFamily::D, BankRole::ST, "D/ST"},
    {PhaseFamily::G, BankRole::ST, "G/ST"},
    {PhaseFamily::Dw, BankRole::W, "Dw/W"},
    {PhaseFamily::Gw, BankRole::W, "Gw/W"},
};

/** An architecture column of the campaign matrix. */
struct Column
{
    std::string name;
    ArchKind kind;
    bool vanillaNlr = false; ///< zero-executing NLR (the physical
                             ///< DianNao baseline)
};

std::vector<Column>
buildColumns(bool nlr_skip_ablation)
{
    std::vector<Column> cols;
    cols.push_back({"NLR", ArchKind::NLR, true});
    if (nlr_skip_ablation)
        cols.push_back({"NLR-skip", ArchKind::NLR, false});
    cols.push_back({"WST", ArchKind::WST, false});
    cols.push_back({"OST", ArchKind::OST, false});
    cols.push_back({"ZFOST", ArchKind::ZFOST, false});
    cols.push_back({"ZFWST", ArchKind::ZFWST, false});
    return cols;
}

std::unique_ptr<sim::Architecture>
buildArch(const Column &col, const Row &row, const CampaignOptions &opt)
{
    const int budget =
        row.role == BankRole::ST ? opt.stBudget : opt.wBudget;
    const sim::Unroll unroll =
        core::paperUnroll(col.kind, row.role, row.family, budget);
    if (col.vanillaNlr)
        return std::make_unique<sim::Nlr>(unroll,
                                          sim::Nlr::ZeroPolicy::Execute);
    return core::makeArch(col.kind, unroll);
}

/** Shared per-job operands: every cell of a row sees the same data. */
struct JobData
{
    ConvSpec spec;
    Tensor in;
    Tensor w;
    Tensor ref;
    std::uint64_t key = 0; ///< stable (row, job) id for seeding
};

std::vector<std::vector<JobData>>
buildRowJobs(const gan::GanModel &model, const CampaignOptions &opt)
{
    std::vector<std::vector<JobData>> rows;
    for (std::size_t r = 0; r < std::size(kRows); ++r) {
        std::vector<JobData> row;
        const auto jobs = sim::familyJobs(model, kRows[r].family);
        for (std::size_t j = 0; j < jobs.size(); ++j) {
            JobData d;
            d.spec = jobs[j];
            d.key = std::uint64_t(r) * 101 + std::uint64_t(j);
            util::Rng rng(mix64(opt.dataSeed ^ mix64(d.key)));
            d.in = sim::makeStreamedInput(d.spec, rng);
            d.w = sim::makeStreamedKernel(d.spec, rng);
            d.ref = sim::genericConvRef(d.spec, d.in, d.w);
            row.push_back(std::move(d));
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

/** Accumulates sum-of-squares so cell RMSE spans all job outputs. */
struct SqErr
{
    double acc = 0.0;
    std::uint64_t n = 0;

    void
    add(const Tensor &got, const Tensor &want)
    {
        GANACC_ASSERT(got.shape() == want.shape(),
                      "campaign output shape mismatch");
        for (std::size_t i = 0; i < got.numel(); ++i) {
            const double d =
                double(got.data()[i]) - double(want.data()[i]);
            acc += d * d;
        }
        n += got.numel();
    }

    double
    rmse() const
    {
        return n == 0 ? 0.0 : std::sqrt(acc / double(n));
    }
};

CellResult
runCell(const Column &col, const Row &row,
        const std::vector<JobData> &jobs, const FaultPlan &plan,
        const CampaignOptions &opt)
{
    CellResult cell;
    cell.arch = col.name;
    cell.row = row.name;

    obs::Span span("fault.cell", "fault",
                   "{\"arch\":\"" + col.name + "\",\"row\":\"" +
                       row.name + "\"}");
    const auto arch = buildArch(col, row, opt);
    FaultInjector injector(plan);
    // CNV-style value inspection is not part of this matrix; every
    // column here supports timing+functional runs with the hook.
    arch->setFaultHook(plan.empty() ? nullptr : &injector);

    SqErr mac_err, mem_err;
    for (const JobData &job : jobs) {
        injector.beginJob(job.spec, job.key);
        Tensor out = sim::makeOutputTensor(job.spec);
        const sim::RunStats stats =
            arch->run(job.spec, &job.in, &job.w, &out);
        mac_err.add(out, job.ref);

        if (plan.memory.flipProbPerAccess > 0.0) {
            // Storage flips are drawn from this cell's own traffic:
            // the same physical flip probability costs a streaming
            // dataflow more corrupted words.
            util::Rng mem_rng(mix64(plan.seed ^ mix64(job.key) ^
                                    mix64(std::uint64_t(
                                        std::hash<std::string>{}(
                                            col.name)))));
            const FlipCounts flips = drawFlips(
                stats, plan.memory.flipProbPerAccess, mem_rng);
            cell.memFlips += flips.total();
            Tensor in_f = job.in, w_f = job.w;
            applyBitFlips(in_f, flips.inputFlips, plan.memory.bits,
                          mem_rng);
            applyBitFlips(w_f, flips.weightFlips, plan.memory.bits,
                          mem_rng);
            Tensor out_f = sim::genericConvRef(job.spec, in_f, w_f);
            applyBitFlips(out_f, flips.outputFlips, plan.memory.bits,
                          mem_rng);
            mem_err.add(out_f, job.ref);
        }
    }
    cell.mac = injector.counters();
    cell.outputRmse = mac_err.rmse();
    cell.memRmse = mem_err.rmse();
    return cell;
}

} // namespace

CampaignResult
runResilienceCampaign(const gan::GanModel &model, const FaultPlan &plan,
                      const CampaignOptions &opt)
{
    const auto columns = buildColumns(opt.nlrSkipAblation);
    const auto row_jobs = buildRowJobs(model, opt);

    // Flatten the matrix for the sweep engine; parallelMap writes by
    // index, so the result order (and every value in it) is identical
    // under any GANACC_JOBS.
    struct CellTask
    {
        std::size_t row;
        std::size_t col;
    };
    std::vector<CellTask> tasks;
    for (std::size_t r = 0; r < std::size(kRows); ++r)
        for (std::size_t c = 0; c < columns.size(); ++c)
            tasks.push_back({r, c});

    CampaignResult result;
    result.cells = util::parallelMap(
        tasks,
        [&](const CellTask &t) {
            return runCell(columns[t.col], kRows[t.row],
                           row_jobs[t.row], plan, opt);
        },
        opt.jobs);

    // Per-architecture aggregation across the four rows.
    for (std::size_t c = 0; c < columns.size(); ++c) {
        ArchSummary s;
        s.arch = columns[c].name;
        double mac_acc = 0.0, mem_acc = 0.0;
        std::uint64_t mac_n = 0, mem_n = 0;
        for (std::size_t r = 0; r < std::size(kRows); ++r) {
            const CellResult &cell =
                result.cells[r * columns.size() + c];
            s.armed += cell.mac.armed;
            s.fired += cell.mac.fired;
            s.memFlips += cell.memFlips;
            // Cells carry equal weight: RMS of the per-cell RMSEs.
            mac_acc += cell.outputRmse * cell.outputRmse;
            ++mac_n;
            if (cell.memFlips > 0 || cell.memRmse > 0.0) {
                mem_acc += cell.memRmse * cell.memRmse;
                ++mem_n;
            }
        }
        s.maskingRate =
            s.armed == 0
                ? 0.0
                : double(s.armed - s.fired) / double(s.armed);
        s.outputRmse =
            mac_n == 0 ? 0.0 : std::sqrt(mac_acc / double(mac_n));
        s.memRmse =
            mem_n == 0 ? 0.0 : std::sqrt(mem_acc / double(mem_n));
        result.archs.push_back(std::move(s));
    }
    return result;
}

TrainerDegradation
runTrainerDegradation(const gan::GanModel &model, const FaultPlan &plan,
                      int iterations, int batch, std::uint64_t seed)
{
    GANACC_ASSERT(iterations > 0 && batch > 0,
                  "degradation run needs iterations > 0 and batch > 0");
    TrainerDegradation out;
    out.iterations = iterations;

    gan::Trainer clean(model, seed, gan::SyncMode::Deferred);
    gan::Trainer faulty(model, seed, gan::SyncMode::Deferred);
    nn::Sgd clean_d(0.01f), clean_g(0.01f);
    nn::Sgd faulty_d(0.01f), faulty_g(0.01f);
    // Twin RNG streams with the same seed: both trainers see identical
    // data and noise, so the loss gap is purely fault-induced.
    util::Rng clean_rng(mix64(seed ^ 0xda7aULL));
    util::Rng faulty_rng(mix64(seed ^ 0xda7aULL));
    util::Rng fault_rng(mix64(plan.seed ^ mix64(seed)));

    std::uint64_t param_words = 0;
    faulty.forEachParameterTensor(
        [&](Tensor &t) { param_words += t.numel(); });

    double disc_delta = 0.0, gen_delta = 0.0;
    gan::IterationLosses clean_losses{}, faulty_losses{};
    for (int it = 0; it < iterations; ++it) {
        // Weight-storage upsets accumulate between iterations.
        const std::uint64_t flips = sampleBinomial(
            fault_rng, param_words, plan.memory.flipProbPerAccess);
        if (flips > 0) {
            // Spread flips over the parameter tensors proportionally
            // to their word counts, deterministically.
            std::uint64_t remaining = flips, seen = 0;
            faulty.forEachParameterTensor([&](Tensor &t) {
                seen += t.numel();
                const std::uint64_t target =
                    param_words == 0
                        ? 0
                        : flips * seen / param_words;
                const std::uint64_t already = flips - remaining;
                const std::uint64_t here =
                    target > already ? target - already : 0;
                applyBitFlips(t, here, plan.memory.bits, fault_rng);
                remaining -= here;
            });
            out.weightFlips += flips;
        }

        const tensor::Shape4 img = model.imageShape();
        tensor::Tensor real(batch, img.d1, img.d2, img.d3);
        real.fillUniform(clean_rng, -1.0f, 1.0f);
        // The faulty twin's data RNG must advance identically.
        tensor::Tensor real_twin(batch, img.d1, img.d2, img.d3);
        real_twin.fillUniform(faulty_rng, -1.0f, 1.0f);
        clean_losses =
            clean.trainIteration(real, clean_d, clean_g, clean_rng);
        faulty_losses = faulty.trainIteration(real_twin, faulty_d,
                                              faulty_g, faulty_rng);
        disc_delta +=
            std::fabs(clean_losses.discLoss - faulty_losses.discLoss);
        gen_delta +=
            std::fabs(clean_losses.genLoss - faulty_losses.genLoss);
    }
    out.cleanFinalDiscLoss = clean_losses.discLoss;
    out.faultyFinalDiscLoss = faulty_losses.discLoss;
    out.meanAbsDiscLossDelta = disc_delta / double(iterations);
    out.meanAbsGenLossDelta = gen_delta / double(iterations);

    // Parameter divergence: RMS over every weight pair.
    double acc = 0.0;
    std::uint64_t n = 0;
    std::vector<const Tensor *> clean_params;
    clean.forEachParameterTensor(
        [&](Tensor &t) { clean_params.push_back(&t); });
    std::size_t idx = 0;
    faulty.forEachParameterTensor([&](Tensor &t) {
        const Tensor &c = *clean_params[idx++];
        for (std::size_t i = 0; i < t.numel(); ++i) {
            const double d =
                double(t.data()[i]) - double(c.data()[i]);
            acc += d * d;
        }
        n += t.numel();
    });
    out.weightRmse = n == 0 ? 0.0 : std::sqrt(acc / double(n));
    return out;
}

} // namespace fault
} // namespace ganacc
