/**
 * @file
 * Optimizer implementations.
 */

#include "nn/optimizer.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace ganacc {
namespace nn {

using tensor::Tensor;

void
RmsProp::step(std::uintptr_t param_id, Tensor &param, const Tensor &grad)
{
    GANACC_ASSERT(param.shape() == grad.shape(),
                  "rmsprop shape mismatch");
    auto it = meanSquare_.find(param_id);
    if (it == meanSquare_.end()) {
        it = meanSquare_.emplace(param_id, Tensor(grad.shape(), 0.0f))
                 .first;
    }
    Tensor &ms = it->second;
    GANACC_ASSERT(ms.shape() == grad.shape(),
                  "rmsprop state shape changed for the same param id");
    float *m = ms.data();
    float *p = param.data();
    const float *g = grad.data();
    for (std::size_t i = 0; i < grad.numel(); ++i) {
        m[i] = decay_ * m[i] + (1.0f - decay_) * g[i] * g[i];
        p[i] -= lr_ * g[i] / (std::sqrt(m[i]) + eps_);
    }
}

void
Adam::step(std::uintptr_t param_id, Tensor &param, const Tensor &grad)
{
    GANACC_ASSERT(param.shape() == grad.shape(), "adam shape mismatch");
    auto it = state_.find(param_id);
    if (it == state_.end()) {
        State fresh{Tensor(grad.shape(), 0.0f),
                    Tensor(grad.shape(), 0.0f), 0};
        it = state_.emplace(param_id, std::move(fresh)).first;
    }
    State &s = it->second;
    GANACC_ASSERT(s.m.shape() == grad.shape(),
                  "adam state shape changed for the same param id");
    s.t += 1;
    const double bc1 = 1.0 - std::pow(double(beta1_), double(s.t));
    const double bc2 = 1.0 - std::pow(double(beta2_), double(s.t));
    float *m = s.m.data();
    float *v = s.v.data();
    float *p = param.data();
    const float *g = grad.data();
    for (std::size_t i = 0; i < grad.numel(); ++i) {
        m[i] = beta1_ * m[i] + (1.0f - beta1_) * g[i];
        v[i] = beta2_ * v[i] + (1.0f - beta2_) * g[i] * g[i];
        double mhat = m[i] / bc1;
        double vhat = v[i] / bc2;
        p[i] -= float(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
}

void
clipWeights(Tensor &t, float c)
{
    GANACC_ASSERT(c > 0.0f, "clip bound must be positive");
    float *p = t.data();
    for (std::size_t i = 0; i < t.numel(); ++i)
        p[i] = std::clamp(p[i], -c, c);
}

} // namespace nn
} // namespace ganacc
