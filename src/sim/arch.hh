/**
 * @file
 * Abstract microarchitecture interface.
 *
 * Every architecture (the traditional NLR/WST/OST baselines and the
 * paper's ZFOST/ZFWST) is a PE array with a fixed unrolling and an
 * explicit per-cycle control schedule. run() is functional *and*
 * timing: when operand tensors are supplied the modeled dataflow
 * computes the real output (checked against the golden model by the
 * tests) while counting cycles, PE-slot occupancy and on-chip buffer
 * accesses; with null operands only the counts are produced.
 */

#ifndef GANACC_SIM_ARCH_HH
#define GANACC_SIM_ARCH_HH

#include <memory>
#include <string>

#include "sim/conv_spec.hh"
#include "sim/fault_hook.hh"
#include "sim/schedule_recorder.hh"
#include "sim/stats.hh"
#include "tensor/tensor.hh"

namespace ganacc {
namespace sim {

/**
 * Loop-unrolling factors (Table II notation). Each architecture reads
 * the fields relevant to its dataflow and ignores the rest.
 */
struct Unroll
{
    int pIf = 1; ///< parallel input feature maps (NLR)
    int pOf = 1; ///< parallel output feature maps (all)
    int pKx = 1; ///< parallel kernel columns (WST/ZFWST)
    int pKy = 1; ///< parallel kernel rows (WST/ZFWST)
    int pOx = 1; ///< parallel output columns (OST/ZFOST)
    int pOy = 1; ///< parallel output rows (OST/ZFOST)

    std::string str() const;
};

/** A PE-array microarchitecture executing ConvSpec jobs. */
class Architecture
{
  public:
    Architecture(std::string name, Unroll unroll)
        : name_(std::move(name)), unroll_(unroll) {}
    virtual ~Architecture() = default;

    const std::string &name() const { return name_; }
    const Unroll &unroll() const { return unroll_; }

    /** Number of PEs in the array. */
    virtual int numPes() const = 0;

    /**
     * Execute one job.
     *
     * @param spec the streamed convolution job.
     * @param in   streamed input (1,nif,ih,iw), or nullptr for
     *             timing-only.
     * @param w    streamed kernel, or nullptr for timing-only.
     * @param out  output tensor to fill (allocated by the caller via
     *             makeOutputTensor), or nullptr for timing-only.
     *
     * in/w/out must be all null or all non-null.
     */
    RunStats run(const ConvSpec &spec, const tensor::Tensor *in,
                 const tensor::Tensor *w, tensor::Tensor *out) const;

    /** Timing-only convenience. */
    RunStats
    run(const ConvSpec &spec) const
    {
        return run(spec, nullptr, nullptr, nullptr);
    }

    /**
     * Install a fault hook on the shared MAC path (nullptr detaches).
     * Non-owning; the hook must outlive every subsequent run(). Faults
     * corrupt values, never schedules, so RunStats are unaffected.
     */
    void setFaultHook(MacFaultHook *hook) { fault_ = hook; }

    MacFaultHook *faultHook() const { return fault_; }

    /**
     * Install a schedule recorder (nullptr detaches). Non-owning; must
     * outlive every subsequent run(). An armed recorder forces the
     * cycle walk — the closed-form fast path has no cycles to narrate
     * — and observes the schedule without perturbing it: RunStats stay
     * bit-identical. Not shareable across concurrently running jobs.
     */
    void setScheduleRecorder(ScheduleRecorder *rec) { sched_rec_ = rec; }

    ScheduleRecorder *scheduleRecorder() const { return sched_rec_; }

  protected:
    /**
     * The shared functional MAC path: every dataflow's inner loop
     * produces its products here. Without a hook this is exactly
     * `a * b`.
     */
    float
    macProduct(float a, float b, const MacContext &ctx) const
    {
        return fault_ ? fault_->onMac(ctx, a, b) : a * b;
    }

    /** True when the functional walk must visit ineffectual scheduled
     *  slots so the hook can corrupt their (zero) products. */
    bool
    faultVisitsIneffectual() const
    {
        return fault_ != nullptr && fault_->visitIneffectual();
    }

    virtual RunStats doRun(const ConvSpec &spec, const tensor::Tensor *in,
                           const tensor::Tensor *w,
                           tensor::Tensor *out) const = 0;

    /**
     * Closed-form fast path (sim/closed_form.hh): fill `st` with the
     * exact RunStats a timing-only walk of this job would count and
     * return true, or return false when this architecture has no
     * closed form — run() then falls back to the cycle walk. Only
     * consulted for timing-only, fault-free runs, and only when the
     * process-wide engine allows it (simEngine() != Walk).
     * Overrides must stay bit-identical to the walk on every counter;
     * tests/test_differential_fuzz.cc enforces the parity.
     */
    virtual bool
    fastStats(const ConvSpec &, RunStats &) const
    {
        return false;
    }

    /** The armed schedule recorder, or nullptr (the default). Walks
     *  test this once per site; disarmed walks are untouched. */
    ScheduleRecorder *schedRec() const { return sched_rec_; }

    std::string name_;
    Unroll unroll_;

  private:
    MacFaultHook *fault_ = nullptr;
    ScheduleRecorder *sched_rec_ = nullptr;
};

} // namespace sim
} // namespace ganacc

#endif // GANACC_SIM_ARCH_HH
