/**
 * @file
 * Thread-pool implementation.
 */

#include "util/thread_pool.hh"

#include <cstdlib>

#include "obs/metrics.hh"
#include "util/logging.hh"

namespace ganacc {
namespace util {

namespace {

/**
 * Process-wide pool telemetry. Pools are transient (parallelFor
 * spawns one per call), so the counters live here and aggregate over
 * every pool's life; a registry collector publishes them on demand —
 * the submit/steal paths only ever touch relaxed atomics.
 */
struct PoolMetrics
{
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> stolen{0};
    std::atomic<std::uint64_t> idleWaits{0};
    std::atomic<std::int64_t> queueDepth{0};
    std::atomic<std::int64_t> workers{0};

    PoolMetrics()
    {
        obs::Registry::instance().addCollector(
            [this](obs::Snapshot &snap) {
                snap.counter("ganacc_pool_submitted_total",
                             submitted.load());
                snap.counter("ganacc_pool_executed_total",
                             executed.load());
                snap.counter("ganacc_pool_stolen_total",
                             stolen.load());
                snap.counter("ganacc_pool_idle_waits_total",
                             idleWaits.load());
                snap.gauge("ganacc_pool_queue_depth",
                           queueDepth.load());
                snap.gauge("ganacc_pool_workers", workers.load());
            });
    }
};

PoolMetrics &
poolMetrics()
{
    // Leaked: counted from worker threads up to process exit.
    static PoolMetrics *m = new PoolMetrics;
    return *m;
}

} // namespace

int
hardwareJobs()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? int(n) : 1;
}

int
resolveJobs(int requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("GANACC_JOBS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return int(v);
    }
    return hardwareJobs();
}

ThreadPool::ThreadPool(int jobs)
{
    const int n = resolveJobs(jobs);
    queues_.reserve(std::size_t(n));
    for (int i = 0; i < n; ++i)
        queues_.push_back(std::make_unique<Queue>());
    workers_.reserve(std::size_t(n));
    for (int i = 0; i < n; ++i)
        workers_.emplace_back(
            [this, i] { workerLoop(std::size_t(i)); });
    poolMetrics().workers.fetch_add(n, std::memory_order_relaxed);
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lk(m_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
    poolMetrics().workers.fetch_sub(
        std::int64_t(workers_.size()), std::memory_order_relaxed);
}

void
ThreadPool::submit(std::function<void()> task)
{
    GANACC_ASSERT(task != nullptr, "null task submitted");
    std::size_t target;
    {
        std::lock_guard<std::mutex> lk(m_);
        GANACC_ASSERT(!stop_, "submit on a stopping pool");
        target = nextQueue_;
        nextQueue_ = (nextQueue_ + 1) % queues_.size();
        ++queued_;
        ++pending_;
    }
    {
        std::lock_guard<std::mutex> lk(queues_[target]->m);
        queues_[target]->tasks.push_back(std::move(task));
    }
    PoolMetrics &pm = poolMetrics();
    pm.submitted.fetch_add(1, std::memory_order_relaxed);
    pm.queueDepth.fetch_add(1, std::memory_order_relaxed);
    workCv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lk(m_);
    idleCv_.wait(lk, [this] { return pending_ == 0; });
}

bool
ThreadPool::tryPop(std::size_t self, std::function<void()> &task)
{
    // Own queue first (front: LIFO locality does not matter here, the
    // deque front is the submission order), then steal from the back
    // of the others.
    {
        Queue &q = *queues_[self];
        std::lock_guard<std::mutex> lk(q.m);
        if (!q.tasks.empty()) {
            task = std::move(q.tasks.front());
            q.tasks.pop_front();
            return true;
        }
    }
    for (std::size_t k = 1; k < queues_.size(); ++k) {
        Queue &q = *queues_[(self + k) % queues_.size()];
        std::lock_guard<std::mutex> lk(q.m);
        if (!q.tasks.empty()) {
            task = std::move(q.tasks.back());
            q.tasks.pop_back();
            poolMetrics().stolen.fetch_add(1,
                                           std::memory_order_relaxed);
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(std::size_t self)
{
    for (;;) {
        std::function<void()> task;
        if (tryPop(self, task)) {
            {
                std::lock_guard<std::mutex> lk(m_);
                --queued_;
            }
            PoolMetrics &pm = poolMetrics();
            pm.queueDepth.fetch_sub(1, std::memory_order_relaxed);
            task();
            pm.executed.fetch_add(1, std::memory_order_relaxed);
            bool drained;
            {
                std::lock_guard<std::mutex> lk(m_);
                drained = --pending_ == 0;
            }
            if (drained)
                idleCv_.notify_all();
            continue;
        }
        poolMetrics().idleWaits.fetch_add(1,
                                          std::memory_order_relaxed);
        std::unique_lock<std::mutex> lk(m_);
        workCv_.wait(lk, [this] { return stop_ || queued_ > 0; });
        if (stop_ && queued_ == 0)
            return;
    }
}

} // namespace util
} // namespace ganacc
