/**
 * @file
 * Phase-to-ConvSpec mapping.
 */

#include "sim/phase.hh"

#include "util/logging.hh"

namespace ganacc {
namespace sim {

using gan::GanModel;
using gan::LayerSpec;

std::vector<Phase>
allPhases()
{
    return {Phase::DiscForward, Phase::GenForward, Phase::DiscBackward,
            Phase::GenBackward, Phase::DiscWeight, Phase::GenWeight};
}

std::string
phaseName(Phase p)
{
    switch (p) {
      case Phase::DiscForward:
        return "D-fwd";
      case Phase::GenForward:
        return "G-fwd";
      case Phase::DiscBackward:
        return "D-bwd";
      case Phase::GenBackward:
        return "G-bwd";
      case Phase::DiscWeight:
        return "Dw";
      case Phase::GenWeight:
        return "Gw";
    }
    util::panic("unknown phase");
}

std::string
phaseFamilyName(PhaseFamily f)
{
    switch (f) {
      case PhaseFamily::D:
        return "D";
      case PhaseFamily::G:
        return "G";
      case PhaseFamily::Dw:
        return "Dw";
      case PhaseFamily::Gw:
        return "Gw";
    }
    util::panic("unknown phase family");
}

PhaseFamily
familyOf(Phase p)
{
    switch (p) {
      case Phase::DiscForward:
      case Phase::GenBackward:
        return PhaseFamily::D;
      case Phase::GenForward:
      case Phase::DiscBackward:
        return PhaseFamily::G;
      case Phase::DiscWeight:
        return PhaseFamily::Dw;
      case Phase::GenWeight:
        return PhaseFamily::Gw;
    }
    util::panic("unknown phase");
}

namespace {

/** Dense strided-conv job (D→ per discriminator layer). */
ConvSpec
sconvJob(const LayerSpec &l, const std::string &label)
{
    ConvSpec s;
    s.label = label;
    s.nif = l.inChannels;
    s.nof = l.outChannels;
    s.ih = l.inH;
    s.iw = l.inW;
    s.kh = s.kw = l.geom.kernel;
    s.stride = l.geom.stride;
    s.pad = l.geom.pad;
    s.oh = l.outH();
    s.ow = l.outW();
    return s;
}

/**
 * Zero-stuffed stride-1 job implementing a transposed convolution
 * from a (dense_c, dense_h, dense_w) map to an (out_c, out_h, out_w)
 * map with the layer's kernel.
 */
ConvSpec
tconvJob(int dense_c, int dense_h, int dense_w, int out_c, int out_h,
         int out_w, int kernel, int stride, int pad,
         const std::string &label)
{
    ConvSpec s;
    s.label = label;
    s.nif = dense_c;
    s.nof = out_c;
    s.inZeroStride = stride;
    s.inOrigH = dense_h;
    s.inOrigW = dense_w;
    // Extra trailing zeros resolve the strided conv's coverage
    // remainder so the T-CONV lands exactly on the paired map size.
    int natural_h = (dense_h - 1) * stride + kernel - 2 * pad;
    int natural_w = (dense_w - 1) * stride + kernel - 2 * pad;
    int extra_h = out_h - natural_h;
    int extra_w = out_w - natural_w;
    GANACC_ASSERT(extra_h >= 0 && extra_h < stride && extra_w >= 0 &&
                      extra_w < stride,
                  "inconsistent T-CONV geometry in ", label);
    s.ih = (dense_h - 1) * stride + 1 + extra_h;
    s.iw = (dense_w - 1) * stride + 1 + extra_w;
    s.kh = s.kw = kernel;
    s.stride = 1;
    s.pad = kernel - 1 - pad;
    GANACC_ASSERT(s.pad >= 0, "T-CONV pad exceeds kernel in ", label);
    s.oh = out_h;
    s.ow = out_w;
    return s;
}

} // namespace

std::vector<ConvSpec>
phaseJobs(const GanModel &model, Phase p)
{
    std::vector<ConvSpec> jobs;
    auto tag = [&](const std::string &what, std::size_t i) {
        return model.name + " " + phaseName(p) + " L" + std::to_string(i) +
               " " + what;
    };

    switch (p) {
      case Phase::DiscForward:
        for (std::size_t i = 0; i < model.disc.size(); ++i)
            jobs.push_back(sconvJob(model.disc[i], tag("S-CONV", i)));
        break;

      case Phase::GenForward:
        // Generators are usually pure T-CONV stacks (the Fig. 1
        // inverse architecture) but encoder-decoder generators
        // (Context Encoders, the system behind the paper's cGAN) mix
        // strided layers in; each layer streams per its own kind.
        for (std::size_t i = 0; i < model.gen.size(); ++i) {
            const LayerSpec &l = model.gen[i];
            if (l.kind == nn::ConvKind::Strided)
                jobs.push_back(sconvJob(l, tag("S-CONV", i)));
            else
                jobs.push_back(tconvJob(l.inChannels, l.inH, l.inW,
                                        l.outChannels, l.outH(),
                                        l.outW(), l.geom.kernel,
                                        l.geom.stride, l.geom.pad,
                                        tag("T-CONV", i)));
        }
        break;

      case Phase::DiscBackward:
        // delta^l at layer l's output propagates to delta at layer
        // l's input, for every layer except the first (1 <= l < L).
        for (std::size_t i = model.disc.size(); i-- > 1;) {
            const LayerSpec &l = model.disc[i];
            jobs.push_back(tconvJob(l.outChannels, l.outH(), l.outW(),
                                    l.inChannels, l.inH, l.inW,
                                    l.geom.kernel, l.geom.stride,
                                    l.geom.pad, tag("T-CONV", i)));
        }
        break;

      case Phase::GenBackward:
        // Adjoints: a T-CONV layer's backward-error is a plain
        // S-CONV; a strided layer's is a zero-stuffed T-CONV (same as
        // the discriminator's backward).
        for (std::size_t i = model.gen.size(); i-- > 1;) {
            const LayerSpec &l = model.gen[i];
            if (l.kind == nn::ConvKind::Strided) {
                jobs.push_back(tconvJob(l.outChannels, l.outH(),
                                        l.outW(), l.inChannels, l.inH,
                                        l.inW, l.geom.kernel,
                                        l.geom.stride, l.geom.pad,
                                        tag("T-CONV", i)));
                continue;
            }
            ConvSpec s;
            s.label = tag("S-CONV", i);
            s.nif = l.outChannels;
            s.nof = l.inChannels;
            s.ih = l.outH();
            s.iw = l.outW();
            s.kh = s.kw = l.geom.kernel;
            s.stride = l.geom.stride;
            s.pad = l.geom.pad;
            s.oh = l.inH;
            s.ow = l.inW;
            jobs.push_back(s);
        }
        break;

      case Phase::DiscWeight:
        // dW = input data correlated with the stride-dilated error
        // map acting as kernel (Fig. 6(c)); four-dimension output.
        for (std::size_t i = 0; i < model.disc.size(); ++i) {
            const LayerSpec &l = model.disc[i];
            ConvSpec s;
            s.label = tag("W-CONV", i);
            s.nif = l.inChannels;
            s.nof = l.outChannels;
            s.ih = l.inH;
            s.iw = l.inW;
            s.kh = (l.outH() - 1) * l.geom.stride + 1;
            s.kw = (l.outW() - 1) * l.geom.stride + 1;
            s.kZeroStride = l.geom.stride;
            s.kOrigH = l.outH();
            s.kOrigW = l.outW();
            s.stride = 1;
            s.pad = l.geom.pad;
            s.oh = s.ow = l.geom.kernel;
            s.fourDimOutput = true;
            jobs.push_back(s);
        }
        break;

      case Phase::GenWeight:
        // T-CONV layers: dW = the zero-inserted input map correlated
        // with the dense error map acting as kernel (Fig. 6(d)).
        // Strided layers in an encoder-decoder generator use the
        // discriminator form instead (dilated-error kernel).
        for (std::size_t i = 0; i < model.gen.size(); ++i) {
            const LayerSpec &l = model.gen[i];
            ConvSpec s;
            s.label = tag("W-CONV", i);
            s.nif = l.inChannels;
            s.nof = l.outChannels;
            s.fourDimOutput = true;
            if (l.kind == nn::ConvKind::Strided) {
                s.ih = l.inH;
                s.iw = l.inW;
                s.kh = (l.outH() - 1) * l.geom.stride + 1;
                s.kw = (l.outW() - 1) * l.geom.stride + 1;
                s.kZeroStride = l.geom.stride;
                s.kOrigH = l.outH();
                s.kOrigW = l.outW();
                s.stride = 1;
                s.pad = l.geom.pad;
                s.oh = s.ow = l.geom.kernel;
                jobs.push_back(s);
                continue;
            }
            int natural =
                (l.inH - 1) * l.geom.stride + l.geom.kernel -
                2 * l.geom.pad;
            int extra = l.outH() - natural;
            s.ih = (l.inH - 1) * l.geom.stride + 1 + extra;
            s.iw = (l.inW - 1) * l.geom.stride + 1 + extra;
            s.inZeroStride = l.geom.stride;
            s.inOrigH = l.inH;
            s.inOrigW = l.inW;
            s.kh = l.outH();
            s.kw = l.outW();
            s.stride = 1;
            s.pad = l.geom.kernel - 1 - l.geom.pad;
            s.oh = s.ow = l.geom.kernel;
            jobs.push_back(s);
        }
        break;
    }
    for (auto &j : jobs)
        j.validate();
    return jobs;
}

std::vector<ConvSpec>
familyJobs(const GanModel &model, PhaseFamily f)
{
    std::vector<ConvSpec> jobs;
    auto append = [&](Phase p) {
        auto more = phaseJobs(model, p);
        jobs.insert(jobs.end(), more.begin(), more.end());
    };
    switch (f) {
      case PhaseFamily::D:
        append(Phase::DiscForward);
        append(Phase::GenBackward);
        break;
      case PhaseFamily::G:
        append(Phase::GenForward);
        append(Phase::DiscBackward);
        break;
      case PhaseFamily::Dw:
        append(Phase::DiscWeight);
        break;
      case PhaseFamily::Gw:
        append(Phase::GenWeight);
        break;
    }
    return jobs;
}

std::uint64_t
totalEffectiveMacs(const std::vector<ConvSpec> &jobs)
{
    std::uint64_t total = 0;
    for (const auto &j : jobs)
        total += j.effectiveMacs();
    return total;
}

std::uint64_t
totalDenseMacs(const std::vector<ConvSpec> &jobs)
{
    std::uint64_t total = 0;
    for (const auto &j : jobs)
        total += j.denseMacs();
    return total;
}

} // namespace sim
} // namespace ganacc
