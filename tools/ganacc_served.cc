/**
 * @file
 * ganacc-served — the simulation-as-a-service daemon.
 *
 * Turns the one-shot simulator into a long-lived evaluation service:
 * clients submit (architecture, unrolling, job) requests over a
 * Unix-domain socket (or stdin/stdout in --pipe mode, which is what
 * CI's golden replay uses) and get canonical RunStats back, served
 * from the in-memory cycle cache, the persistent result store
 * (--cache-dir / GANACC_CACHE_DIR), or a fresh cycle walk — always
 * bit-identical to direct in-process simulation.
 *
 *   ganacc-served --socket /tmp/ganacc.sock --cache-dir ~/.ganacc
 *   ganacc-served --pipe --jobs 1 --deterministic < reqs.jsonl
 *   ganacc-served --tcp 127.0.0.1:7741 --announce shard0.addr \
 *       --fleet 127.0.0.1:7741,127.0.0.1:7742 --shard-index 0 \
 *       --shed --cache-dir /var/ganacc/shard0
 *
 * The third form is a fleet shard (docs/serving.md "Fleet"): TCP
 * transport, the shared shard map answered to {"fleet":true} probes,
 * and shed-mode admission so a saturated queue answers `overloaded`
 * instead of blocking. --announce writes the actually bound address
 * (resolving a ":0" port) once listening, which is what scripts wait
 * on.
 *
 * SIGTERM/SIGINT stop the socket server cleanly: stop accepting,
 * finish live connections, drain the engine, remove the socket file.
 * That drain path is also the fleet's rolling-restart contract: a
 * SIGTERMed shard finishes every buffered request before its
 * connections close, so clients lose a connection, never a response.
 */

#include <atomic>
#include <fstream>
#include <iostream>

#include "fleet/topology.hh"
#include "obs/telemetry.hh"
#include "serve/daemon.hh"
#include "serve/engine.hh"
#include "util/args.hh"
#include "util/logging.hh"

int
main(int argc, char **argv)
try {
    using namespace ganacc;
    util::ArgParser args(argc, argv);
    const std::string socket_path = args.getString(
        "socket", "", "Unix-domain socket path to listen on");
    const std::string tcp_addr = args.getString(
        "tcp", "",
        "TCP host:port to listen on (\":0\" picks a free port)");
    const std::string announce = args.getString(
        "announce", "",
        "write the bound address to FILE once listening (TCP mode)");
    const std::string fleet_csv = args.getString(
        "fleet", "",
        "comma-separated shard list this daemon is part of "
        "(answered to fleet probes)");
    const int shard_index = args.getInt(
        "shard-index", -1, "this daemon's index in --fleet");
    const int vnodes = args.getInt(
        "vnodes", 64, "ring virtual nodes per shard (--fleet)");
    const int rf = args.getInt(
        "rf", 2, "fleet replication factor (--fleet)");
    const bool shed = args.getFlag(
        "shed",
        "answer `overloaded` at a full queue instead of blocking "
        "the reader (fleet admission control)");
    const bool pipe_mode = args.getFlag(
        "pipe", "serve stdin -> stdout instead of a socket");
    const std::string cache_dir = args.getCacheDir();
    const int jobs = args.getJobs();
    const int max_queue = args.getInt(
        "max-queue", 256,
        "in-flight request bound (backpressure threshold)");
    const bool deterministic = args.getFlag(
        "deterministic",
        "report latencyUs as 0 so responses byte-compare against "
        "goldens");
    const bool quiet =
        args.getFlag("quiet", "suppress the shutdown summary");
    const std::string metrics_dump = args.getString(
        "metrics-dump", "",
        "file SIGUSR1 dumps a Prometheus metrics snapshot to "
        "(socket and TCP modes; live scrapes go through the "
        "{\"metrics\":true} probe instead)");
    const std::string trace_path = args.getTracePath();
    const bool trace_live = args.getFlag(
        "trace-live",
        "buffer spans for {\"trace-drain\":true} probes instead of "
        "writing a trace file at shutdown");
    const double trace_sample = args.getDouble(
        "trace-sample", -1.0,
        "head-sampling rate for request traces, 0..1 (hash of the "
        "trace id, so every fleet process agrees; default: "
        "GANACC_TRACE_SAMPLE or 1)");
    const int trace_tail_us = args.getInt(
        "trace-tail-us", 0,
        "tail sampling: always keep spans of requests at least this "
        "slow, in microseconds (0 = off)");
    if (args.helpRequested()) {
        args.usage(std::cout);
        return 0;
    }
    args.finish();
    const int transports = int(pipe_mode) +
                           int(!socket_path.empty()) +
                           int(!tcp_addr.empty());
    if (transports != 1)
        util::fatal("pass exactly one of --pipe, --socket PATH or "
                    "--tcp HOST:PORT");
    if (max_queue <= 0)
        util::fatal("--max-queue must be positive");
    if (!announce.empty() && tcp_addr.empty())
        util::fatal("--announce needs --tcp");
    if ((shard_index >= 0) != !fleet_csv.empty())
        util::fatal("--fleet and --shard-index go together");

    // Telemetry: sinks come from env (GANACC_TRACE / GANACC_EVENTS /
    // GANACC_METRICS) or --trace; status goes to stderr via inform so
    // the JSONL response stream on stdout stays clean in --pipe mode.
    obs::TelemetryConfig tcfg = obs::configFromEnv();
    if (!trace_path.empty())
        tcfg.tracePath = trace_path;
    if (trace_live)
        tcfg.traceLive = true;
    if (trace_sample >= 0.0) {
        if (trace_sample > 1.0)
            util::fatal("--trace-sample must be in [0, 1]");
        tcfg.traceSampleRate = trace_sample;
    }
    if (trace_tail_us < 0)
        util::fatal("--trace-tail-us must be non-negative");
    if (trace_tail_us > 0)
        tcfg.traceTailUs = std::uint64_t(trace_tail_us);
    if (tcfg.any())
        obs::enableTelemetry(tcfg);

    serve::EngineOptions opts;
    opts.jobs = jobs;
    opts.maxQueue = std::size_t(max_queue);
    opts.cacheDir = cache_dir;
    opts.deterministic = deterministic;
    opts.shedOverload = shed;
    if (!fleet_csv.empty()) {
        fleet::Topology topo =
            fleet::parseShardList(fleet_csv, vnodes, rf);
        if (shard_index >= int(topo.shards.size()))
            util::fatal("--shard-index ", shard_index,
                        " out of range for ", topo.shards.size(),
                        " shards");
        topo.self = shard_index;
        opts.fleetJson = fleet::toJson(topo);
    }
    serve::Engine engine(opts);

    serve::ServeTotals totals;
    if (pipe_mode) {
        totals = serve::runPipeServer(std::cin, std::cout, engine);
        engine.drain();
    } else if (!tcp_addr.empty()) {
        if (!metrics_dump.empty())
            obs::installMetricsDumpSignal(metrics_dump);
        std::atomic<bool> stop{false};
        serve::installStopHandlers(stop);
        std::string bound;
        const int listener = serve::listenTcp(tcp_addr, &bound);
        if (!announce.empty()) {
            std::ofstream os(announce, std::ios::trunc);
            if (!os)
                util::fatal("cannot write ", announce);
            os << bound << "\n";
        }
        std::cerr << "ganacc-served: listening on tcp " << bound
                  << " (" << engine.summary() << ")\n";
        totals = serve::serveListener(listener, engine, stop);
    } else {
        if (!metrics_dump.empty())
            obs::installMetricsDumpSignal(metrics_dump);
        std::atomic<bool> stop{false};
        serve::installStopHandlers(stop);
        std::cerr << "ganacc-served: listening on " << socket_path
                  << " (" << engine.summary() << ")\n";
        totals = serve::runSocketServer(socket_path, engine, stop);
    }
    if (!quiet)
        std::cerr << "ganacc-served: " << totals.lines
                  << " requests in, " << totals.responses
                  << " responses out; " << engine.summary() << "\n";
    obs::shutdownTelemetry();
    return 0;
} catch (const ganacc::util::FatalError &e) {
    std::cerr << "ganacc-served: " << e.what() << "\n";
    return 2;
}
