/**
 * @file
 * Pipeline organization models.
 */

#include "sched/pipeline.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace ganacc {
namespace sched {

using sim::Phase;

std::string
updateKindName(UpdateKind k)
{
    return k == UpdateKind::Discriminator ? "D-update" : "G-update";
}

std::vector<Phase>
updatePhaseSequence(UpdateKind k)
{
    if (k == UpdateKind::Discriminator) {
        // Fig. 8(a): generate fake, forward real+fake, backward
        // real+fake errors, two weight-gradient passes.
        return {Phase::GenForward,  Phase::DiscForward,
                Phase::DiscForward, Phase::DiscBackward,
                Phase::DiscBackward, Phase::DiscWeight,
                Phase::DiscWeight};
    }
    // Fig. 8(b).
    return {Phase::GenForward, Phase::DiscForward, Phase::DiscBackward,
            Phase::GenBackward, Phase::GenWeight};
}

namespace {

/** The per-phase resource of Fig. 9: T-ARCH, S-ARCH or W-ARCH. */
std::string
resourceOf(Phase p)
{
    switch (sim::familyOf(p)) {
      case sim::PhaseFamily::G:
        return "T-ARCH"; // T-CONV phases
      case sim::PhaseFamily::D:
        return "S-ARCH"; // S-CONV phases
      case sim::PhaseFamily::Dw:
      case sim::PhaseFamily::Gw:
        return "W-ARCH";
    }
    util::panic("unknown family");
}

} // namespace

double
PipelineReport::utilizationOf(const std::string &resource) const
{
    for (const auto &r : resources)
        if (r.resource == resource)
            return r.utilization();
    util::panic("no such pipeline resource: ", resource);
}

PipelineReport
perPhasePipeline(UpdateKind k)
{
    PipelineReport rep;
    int t = 0, s = 0, w = 0;
    for (Phase p : updatePhaseSequence(k)) {
        std::string r = resourceOf(p);
        if (r == "T-ARCH")
            ++t;
        else if (r == "S-ARCH")
            ++s;
        else
            ++w;
    }
    // In steady state each loop iteration occupies max(t, s, w) slots
    // on every resource; the difference is bubbles.
    rep.slotsPerLoop = std::max({t, s, w});
    double total = double(rep.slotsPerLoop);
    rep.resources = {{"T-ARCH", double(t), total},
                     {"S-ARCH", double(s), total},
                     {"W-ARCH", double(w), total}};
    return rep;
}

PipelineReport
timeMultiplexed(UpdateKind k, double w_speed_ratio)
{
    GANACC_ASSERT(w_speed_ratio > 0.0 && w_speed_ratio <= 1.0,
                  "W-ARCH speed ratio must be in (0, 1]");
    PipelineReport rep;
    int st = 0, w = 0;
    for (Phase p : updatePhaseSequence(k)) {
        if (resourceOf(p) == "W-ARCH")
            ++w;
        else
            ++st;
    }
    // ST-ARCH paces the loop: `st` full-speed slots. The slowed
    // W-ARCH needs w / ratio slot-equivalents; buffering (Fig. 10
    // dashed lines) lets it spread that work across the loop.
    double w_busy = double(w) / w_speed_ratio;
    double loop = std::max(double(st), w_busy);
    rep.slotsPerLoop = int(std::ceil(loop));
    rep.resources = {
        {"ST-ARCH", double(st), loop},
        {"W-ARCH", std::min(w_busy, loop), loop},
    };
    return rep;
}

} // namespace sched
} // namespace ganacc
