/**
 * @file
 * Minimal istream/ostream adapters over POSIX file descriptors.
 *
 * The pipe-mode SUT runs serve::runPipeServer — whose interface is
 * std::istream/std::ostream — over real pipe(2) descriptors, so the
 * conformance harness exercises the same EOF and flush behaviour a
 * daemon behind a shell pipeline sees, not an in-memory stringstream.
 * Reads and writes retry on EINTR (the harness raises signals in the
 * drain tests) and the output buffer is unbuffered-by-line: every
 * flush() lands the bytes with write(2) before returning.
 */

#ifndef GANACC_CONFORM_FDSTREAM_HH
#define GANACC_CONFORM_FDSTREAM_HH

#include <cerrno>
#include <istream>
#include <ostream>
#include <streambuf>

#include <unistd.h>

namespace ganacc {
namespace conform {

/** Read-side streambuf over an fd (non-owning). */
class FdInBuf : public std::streambuf
{
  public:
    explicit FdInBuf(int fd) : fd_(fd) {}

  protected:
    int_type
    underflow() override
    {
        ssize_t n;
        do {
            n = ::read(fd_, buf_, sizeof buf_);
        } while (n < 0 && errno == EINTR);
        if (n <= 0)
            return traits_type::eof();
        setg(buf_, buf_, buf_ + n);
        return traits_type::to_int_type(buf_[0]);
    }

  private:
    int fd_;
    char buf_[4096];
};

/** Write-side streambuf over an fd (non-owning, write-through). */
class FdOutBuf : public std::streambuf
{
  public:
    explicit FdOutBuf(int fd) : fd_(fd) {}

  protected:
    int_type
    overflow(int_type ch) override
    {
        if (ch == traits_type::eof())
            return traits_type::not_eof(ch);
        const char c = traits_type::to_char_type(ch);
        return writeAll(&c, 1) ? ch : traits_type::eof();
    }

    std::streamsize
    xsputn(const char *s, std::streamsize n) override
    {
        return writeAll(s, std::size_t(n)) ? n : 0;
    }

  private:
    bool
    writeAll(const char *p, std::size_t n)
    {
        std::size_t off = 0;
        while (off < n) {
            ssize_t w = ::write(fd_, p + off, n - off);
            if (w < 0 && errno == EINTR)
                continue;
            if (w <= 0)
                return false;
            off += std::size_t(w);
        }
        return true;
    }

    int fd_;
};

/** std::istream over an fd. */
class FdIStream : public std::istream
{
  public:
    explicit FdIStream(int fd) : std::istream(&buf_), buf_(fd) {}

  private:
    FdInBuf buf_;
};

/** std::ostream over an fd. */
class FdOStream : public std::ostream
{
  public:
    explicit FdOStream(int fd) : std::ostream(&buf_), buf_(fd) {}

  private:
    FdOutBuf buf_;
};

} // namespace conform
} // namespace ganacc

#endif // GANACC_CONFORM_FDSTREAM_HH
