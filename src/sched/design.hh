/**
 * @file
 * Whole-accelerator design points and their end-to-end timing under
 * the two training algorithms.
 *
 * A design is either *unique* (one architecture owning every PE and
 * executing all six phases back-to-back) or a *combination* (an
 * ST bank for the S-CONV/T-CONV phases plus a W bank for the W-CONV
 * phases, split 5:2 per eq. 8).
 *
 * Timing rules (Section VI-B):
 *  - Per sample, a discriminator update runs 5 ST-phase passes
 *    (G→, 2x D→, 2x D←) and 2 W passes (2x Dw); a generator update
 *    runs 4 ST passes and 1 W pass (Fig. 8).
 *  - Under the original synchronized algorithm the banks serialize:
 *    only one is ever busy, so the update takes ST + W cycles.
 *  - Under deferred synchronization the per-sample loops let the W
 *    bank overlap the ST bank: the update takes max(ST, W) cycles.
 *  - A unique design cannot overlap with itself: both algorithms take
 *    ST + W cycles, which is why Fig. 17's unique bars do not move.
 */

#ifndef GANACC_SCHED_DESIGN_HH
#define GANACC_SCHED_DESIGN_HH

#include <memory>
#include <string>

#include "core/unrolling.hh"
#include "gan/models.hh"
#include "sim/arch.hh"
#include "sim/phase.hh"
#include "sim/stats.hh"

namespace ganacc {
namespace sched {

/** The training-algorithm variants of Fig. 17. */
enum class SyncPolicy
{
    Synchronized,
    Deferred,
};

std::string syncPolicyName(SyncPolicy p);

/** One accelerator design point. */
class Design
{
  public:
    /** A unique design: one architecture runs every phase. */
    static Design unique(core::ArchKind kind, int total_pes);

    /** A combination: st_kind on the ST bank, w_kind on the W bank,
     *  PEs split 5:2 (eq. 8). */
    static Design combo(core::ArchKind st_kind, core::ArchKind w_kind,
                        int total_pes);

    /** A combination with an explicit PE split — for ablating the
     *  eq. (8) ratio. */
    static Design comboWithSplit(core::ArchKind st_kind,
                                 core::ArchKind w_kind, int st_pes,
                                 int w_pes);

    const std::string &name() const { return name_; }
    bool isCombo() const { return isCombo_; }
    int totalPes() const { return totalPes_; }
    int stPes() const { return stPes_; }
    int wPes() const { return wPes_; }
    core::ArchKind stKind() const { return stKind_; }
    core::ArchKind wKind() const { return wKind_; }

  private:
    std::string name_;
    bool isCombo_ = false;
    int totalPes_ = 0;
    int stPes_ = 0;
    int wPes_ = 0;
    core::ArchKind stKind_ = core::ArchKind::ZFOST;
    core::ArchKind wKind_ = core::ArchKind::ZFWST;
};

/** Per-bank cycles of one network update for one sample. */
struct BankCycles
{
    std::uint64_t st = 0; ///< cycles of the 5 (or 4) ST passes
    std::uint64_t w = 0;  ///< cycles of the 2 (or 1) W passes

    std::uint64_t
    serial() const
    {
        return st + w;
    }

    std::uint64_t
    overlapped() const
    {
        return std::max(st, w);
    }
};

/** Timing report for one (design, model, update) combination. */
struct UpdateTiming
{
    BankCycles bank;
    std::uint64_t syncCycles = 0;     ///< per-sample, synchronized
    std::uint64_t deferredCycles = 0; ///< per-sample, deferred
    sim::RunStats stStats;            ///< accumulated ST-bank stats
    sim::RunStats wStats;             ///< accumulated W-bank stats
};

/** Cycles one phase pass takes on one architecture (all its layer
 *  jobs back-to-back), with accumulated stats. */
sim::RunStats phaseStats(const sim::Architecture &arch,
                         const gan::GanModel &model, sim::Phase p);

/** Per-sample timing of a discriminator update on a design. */
UpdateTiming discriminatorUpdateTiming(const Design &design,
                                       const gan::GanModel &model);

/** Per-sample timing of a generator update on a design. */
UpdateTiming generatorUpdateTiming(const Design &design,
                                   const gan::GanModel &model);

/** Per-sample cycles of a full training iteration (one D update plus
 *  one G update) under a sync policy. */
std::uint64_t iterationCycles(const Design &design,
                              const gan::GanModel &model,
                              SyncPolicy policy);

/**
 * Throughput in effective GOP/s of a full iteration at the given
 * clock: useful (non-zero) operations divided by time. Two ops per
 * MAC, as hardware papers count.
 */
double iterationGops(const Design &design, const gan::GanModel &model,
                     SyncPolicy policy, double frequency_hz);

} // namespace sched
} // namespace ganacc

#endif // GANACC_SCHED_DESIGN_HH
