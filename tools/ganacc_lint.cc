/**
 * @file
 * ganacc-lint — static verifier for network specs, dataflow schedules
 * and fixed-point ranges (docs/static_analysis.md).
 *
 * Validates designs without simulating them: network shape/chaining
 * legality, every phase's streamed-job geometry, fixed-point range
 * analysis, buffer capacity, and (with --arch) unrolling legality plus
 * schedule-hazard analysis (GA-SCHED-*) per phase family.
 * --check-bounds additionally simulates every job and cross-checks the
 * cycle walk against the closed-form bounds; --check-schedule walks
 * every job with the schedule recorder armed and diffs the recorded
 * access/occupancy relation against the static prediction.
 *
 * Exit codes: 0 clean, 1 diagnostics at or above --fail-on, 2 usage
 * error. --format=json emits one JSON object per model, one per line.
 */

#include <algorithm>
#include <cctype>
#include <iostream>
#include <string>
#include <vector>

#include "core/unrolling.hh"
#include "gan/models.hh"
#include "sim/closed_form.hh"
#include "sim/phase.hh"
#include "util/args.hh"
#include "util/logging.hh"
#include "util/strings.hh"
#include "verify/schedule_analysis.hh"
#include "verify/static_bounds.hh"
#include "verify/verifier.hh"

namespace {

using namespace ganacc;

std::string
lowered(std::string s)
{
    std::string out;
    for (char c : s)
        if (c != '-' && c != '_')
            out.push_back(char(std::tolower(unsigned(c))));
    return out;
}

std::vector<gan::GanModel>
selectModels(const std::string &name)
{
    std::vector<gan::GanModel> all = gan::allModels();
    all.push_back(gan::makeContextEncoder());
    if (lowered(name) == "all")
        return all;
    for (gan::GanModel &m : all)
        if (lowered(m.name) == lowered(name))
            return {std::move(m)};
    util::fatal("unknown model '", name,
                "' (try dcgan, mnist-gan, cgan, contextencoder, all)");
}

bool
parseArchKind(const std::string &name, core::ArchKind &kind)
{
    for (core::ArchKind k : core::allArchKinds())
        if (lowered(core::archKindName(k)) == lowered(name)) {
            kind = k;
            return true;
        }
    return false;
}

bool
parseBaselineKind(const std::string &name, verify::BaselineKind &kind)
{
    if (lowered(name) == "cnv") {
        kind = verify::BaselineKind::CNV;
        return true;
    }
    if (lowered(name) == "rst") {
        kind = verify::BaselineKind::RST;
        return true;
    }
    return false;
}

core::BankRole
familyRole(sim::PhaseFamily f)
{
    return (f == sim::PhaseFamily::Dw || f == sim::PhaseFamily::Gw)
               ? core::BankRole::W
               : core::BankRole::ST;
}

/** True when the walks (and so the schedule derivations) assert on
 *  this job under the zero-free dataflows. */
bool
zeroFreeUnwalkable(core::ArchKind kind, const sim::ConvSpec &job)
{
    return (kind == core::ArchKind::ZFOST ||
            kind == core::ArchKind::ZFWST) &&
           job.inZeroStride > 1 && job.stride != 1;
}

/** Schedule checks per phase family with the published unrolling. */
void
lintSchedule(const gan::GanModel &model, core::ArchKind kind, int st_pes,
             int w_pes, bool check_bounds, bool check_schedule,
             const verify::PortBudget &port_budget,
             verify::Report &report)
{
    using sim::PhaseFamily;
    for (PhaseFamily f : {PhaseFamily::D, PhaseFamily::G,
                          PhaseFamily::Dw, PhaseFamily::Gw}) {
        const core::BankRole role = familyRole(f);
        const int budget = role == core::BankRole::W ? w_pes : st_pes;
        sim::Unroll u = core::paperUnroll(kind, role, f, budget);
        std::vector<sim::ConvSpec> jobs = sim::familyJobs(model, f);
        verify::checkUnroll(kind, u, jobs, report);

        // Symbolic schedule-hazard analysis: cheap enough to run on
        // every lint (no cycles walked).
        for (const sim::ConvSpec &job : jobs) {
            if (zeroFreeUnwalkable(kind, job))
                continue; // already an error from checkConvSpec
            verify::checkSchedule(kind, u, job, port_budget, report);
            if (check_schedule)
                verify::checkScheduleAgainstShadow(kind, u, job,
                                                  report);
        }

        if (!check_bounds)
            continue;
        auto arch = core::makeArch(kind, u);
        // The bounds check compares closed form against the cycle
        // walk; force the walk engine, else the fast path would make
        // the comparison circular (closed form vs itself).
        sim::ScopedSimEngine walk(sim::SimEngine::Walk);
        for (const sim::ConvSpec &job : jobs) {
            if (zeroFreeUnwalkable(kind, job))
                continue; // already an error from checkConvSpec
            verify::checkBoundsAgainstSim(kind, u, job, arch->run(job),
                                          report);
        }
    }
}

/** Baseline (CNV/RST) schedule checks with the bench configurations:
 *  16 lanes per channel group, the budget spread over channels. */
void
lintBaselineSchedule(const gan::GanModel &model,
                     verify::BaselineKind kind, int st_pes,
                     bool check_schedule, verify::Report &report)
{
    sim::Unroll u;
    if (kind == verify::BaselineKind::CNV) {
        u.pIf = 16;
        u.pOf = std::max(1, st_pes / 16);
    } else {
        u.pKy = 4;
        u.pOy = 4;
        u.pOf = std::max(1, st_pes / 16);
    }
    using sim::PhaseFamily;
    for (PhaseFamily f : {PhaseFamily::D, PhaseFamily::G,
                          PhaseFamily::Dw, PhaseFamily::Gw}) {
        std::vector<sim::ConvSpec> jobs = sim::familyJobs(model, f);
        verify::checkBaselineUnroll(kind, u, jobs, report);
        if (!check_schedule)
            continue;
        // No static model exists for the baselines: walk each job with
        // the recorder armed and check the dynamic envelope instead
        // (CNV builds functional operands, so this is the slow path).
        for (const sim::ConvSpec &job : jobs)
            verify::checkBaselineSchedule(kind, u, job, report);
    }
}

void
printText(const gan::GanModel &model, const verify::Report &report,
          std::ostream &os)
{
    os << "== " << model.name << " ==\n";
    report.renderText(os);
    os << (report.ok() ? "clean" : "ILLEGAL") << ": "
       << report.errorCount() << " error(s), " << report.warningCount()
       << " warning(s), " << report.noteCount() << " note(s)\n";
}

void
printJson(const gan::GanModel &model, const verify::Report &report,
          std::ostream &os)
{
    os << "{\"model\":\"" << util::escapeJson(model.name)
       << "\",\"report\":";
    report.renderJson(os);
    os << "}\n";
}

} // namespace

int
main(int argc, char **argv)
try {
    util::ArgParser args(argc, argv);
    const std::string model_name = args.getString(
        "model", "all",
        "network to lint (dcgan, mnist-gan, cgan, contextencoder, all)");
    const std::string format =
        args.getString("format", "text", "output format (text, json)");
    const std::string arch_name = args.getString(
        "arch", "",
        "also lint a dataflow's unrolling "
        "(nlr, wst, ost, zfost, zfwst, cnv, rst)");
    const int st_pes =
        args.getInt("st-pes", 1200, "ST-bank PE budget for --arch");
    const int w_pes =
        args.getInt("w-pes", 480, "W-bank PE budget for --arch");
    const bool check_bounds = args.getFlag(
        "check-bounds",
        "simulate every job and cross-check the closed-form bounds "
        "(needs --arch)");
    const bool check_schedule = args.getFlag(
        "check-schedule",
        "walk every job with the schedule recorder armed and diff "
        "against the static schedule relation (needs --arch)");
    const int port_budget = args.getInt(
        "port-budget", 0,
        "per-cycle word budget for each buffer port in the schedule "
        "checks (0: the PE-array width; 2x for the double-buffered "
        "weight port)");
    const bool no_ranges =
        args.getFlag("no-ranges", "skip fixed-point range analysis");
    const bool no_buffers =
        args.getFlag("no-buffers", "skip buffer capacity checks");
    const std::string weight_model = args.getString(
        "weight-model", "kaiming",
        "range-analysis weight model (kaiming, fixed)");
    const double weight_bound = args.getDouble(
        "weight-bound", 0.25, "|w| bound in fixed weight model");
    const double sigma_k =
        args.getDouble("sigma-k", 6.0, "peak = sigma-k * RMS");
    const int frac_bits =
        args.getInt("frac-bits", 8, "fixed-point fraction bits");
    const int w_pof = args.getInt(
        "w-pof", 0, "gradient-bank width for buffer checks (0: eq. 7)");
    const int bram = args.getInt(
        "bram", 0, "Block-RAM budget in BRAM36 (0: XCVU9P)");
    const std::string fail_on = args.getString(
        "fail-on", "error", "lowest severity that fails (error, warning)");
    if (args.helpRequested()) {
        args.usage(std::cout);
        return 0;
    }
    args.finish();

    if (format != "text" && format != "json")
        util::fatal("unknown --format '", format, "'");
    if (fail_on != "error" && fail_on != "warning")
        util::fatal("unknown --fail-on '", fail_on, "'");
    core::ArchKind kind = core::ArchKind::ZFOST;
    verify::BaselineKind baseline = verify::BaselineKind::CNV;
    const bool have_arch = !arch_name.empty();
    bool is_baseline = false;
    if (have_arch && !parseArchKind(arch_name, kind)) {
        if (parseBaselineKind(arch_name, baseline))
            is_baseline = true;
        else
            util::fatal("unknown --arch '", arch_name, "'");
    }
    if (check_bounds && !have_arch)
        util::fatal("--check-bounds needs --arch");
    if (check_bounds && is_baseline)
        util::fatal("--check-bounds: no closed-form bounds for ",
                    arch_name,
                    " (CNV skips by value inspection; RST is gated)");
    if (check_schedule && !have_arch)
        util::fatal("--check-schedule needs --arch");
    if (port_budget < 0)
        util::fatal("--port-budget must be >= 0");
    verify::PortBudget ports;
    ports.weight = std::uint64_t(port_budget);
    ports.input = std::uint64_t(port_budget);
    ports.output = std::uint64_t(port_budget);

    verify::VerifyOptions opts;
    opts.checkRanges = !no_ranges;
    opts.checkBuffers = !no_buffers;
    opts.wPof = w_pof;
    opts.bram36Budget = bram;
    opts.range.sigmaK = sigma_k;
    opts.range.fracBits = frac_bits;
    opts.range.weightBound = weight_bound;
    if (lowered(weight_model) == "fixed")
        opts.range.weights =
            verify::RangeOptions::WeightModel::FixedBound;
    else if (lowered(weight_model) != "kaiming")
        util::fatal("unknown --weight-model '", weight_model, "'");

    int errors = 0, warnings = 0;
    for (const gan::GanModel &model : selectModels(model_name)) {
        verify::Report report = verify::verifyModel(model, opts);
        if (have_arch && report.ok()) {
            if (is_baseline)
                lintBaselineSchedule(model, baseline, st_pes,
                                     check_schedule, report);
            else
                lintSchedule(model, kind, st_pes, w_pes, check_bounds,
                             check_schedule, ports, report);
        }
        errors += report.errorCount();
        warnings += report.warningCount();
        if (format == "json")
            printJson(model, report, std::cout);
        else
            printText(model, report, std::cout);
    }
    if (errors > 0)
        return 1;
    if (fail_on == "warning" && warnings > 0)
        return 1;
    return 0;
} catch (const util::FatalError &e) {
    std::cerr << "ganacc-lint: " << e.what() << "\n";
    return 2;
}
