/**
 * @file
 * Design-space frontier: throughput vs W-bank width under the VCU9P's
 * resource budget and the DDR4 bandwidth law — the sweep whose
 * feasible optimum is the paper's configuration (30 ZFWST + 75 ZFOST
 * channels). Demonstrates which constraint binds where: DRAM cuts the
 * frontier at eq. (7)'s W_Pof = 30; the DSP/LUT budget would not bind
 * until far later.
 *
 * Also exercises the parallel sweep engine: the frontier is evaluated
 * serially and on --jobs workers from a cold cycle cache, the results
 * are checked bit-identical, and the wall-clock speedup is printed.
 */

#include <chrono>
#include <iostream>

#include "bench/bench_common.hh"
#include "core/cycle_cache.hh"
#include "core/dse.hh"
#include "gan/models.hh"
#include "sim/closed_form.hh"
#include "util/args.hh"
#include "util/table.hh"

namespace {

double
seconds(std::chrono::steady_clock::time_point t0,
        std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

bool
identical(const std::vector<ganacc::core::DsePoint> &a,
          const std::vector<ganacc::core::DsePoint> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].wPof != b[i].wPof || a[i].stPof != b[i].stPof ||
            a[i].totalPes != b[i].totalPes ||
            a[i].iterationCycles != b[i].iterationCycles ||
            a[i].samplesPerSecond != b[i].samplesPerSecond ||
            a[i].fitsDevice != b[i].fitsDevice ||
            a[i].bandwidthFeasible != b[i].bandwidthFeasible ||
            a[i].verifierRejected != b[i].verifierRejected ||
            a[i].scheduleRejected != b[i].scheduleRejected ||
            a[i].verifierCode != b[i].verifierCode)
            return false;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ganacc;
    util::ArgParser args(argc, argv);
    const int jobs = args.getJobs();
    const int max_wpof = args.getInt(
        "max-wpof", 60, "widest W bank (channels) to sweep");
    const bool no_verify = args.getFlag(
        "no-verify", "skip the static verifier pre-filter");
    const std::string engine_name = args.getString(
        "engine", "auto",
        "sim engine for the sweeps: walk, fast or auto (also "
        "GANACC_ENGINE)");
    bench::CacheScope cache_scope(args);
    if (args.helpRequested()) {
        args.usage(std::cout);
        return 0;
    }
    args.finish();
    if (auto engine = sim::simEngineFromName(engine_name))
        sim::setSimEngine(*engine);
    else
        util::fatal("--engine expects walk, fast or auto, got '",
                    engine_name, "'");

    bench::banner("Design-space frontier (ZFOST-ZFWST on the VCU9P)",
                  "the feasible optimum is the paper's 30+75-channel "
                  "point; DRAM bandwidth is the binding constraint");

    core::DseConstraints cons;
    cons.budget = core::vcu9pBudget();
    cons.maxWPof = max_wpof;
    cons.verify = !no_verify;
    gan::GanModel dcgan = gan::makeDcgan();

    // Cold-cache timing of both sweep paths, then the parity check
    // the parallel engine promises.
    auto &cache = core::CycleCache::instance();
    cache.clear();
    auto t0 = std::chrono::steady_clock::now();
    auto serial_pts = core::sweepFrontier(cons, dcgan);
    auto t1 = std::chrono::steady_clock::now();
    cache.clear();
    auto t2 = std::chrono::steady_clock::now();
    auto pts = core::sweepFrontierParallel(cons, dcgan, jobs);
    auto t3 = std::chrono::steady_clock::now();
    const double serial_s = seconds(t0, t1);
    const double parallel_s = seconds(t2, t3);
    std::cout << "sweep timing: serial " << serial_s << " s, parallel "
              << parallel_s << " s on " << jobs << " jobs ("
              << serial_s / parallel_s << "x), results "
              << (identical(serial_pts, pts) ? "bit-identical"
                                             : "DIVERGED (bug!)")
              << ", cycle cache " << cache.size() << " entries, "
              << core::verifierRejectedCount(pts)
              << " points verifier-rejected ("
              << core::scheduleRejectedCount(pts)
              << " by the schedule analyzer)"
              << (cons.verify ? "" : " (pre-filter off)") << "\n\n";

    util::Table t({"W_Pof", "ST_Pof", "PEs", "samples/s", "DSP",
                   "BRAM", "fits", "bandwidth ok"});
    for (const auto &p : pts) {
        if (p.wPof % 5 != 0 && p.wPof != 1 && p.wPof != 29 &&
            p.wPof != 31)
            continue; // print a readable subset
        t.addRow(p.wPof, p.stPof, p.totalPes, p.samplesPerSecond,
                 p.resources.dsp, p.resources.bram36,
                 p.fitsDevice ? "yes" : "NO",
                 p.bandwidthFeasible ? "yes" : "NO");
    }
    t.print(std::cout);

    auto best = core::bestFeasible(pts);
    if (best)
        std::cout << "\nOptimizer's pick: W_Pof=" << best->wPof
                  << ", ST_Pof=" << best->stPof << " ("
                  << best->totalPes << " PEs, "
                  << best->samplesPerSecond
                  << " DCGAN samples/s) — the paper's design point.\n";

    // Fast-path speedup row: the identical cold-cache serial sweep
    // under both engines, parity-checked (docs/fast_path.md).
    {
        cache.clear();
        auto w0 = std::chrono::steady_clock::now();
        std::vector<core::DsePoint> walk_pts;
        {
            sim::ScopedSimEngine eng(sim::SimEngine::Walk);
            walk_pts = core::sweepFrontier(cons, dcgan);
        }
        auto w1 = std::chrono::steady_clock::now();
        cache.clear();
        auto f0 = std::chrono::steady_clock::now();
        std::vector<core::DsePoint> fast_pts;
        {
            sim::ScopedSimEngine eng(sim::SimEngine::Fast);
            fast_pts = core::sweepFrontier(cons, dcgan);
        }
        auto f1 = std::chrono::steady_clock::now();
        const double walk_s = seconds(w0, w1);
        const double fast_s = seconds(f0, f1);
        std::cout << "\nengine timing (serial, cold cache): walk "
                  << walk_s << " s, fast " << fast_s << " s ("
                  << walk_s / fast_s << "x), results "
                  << (identical(walk_pts, fast_pts)
                          ? "bit-identical"
                          : "DIVERGED (bug!)")
                  << "\n";
    }

    // What a bigger memory system would buy.
    std::cout << "\nIf the DRAM doubled (384 Gbps):\n";
    cons.offchip.bandwidthBitsPerSec = 384e9;
    auto pts2 = core::sweepFrontierParallel(cons, dcgan, jobs);
    auto best2 = core::bestFeasible(pts2);
    if (best2)
        std::cout << "  optimum moves to W_Pof=" << best2->wPof
                  << " (" << best2->totalPes << " PEs, "
                  << best2->samplesPerSecond << " samples/s, "
                  << best2->samplesPerSecond /
                         (best ? best->samplesPerSecond : 1.0)
                  << "x)\n";
    return 0;
}
