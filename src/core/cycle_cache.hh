/**
 * @file
 * Memoized per-job cycle/stats cache for the sweep engine.
 *
 * A timing-only Architecture::run() is a pure function of the
 * (architecture kind, unrolling, conv shape) triple, and the DSE
 * sweeps evaluate the same layer shapes hundreds of times: every
 * (W_Pof, ST_Pof) point re-times the same networks, and the four
 * phase families share layers. This cache keys RunStats on the full
 * triple (the job label is deliberately excluded — it names, it does
 * not shape) so each distinct layer geometry is simulated exactly
 * once per unrolling, no matter how many design points or threads ask
 * for it. All methods are thread-safe; concurrent misses on the same
 * key may both simulate, but they compute identical values so the
 * second insert is a harmless no-op.
 */

#ifndef GANACC_CORE_CYCLE_CACHE_HH
#define GANACC_CORE_CYCLE_CACHE_HH

#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "core/unrolling.hh"
#include "sim/conv_spec.hh"
#include "sim/stats.hh"

namespace ganacc {
namespace core {

/** Process-wide memo of timing-only runs. */
class CycleCache
{
  public:
    static CycleCache &instance();

    /**
     * The RunStats of a timing-only run of `spec` on `kind` with
     * unrolling `u`, simulating on a miss.
     */
    sim::RunStats stats(ArchKind kind, const sim::Unroll &u,
                        const sim::ConvSpec &spec);

    /** Drop every entry (for cold-cache timing comparisons). */
    void clear();

    std::size_t size() const;
    std::uint64_t hits() const { return hits_.load(); }
    std::uint64_t misses() const { return misses_.load(); }

  private:
    CycleCache() = default;

    mutable std::shared_mutex m_;
    std::unordered_map<std::string, sim::RunStats> map_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
};

/** Convenience: CycleCache::instance().stats(...). */
sim::RunStats cachedRun(ArchKind kind, const sim::Unroll &u,
                        const sim::ConvSpec &spec);

} // namespace core
} // namespace ganacc

#endif // GANACC_CORE_CYCLE_CACHE_HH
