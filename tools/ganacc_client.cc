/**
 * @file
 * ganacc-client — batched client for ganacc-served.
 *
 * Three modes:
 *   --requests FILE   replay a JSON-lines request file through the
 *                     daemon at --socket, printing one response line
 *                     per request in order ("-" reads stdin);
 *   --emit MODE       don't contact a daemon at all; generate a
 *                     request file on stdout ("table5" emits the full
 *                     Table V matrix of a model — the request set the
 *                     golden smoke replay and the warm-cache recipes
 *                     use; "specs" emits the same matrix as per-layer
 *                     single-job spec requests, which a fleet replay
 *                     replicates to standby shards);
 *   a single ad-hoc probe: --arch/--model/--family flags build one
 *                     network request, send it, and pretty-print the
 *                     reply;
 *   --stats           send a telemetry probe ({"v":1,"id":1,
 *                     "stats":true}) and print the daemon's metric
 *                     snapshot as one JSON object on stdout — the
 *                     live-monitoring hook (see docs/observability.md).
 *
 * Requests are pipelined in windows, so a thousand-line replay is a
 * handful of syscall rounds, not a thousand round trips.
 *
 * Fleet mode (--fleet "host:port,host:port,..." or --fleet-seed
 * ADDR to bootstrap the shard list from one live shard) routes each
 * request to its owning shard by consistent hashing, pipelines per
 * connection, retries `overloaded` responses with backoff, fails
 * over to replicas, and replicates fresh results (docs/serving.md
 * "Fleet"). --stats --fleet merges every shard's telemetry snapshot
 * into one report with per-shard rows, a fleet-wide latency summary
 * and the aggregate merge.
 *
 * Live collection (docs/observability.md "Distributed tracing"):
 *   --scrape          pull the Prometheus text of a daemon (or, with
 *                     --fleet, of every live shard, each section
 *                     headed by a "# ganacc shard" comment);
 *   --trace-collect F drain every shard's buffered spans over
 *                     trace-drain probes and write one merged
 *                     Perfetto-loadable Chrome trace to F. Combined
 *                     with --requests, this process records router
 *                     root spans for the replayed lines and the merge
 *                     stitches the cross-process parentage together.
 */

#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <vector>

#include "core/unrolling.hh"
#include "fleet/router.hh"
#include "fleet/stats.hh"
#include "fleet/trace_merge.hh"
#include "gan/models.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "sim/phase.hh"
#include "util/args.hh"
#include "util/logging.hh"

namespace {

using namespace ganacc;

/** The Table V (family, bank, arch) matrix as network requests. */
std::vector<serve::Request>
table5Requests(const std::string &model)
{
    struct Row
    {
        sim::PhaseFamily family;
        const char *name;
        core::BankRole role;
        int pes;
    };
    const Row rows[] = {
        {sim::PhaseFamily::D, "D", core::BankRole::ST, 1200},
        {sim::PhaseFamily::G, "G", core::BankRole::ST, 1200},
        {sim::PhaseFamily::Dw, "Dw", core::BankRole::W, 480},
        {sim::PhaseFamily::Gw, "Gw", core::BankRole::W, 480},
    };
    std::vector<serve::Request> reqs;
    std::uint64_t id = 1;
    for (const Row &row : rows) {
        for (core::ArchKind kind : core::allArchKinds()) {
            serve::Request req;
            req.id = id++;
            req.kind = kind;
            req.unroll =
                core::paperUnroll(kind, row.role, row.family, row.pes);
            req.model = model;
            req.family = row.name;
            reqs.push_back(req);
        }
    }
    return reqs;
}

/**
 * The same Table V matrix broken down into single-job spec requests:
 * one request per (family, arch, layer) with the layer's ConvSpec
 * inlined. Unlike the model/family form the daemon treats each line
 * as an independent simulation job, so a fleet replay of this file
 * exercises the replication path (fresh spec results are `put` to
 * replica shards; model-form requests never replicate).
 */
std::vector<serve::Request>
specRequests(const std::string &model_name)
{
    gan::GanModel model;
    if (model_name == "dcgan")
        model = gan::makeDcgan();
    else if (model_name == "mnist-gan")
        model = gan::makeMnistGan();
    else if (model_name == "cgan")
        model = gan::makeCgan();
    else
        util::fatal("--emit specs: unknown model '", model_name,
                    "' (dcgan, mnist-gan, cgan)");

    struct Row
    {
        sim::PhaseFamily family;
        core::BankRole role;
        int pes;
    };
    const Row rows[] = {
        {sim::PhaseFamily::D, core::BankRole::ST, 1200},
        {sim::PhaseFamily::G, core::BankRole::ST, 1200},
        {sim::PhaseFamily::Dw, core::BankRole::W, 480},
        {sim::PhaseFamily::Gw, core::BankRole::W, 480},
    };
    std::vector<serve::Request> reqs;
    std::uint64_t id = 1;
    for (const Row &row : rows) {
        const std::vector<sim::ConvSpec> jobs =
            sim::familyJobs(model, row.family);
        for (core::ArchKind kind : core::allArchKinds()) {
            for (const sim::ConvSpec &job : jobs) {
                serve::Request req;
                req.id = id++;
                req.kind = kind;
                req.unroll = core::paperUnroll(kind, row.role,
                                               row.family, row.pes);
                req.hasSpec = true;
                req.spec = job;
                reqs.push_back(req);
            }
        }
    }
    return reqs;
}

std::vector<std::string>
readLines(std::istream &is)
{
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(is, line))
        if (!line.empty())
            lines.push_back(line);
    return lines;
}

} // namespace

int
main(int argc, char **argv)
try {
    util::ArgParser args(argc, argv);
    const std::string socket_path = args.getString(
        "socket", "",
        "address of a running ganacc-served (socket path or TCP "
        "host:port)");
    const std::string fleet_csv = args.getString(
        "fleet", "",
        "comma-separated shard addresses: route requests across a "
        "fleet instead of one daemon");
    const std::string fleet_seed = args.getString(
        "fleet-seed", "",
        "bootstrap the shard list from this one live shard "
        "(fleet probe)");
    const int connect_timeout = args.getInt(
        "connect-timeout", 5000,
        "total connect budget per daemon in ms");
    const int retries = args.getInt(
        "retries", 0,
        "extra connect attempts (exponential backoff) before "
        "failing");
    const std::string requests_file = args.getString(
        "requests", "",
        "JSON-lines request file to replay (\"-\" = stdin)");
    const std::string emit = args.getString(
        "emit", "",
        "emit a request file to stdout instead of connecting: "
        "\"table5\" (model/family form) or \"specs\" (same matrix "
        "as per-layer single-job spec requests, which a fleet "
        "replay replicates)");
    const std::string model_name = args.getString(
        "model", "dcgan",
        "model for --emit or an ad-hoc probe request");
    const std::string arch_name = args.getString(
        "arch", "", "ad-hoc probe: architecture (e.g. ZFOST)");
    const std::string family_name = args.getString(
        "family", "D", "ad-hoc probe: phase family (D, G, Dw, Gw)");
    const bool stats_probe = args.getFlag(
        "stats",
        "probe a live daemon for its telemetry snapshot (JSON)");
    const bool scrape = args.getFlag(
        "scrape",
        "probe for Prometheus metrics text (with --fleet: every "
        "shard, each section headed by a comment)");
    const std::string trace_collect = args.getString(
        "trace-collect", "",
        "drain every shard's buffered spans (--fleet) and write one "
        "merged Chrome trace to FILE");
    if (args.helpRequested()) {
        args.usage(std::cout);
        return 0;
    }
    args.finish();

    if (!emit.empty()) {
        std::vector<serve::Request> reqs;
        if (emit == "table5")
            reqs = table5Requests(model_name);
        else if (emit == "specs")
            reqs = specRequests(model_name);
        else
            util::fatal("unknown --emit mode '", emit,
                        "' (table5, specs)");
        for (const auto &req : reqs)
            std::cout << serve::encodeRequest(req) << "\n";
        return 0;
    }

    serve::ConnectOptions copt;
    copt.retries = retries;
    copt.timeoutMs = connect_timeout;

    if (!fleet_csv.empty() && !fleet_seed.empty())
        util::fatal("pass --fleet or --fleet-seed, not both");
    const bool fleet_mode = !fleet_csv.empty() || !fleet_seed.empty();
    if (fleet_mode && !socket_path.empty())
        util::fatal("--fleet/--fleet-seed replace --socket");
    if (!fleet_mode && socket_path.empty())
        util::fatal("--socket ADDR is required (or --fleet, "
                    "--fleet-seed, --emit)");

    if (stats_probe && scrape)
        util::fatal("pass --stats or --scrape, not both");
    if (!trace_collect.empty() && !fleet_mode)
        util::fatal("--trace-collect needs --fleet/--fleet-seed "
                    "(it drains and merges per-shard span batches)");

    // Arm live tracing before the router exists so the root spans it
    // opens for a --requests replay are buffered here and land in the
    // merged trace alongside the shards' drained batches.
    if (!trace_collect.empty()) {
        obs::TelemetryConfig tcfg;
        tcfg.traceLive = true;
        obs::enableTelemetry(tcfg);
    }

    std::unique_ptr<fleet::Router> router;
    serve::Client client;
    if (fleet_mode) {
        fleet::RouterOptions ropt;
        ropt.connect = copt;
        ropt.topology =
            fleet_seed.empty()
                ? fleet::parseShardList(fleet_csv, 64, 2)
                : fleet::Router::bootstrap(fleet_seed, copt);
        router = std::make_unique<fleet::Router>(std::move(ropt));
    } else {
        client.connect(socket_path, copt);
    }

    if (stats_probe) {
        if (router) {
            std::cout << fleet::fleetStatsReport(router->statsAll())
                      << "\n";
            return 0;
        }
        serve::Request req;
        req.id = 1;
        req.statsProbe = true;
        serve::Response rsp = client.roundTrip(req);
        if (!rsp.ok)
            util::fatal("daemon error: ", rsp.error);
        if (rsp.telemetry.empty())
            util::fatal("daemon answered without telemetry (",
                        rsp.simVersion, " predates stats probes?)");
        std::cout << rsp.telemetry << "\n";
        return 0;
    }

    if (scrape) {
        if (router) {
            const auto perShard = router->scrapeAll();
            for (std::size_t s = 0; s < perShard.size(); ++s) {
                std::cout << "# ganacc shard " << s << " ("
                          << perShard[s].first << ")"
                          << (perShard[s].second.empty()
                                  ? " unreachable"
                                  : "")
                          << "\n"
                          << perShard[s].second;
            }
            return 0;
        }
        serve::Request req;
        req.id = 1;
        req.metricsProbe = true;
        serve::Response rsp = client.roundTrip(req);
        if (!rsp.ok)
            util::fatal("daemon error: ", rsp.error);
        std::cout << rsp.metricsText;
        return 0;
    }

    // Drain + merge the fleet's span batches to FILE; done after a
    // --requests replay so the replay's own root spans are included.
    auto collectTraces = [&] {
        const auto perShard = router->drainTracesAll();
        const std::vector<obs::TraceEvent> local =
            obs::TraceSink::instance().drain();
        const std::string doc =
            fleet::mergeTraces(perShard, local);
        std::ofstream os(trace_collect, std::ios::trunc);
        if (!os)
            util::fatal("cannot write ", trace_collect);
        os << doc;
        std::cerr << "ganacc-client: merged trace -> "
                  << trace_collect << " (" << local.size()
                  << " local events)\n";
    };

    if (!requests_file.empty()) {
        std::vector<std::string> lines;
        if (requests_file == "-") {
            lines = readLines(std::cin);
        } else {
            std::ifstream is(requests_file);
            if (!is)
                util::fatal("cannot open ", requests_file);
            lines = readLines(is);
        }
        const std::vector<std::string> responses =
            router ? router->transactLines(lines)
                   : serve::replayLines(client, lines);
        for (const std::string &rsp : responses)
            std::cout << rsp << "\n";
        if (!trace_collect.empty())
            collectTraces();
        return 0;
    }

    if (!trace_collect.empty()) {
        collectTraces();
        return 0;
    }

    // Ad-hoc probe.
    if (arch_name.empty())
        util::fatal("pass --requests FILE, --emit MODE, or --arch "
                    "KIND for a single probe");
    auto kind = core::archKindFromName(arch_name);
    if (!kind)
        util::fatal("unknown architecture '", arch_name, "'");
    serve::Request req;
    req.id = 1;
    req.kind = *kind;
    const bool st_family = family_name == "D" || family_name == "G";
    sim::PhaseFamily family;
    if (family_name == "D")
        family = sim::PhaseFamily::D;
    else if (family_name == "G")
        family = sim::PhaseFamily::G;
    else if (family_name == "Dw")
        family = sim::PhaseFamily::Dw;
    else if (family_name == "Gw")
        family = sim::PhaseFamily::Gw;
    else
        util::fatal("unknown family '", family_name, "'");
    req.unroll = core::paperUnroll(
        *kind, st_family ? core::BankRole::ST : core::BankRole::W,
        family, st_family ? 1200 : 480);
    req.model = model_name;
    req.family = family_name;
    serve::Response rsp =
        router ? router->call(req) : client.roundTrip(req);
    if (!rsp.ok)
        util::fatal("daemon error: ", rsp.error);
    std::cout << rsp.arch << " on " << model_name << "/" << family_name
              << " (" << rsp.cache << ", " << rsp.latencyUs
              << " us, " << rsp.simVersion << "):\n  "
              << rsp.stats.str() << "\n";
    return 0;
} catch (const ganacc::util::FatalError &e) {
    std::cerr << "ganacc-client: " << e.what() << "\n";
    return 2;
}
