/**
 * @file
 * Table III reproduction: FPGA resource utilization of the full
 * 1200-ZFOST + 480-ZFWST design with the Fig. 14 buffer plan, from
 * the calibrated analytic resource model (DESIGN.md documents the
 * substitution for the paper's synthesis report).
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "core/accelerator.hh"
#include "core/resource_model.hh"
#include "gan/models.hh"
#include "util/table.hh"

int
main()
{
    using namespace ganacc;
    bench::banner("Table III — resource utilization",
                  "LUTs 254523/1182240, FFs 79668/2364480, "
                  "BRAM 2008/2160, DSP 1694/6840");

    core::GanAccelerator acc;
    auto budget = core::vcu9pBudget();
    gan::GanModel dcgan = gan::makeDcgan();
    auto rep = acc.evaluate(dcgan);

    std::cout << "\nDesign: " << acc.stPof() << " ZFOST channels + "
              << acc.wPof() << " ZFWST channels = " << acc.totalPes()
              << " PEs (DCGAN buffer plan)\n\n";

    util::Table t({"resource", "model estimate", "paper (Table III)",
                   "total on board", "util %"});
    auto pct = [](double used, double total) {
        return double(int(1000.0 * used / total)) / 10.0;
    };
    t.addRow("Logic (LUTs)", rep.resources.luts, 254523, budget.luts,
             pct(double(rep.resources.luts), double(budget.luts)));
    t.addRow("Flip-Flops", rep.resources.flipFlops, 79668,
             budget.flipFlops,
             pct(double(rep.resources.flipFlops),
                 double(budget.flipFlops)));
    t.addRow("Block RAM (36Kb)", rep.resources.bram36, 2008,
             budget.bram36,
             pct(double(rep.resources.bram36), double(budget.bram36)));
    t.addRow("DSP", rep.resources.dsp, 1694, budget.dsp,
             pct(double(rep.resources.dsp), double(budget.dsp)));
    t.print(std::cout);

    std::cout << "\nFits XCVU9P: " << (rep.fitsDevice ? "yes" : "NO")
              << "\n\nPer-model buffer plans (bytes):\n";
    util::Table b({"model", "In&Out x2", "Data", "Error", "Weight",
                   "gradW x2", "total", "BRAM36"});
    for (const auto &m : gan::allModels()) {
        auto plan = mem::planBuffers(m, acc.wPof(), 2);
        b.addRow(m.name, 2 * plan.inOutBytes, plan.dataBytes,
                 plan.errorBytes, plan.weightBytes, 2 * plan.gradWBytes,
                 plan.totalBytes(), plan.bram36Count());
    }
    b.print(std::cout);
    return 0;
}
