/**
 * @file
 * Cycle-cache implementation.
 */

#include "core/cycle_cache.hh"

#include <mutex>
#include <sstream>

namespace ganacc {
namespace core {

namespace {

/** Every field that shapes a timing-only run, label excluded. */
std::string
keyOf(ArchKind kind, const sim::Unroll &u, const sim::ConvSpec &s)
{
    std::ostringstream os;
    os << int(kind) << '|' << u.pIf << ',' << u.pOf << ',' << u.pKx
       << ',' << u.pKy << ',' << u.pOx << ',' << u.pOy << '|' << s.nif
       << ',' << s.nof << ',' << s.ih << ',' << s.iw << ',' << s.kh
       << ',' << s.kw << ',' << s.oh << ',' << s.ow << ',' << s.stride
       << ',' << s.pad << ',' << s.inZeroStride << ',' << s.inOrigH
       << ',' << s.inOrigW << ',' << s.kZeroStride << ',' << s.kOrigH
       << ',' << s.kOrigW << ',' << int(s.fourDimOutput);
    return os.str();
}

} // namespace

std::string
cacheOutcomeName(CacheOutcome o)
{
    switch (o) {
      case CacheOutcome::MemoryHit: return "mem";
      case CacheOutcome::DiskHit: return "disk";
      case CacheOutcome::Simulated: return "sim";
    }
    return "?";
}

CycleCache &
CycleCache::instance()
{
    static CycleCache cache;
    return cache;
}

void
CycleCache::attachDiskTier(StatsDiskTier *tier)
{
    disk_ = tier;
}

sim::RunStats
CycleCache::stats(ArchKind kind, const sim::Unroll &u,
                  const sim::ConvSpec &spec, CacheOutcome *outcome)
{
    const std::string key = keyOf(kind, u, spec);
    {
        std::shared_lock<std::shared_mutex> lk(m_);
        auto it = map_.find(key);
        if (it != map_.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            if (outcome)
                *outcome = CacheOutcome::MemoryHit;
            return it->second;
        }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    sim::RunStats st;
    CacheOutcome got = CacheOutcome::Simulated;
    std::optional<sim::RunStats> fromDisk =
        disk_ ? disk_->load(kind, u, spec) : std::nullopt;
    if (fromDisk) {
        diskHits_.fetch_add(1, std::memory_order_relaxed);
        got = CacheOutcome::DiskHit;
        st = *fromDisk;
    } else {
        st = makeArch(kind, u)->run(spec);
        if (disk_)
            disk_->store(kind, u, spec, st);
    }
    {
        std::unique_lock<std::shared_mutex> lk(m_);
        map_.emplace(key, st);
    }
    if (outcome)
        *outcome = got;
    return st;
}

void
CycleCache::clear()
{
    std::unique_lock<std::shared_mutex> lk(m_);
    map_.clear();
    hits_.store(0);
    misses_.store(0);
    diskHits_.store(0);
}

std::size_t
CycleCache::size() const
{
    std::shared_lock<std::shared_mutex> lk(m_);
    return map_.size();
}

std::string
CycleCache::summary() const
{
    std::ostringstream os;
    os << "cycle cache: " << size() << " entries, " << hits()
       << " memory hits, " << misses() << " misses";
    if (disk_)
        os << " (" << diskHits() << " served by the disk tier)";
    return os.str();
}

sim::RunStats
cachedRun(ArchKind kind, const sim::Unroll &u,
          const sim::ConvSpec &spec)
{
    return CycleCache::instance().stats(kind, u, spec);
}

} // namespace core
} // namespace ganacc
