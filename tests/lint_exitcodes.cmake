# CTest driver pinning the ganacc-lint exit-code contract:
#   0 - clean run (no finding at or above --fail-on)
#   1 - findings (diagnostics at or above --fail-on)
#   2 - usage error (bad flag or flag combination)
# Scripts and CI depend on these values; a drift is a breaking change.
# Variables: LINT (binary).

# Clean run: the bundled DCGAN lints without findings.
execute_process(
    COMMAND ${LINT} --model dcgan
    OUTPUT_QUIET ERROR_QUIET
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "clean run must exit 0, got ${rc} (--model dcgan)")
endif()

# Findings: a one-word-per-cycle port budget is far below what the
# ZFOST schedule needs, so GA-SCHED-PORT errors must trip exit 1.
execute_process(
    COMMAND ${LINT} --model dcgan --arch zfost --port-budget 1
    OUTPUT_QUIET ERROR_QUIET
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 1)
    message(FATAL_ERROR
        "findings run must exit 1, got ${rc} (--port-budget 1)")
endif()

# Usage errors: an unknown flag and an invalid combination
# (--check-schedule without --arch) must both exit 2.
execute_process(
    COMMAND ${LINT} --bogus-flag
    OUTPUT_QUIET ERROR_QUIET
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 2)
    message(FATAL_ERROR
        "unknown flag must exit 2, got ${rc}")
endif()

execute_process(
    COMMAND ${LINT} --model dcgan --check-schedule
    OUTPUT_QUIET ERROR_QUIET
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 2)
    message(FATAL_ERROR
        "--check-schedule without --arch must exit 2, got ${rc}")
endif()
