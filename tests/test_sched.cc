/**
 * @file
 * Tests for the system-level schedulers: the Fig. 9 per-phase
 * pipeline (bubble/utilization claims), the Fig. 10 time-multiplexed
 * organization, and the Fig. 17 design-point timing rules.
 */

#include <gtest/gtest.h>

#include "core/unrolling.hh"
#include "gan/models.hh"
#include "sched/design.hh"
#include "sched/pipeline.hh"

namespace {

using namespace ganacc;
using core::ArchKind;
using sched::Design;
using sched::SyncPolicy;
using sched::UpdateKind;

// ---------------------------------------------------------------------
// Pipeline models (Figs. 9 and 10)
// ---------------------------------------------------------------------

TEST(Pipeline, PhaseSequencesMatchFig8)
{
    // 5 ST + 2 W passes for a D update; 4 ST + 1 W for a G update.
    auto d = sched::updatePhaseSequence(UpdateKind::Discriminator);
    EXPECT_EQ(d.size(), 7u);
    auto g = sched::updatePhaseSequence(UpdateKind::Generator);
    EXPECT_EQ(g.size(), 5u);
}

TEST(Pipeline, PerPhaseWArchUtilizationMatchesPaper)
{
    // Section IV-B: "the utilization of W-ARCH is low (66.7% when
    // updating Discriminator and 50% when updating Generator)".
    auto d = sched::perPhasePipeline(UpdateKind::Discriminator);
    EXPECT_NEAR(d.utilizationOf("W-ARCH"), 2.0 / 3.0, 1e-9);
    auto g = sched::perPhasePipeline(UpdateKind::Generator);
    EXPECT_NEAR(g.utilizationOf("W-ARCH"), 0.5, 1e-9);
}

TEST(Pipeline, PerPhaseSArchHasBubblesOnDiscriminatorUpdate)
{
    // "because S-ARCH runs less frequently than T-ARCH when updating
    // Discriminator, there would be bubbles in S-ARCH".
    auto d = sched::perPhasePipeline(UpdateKind::Discriminator);
    EXPECT_LT(d.utilizationOf("S-ARCH"), 1.0);
    EXPECT_NEAR(d.utilizationOf("T-ARCH"), 1.0, 1e-9);
}

TEST(Pipeline, TimeMultiplexedRemovesStBubbles)
{
    for (UpdateKind k :
         {UpdateKind::Discriminator, UpdateKind::Generator}) {
        auto rep = sched::timeMultiplexed(k);
        EXPECT_NEAR(rep.utilizationOf("ST-ARCH"), 1.0, 1e-9)
            << sched::updateKindName(k);
    }
}

TEST(Pipeline, SlowedWArchIsFullyBusyOnDiscriminatorUpdate)
{
    // With the 2/5 speed ratio of eq. (8), W-ARCH is saturated during
    // D updates (Fig. 10) and partially busy during G updates.
    auto d = sched::timeMultiplexed(UpdateKind::Discriminator, 0.4);
    EXPECT_NEAR(d.utilizationOf("W-ARCH"), 1.0, 1e-9);
    auto g = sched::timeMultiplexed(UpdateKind::Generator, 0.4);
    EXPECT_NEAR(g.utilizationOf("W-ARCH"), 2.5 / 4.0, 1e-9);
}

TEST(Pipeline, FasterWArchWouldIdle)
{
    // Had W-ARCH matched ST speed (ratio 1.0), it would idle 3/5 of
    // the time — the waste the slowdown eliminates.
    auto d = sched::timeMultiplexed(UpdateKind::Discriminator, 1.0);
    EXPECT_NEAR(d.utilizationOf("W-ARCH"), 2.0 / 5.0, 1e-9);
}

TEST(Pipeline, RejectsBadSpeedRatio)
{
    EXPECT_THROW(sched::timeMultiplexed(UpdateKind::Generator, 0.0),
                 util::PanicError);
    EXPECT_THROW(
        sched::perPhasePipeline(UpdateKind::Generator)
            .utilizationOf("NO-SUCH"),
        util::PanicError);
}

// ---------------------------------------------------------------------
// Design points (Fig. 17 rules)
// ---------------------------------------------------------------------

TEST(DesignPoints, ComboSplitsFiveToTwo)
{
    Design d = Design::combo(ArchKind::ZFOST, ArchKind::ZFWST, 1680);
    EXPECT_EQ(d.stPes(), 1200);
    EXPECT_EQ(d.wPes(), 480);
    EXPECT_EQ(d.totalPes(), 1680);
    Design u = Design::unique(ArchKind::OST, 1680);
    EXPECT_FALSE(u.isCombo());
    EXPECT_EQ(u.stPes(), 1680);
}

TEST(DesignPoints, UniqueDesignGainsNothingFromDeferredSync)
{
    // Fig. 17: "the performance of unique architecture remains the
    // same" — one array cannot overlap with itself.
    gan::GanModel m = gan::makeMnistGan();
    Design u = Design::unique(ArchKind::ZFOST, 1680);
    EXPECT_EQ(sched::iterationCycles(u, m, SyncPolicy::Synchronized),
              sched::iterationCycles(u, m, SyncPolicy::Deferred));
}

TEST(DesignPoints, ComboOverlapsOnlyUnderDeferredSync)
{
    gan::GanModel m = gan::makeMnistGan();
    Design c = Design::combo(ArchKind::ZFOST, ArchKind::ZFWST, 1680);
    auto t = sched::discriminatorUpdateTiming(c, m);
    EXPECT_EQ(t.syncCycles, t.bank.st + t.bank.w);
    EXPECT_EQ(t.deferredCycles, std::max(t.bank.st, t.bank.w));
    EXPECT_LT(t.deferredCycles, t.syncCycles);
}

TEST(DesignPoints, SynchronizedComboLosesToUniqueZfost)
{
    // The Fig. 17 inversion: under the original algorithm the
    // combination's idle bank makes it slower than unique ZFOST...
    gan::GanModel m = gan::makeDcgan();
    Design u = Design::unique(ArchKind::ZFOST, 1680);
    Design c = Design::combo(ArchKind::ZFOST, ArchKind::ZFWST, 1680);
    EXPECT_LT(sched::iterationCycles(u, m, SyncPolicy::Synchronized),
              sched::iterationCycles(c, m, SyncPolicy::Synchronized));
    // ...and deferred synchronization flips the ordering.
    EXPECT_GT(sched::iterationCycles(u, m, SyncPolicy::Deferred),
              sched::iterationCycles(c, m, SyncPolicy::Deferred));
}

TEST(DesignPoints, ZfostZfwstBeatsNlrOstOnEveryModel)
{
    // "Among the combinational architectures, ZFOST-ZFWST outperforms
    // NLR-OST due to its zero-free optimization."
    for (const auto &m : gan::allModels()) {
        Design zz = Design::combo(ArchKind::ZFOST, ArchKind::ZFWST,
                                  1680);
        Design no = Design::combo(ArchKind::NLR, ArchKind::OST, 1680);
        EXPECT_LT(
            sched::iterationCycles(zz, m, SyncPolicy::Deferred),
            sched::iterationCycles(no, m, SyncPolicy::Deferred))
            << m.name;
    }
}

TEST(DesignPoints, OverallSpeedupInPaperRegime)
{
    // The headline claim: the full design averages ~4.3x over the
    // best traditional combination baseline under the original
    // algorithm. Our dataflow model lands in the same regime (3-5x).
    double total = 0.0;
    for (const auto &m : gan::allModels()) {
        Design zz = Design::combo(ArchKind::ZFOST, ArchKind::ZFWST,
                                  1680);
        Design no = Design::combo(ArchKind::NLR, ArchKind::OST, 1680);
        double speedup =
            double(sched::iterationCycles(no, m,
                                          SyncPolicy::Synchronized)) /
            double(sched::iterationCycles(zz, m, SyncPolicy::Deferred));
        total += speedup;
    }
    double avg = total / 3.0;
    EXPECT_GT(avg, 3.0);
    EXPECT_LT(avg, 5.5);
}

TEST(DesignPoints, GopsAreBoundedByTheArray)
{
    gan::GanModel m = gan::makeDcgan();
    Design zz = Design::combo(ArchKind::ZFOST, ArchKind::ZFWST, 1680);
    double gops =
        sched::iterationGops(zz, m, SyncPolicy::Deferred, 200e6);
    // 1680 PEs x 200 MHz x 2 ops = 672 GOPS absolute ceiling.
    EXPECT_LT(gops, 672.0);
    EXPECT_GT(gops, 100.0);
}

TEST(DesignPoints, MorePesNeverHurtThroughput)
{
    gan::GanModel m = gan::makeCgan();
    Design small = Design::combo(ArchKind::ZFOST, ArchKind::ZFWST, 512);
    Design large = Design::combo(ArchKind::ZFOST, ArchKind::ZFWST,
                                 2048);
    EXPECT_GE(sched::iterationCycles(small, m, SyncPolicy::Deferred),
              sched::iterationCycles(large, m, SyncPolicy::Deferred));
}

TEST(DesignPoints, Fig18CrossoverHalfSizedZfostZfwstCompetitive)
{
    // Fig. 18: ZFOST-ZFWST with 512 PEs achieves similar performance
    // to NLR-OST (and unique ZFOST) with 1024 PEs.
    gan::GanModel m = gan::makeDcgan();
    std::uint64_t zz512 = sched::iterationCycles(
        Design::combo(ArchKind::ZFOST, ArchKind::ZFWST, 512), m,
        SyncPolicy::Deferred);
    std::uint64_t no1024 = sched::iterationCycles(
        Design::combo(ArchKind::NLR, ArchKind::OST, 1024), m,
        SyncPolicy::Deferred);
    // Within 35% counts as "similar performance" for a dataflow model.
    EXPECT_LT(double(zz512), 1.35 * double(no1024));
}

} // namespace
