/**
 * @file
 * Process-wide telemetry registry: named counters, gauges and
 * histograms behind lock-free atomics.
 *
 * The registry is the one place every subsystem reports load and
 * progress to — the thread pool, the cycle cache, the result store,
 * the serving engine and the DSE sweeps all publish here, and the
 * Prometheus text dump, the daemon's `stats` protocol request and the
 * SIGUSR1 dump-to-file all read from here. Two publication styles:
 *
 *  - *Owned metrics*: counter()/gauge()/histogram() return a stable
 *    reference the caller keeps and bumps with relaxed atomics — the
 *    per-event cost is one atomic add, never a lock.
 *  - *Collectors*: a subsystem that already keeps its own atomic
 *    counters (CycleCache, ResultStore) registers a callback that
 *    copies them into each Snapshot on demand, so snapshotting never
 *    perturbs the hot path at all. Collector values for the same name
 *    accumulate, so two attached stores sum into one series.
 *
 * Metric names follow Prometheus conventions: `ganacc_<area>_<what>`
 * with a `_total` suffix on counters; a `{key="value"}` label block
 * may be embedded directly in the name (the registry treats the whole
 * string as the series identity). See docs/observability.md.
 *
 * Telemetry is strictly observational: nothing in here feeds back
 * into simulation results, and every value is either a monotonic
 * event count or a point-in-time level — never wall-clock-derived
 * except inside histogram samples explicitly fed latencies.
 */

#ifndef GANACC_OBS_METRICS_HH
#define GANACC_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ganacc {
namespace obs {

/** A monotonically increasing event count. */
class Counter
{
  public:
    void
    add(std::uint64_t n = 1)
    {
        v_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> v_{0};
};

/** A point-in-time level that can move both ways. */
class Gauge
{
  public:
    void
    set(std::int64_t v)
    {
        v_.store(v, std::memory_order_relaxed);
    }

    void
    add(std::int64_t d)
    {
        v_.fetch_add(d, std::memory_order_relaxed);
    }

    std::int64_t
    value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::int64_t> v_{0};
};

/**
 * A trace-id exemplar: the most recent sampled trace that landed in a
 * bucket, so a latency spike in a dashboard links to one concrete
 * distributed trace (OpenMetrics-style `# {trace_id="…"} v` in the
 * text dump). Purely observational — absent from the JSON telemetry
 * snapshot, so stats-probe responses stay byte-stable.
 */
struct Exemplar
{
    std::uint64_t value = 0; ///< the sample that set the exemplar
    std::string traceId;     ///< 32-hex trace id ("" = none yet)
};

/** Point-in-time copy of one histogram (see Histogram for buckets). */
struct HistogramSnapshot
{
    /// Per-bucket (non-cumulative) sample counts; buckets[i] counts
    /// samples with value <= 2^i for i < kFiniteBuckets, the last
    /// bucket is +Inf.
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    /// Per-bucket exemplars; empty when none were ever attached.
    std::vector<Exemplar> exemplars;

    /** Merge another snapshot of the same series (element-wise add;
     *  exemplars keep the first non-empty entry per bucket). */
    void merge(const HistogramSnapshot &o);
};

/**
 * A fixed-bucket histogram of non-negative integer samples (typically
 * microseconds). Buckets are powers of two — le 1, 2, 4, …, 2^20 —
 * plus +Inf, so one layout covers sub-microsecond cache hits through
 * full-network simulations without configuration.
 */
class Histogram
{
  public:
    static constexpr int kFiniteBuckets = 21; ///< le 2^0 … 2^20
    static constexpr int kBuckets = kFiniteBuckets + 1; ///< + Inf

    /** The upper bound of finite bucket i (2^i). */
    static std::uint64_t
    bucketBound(int i)
    {
        return std::uint64_t(1) << i;
    }

    /** Index of the bucket a sample lands in. */
    static int bucketIndex(std::uint64_t v);

    void
    observe(std::uint64_t v)
    {
        buckets_[std::size_t(bucketIndex(v))].fetch_add(
            1, std::memory_order_relaxed);
        sum_.fetch_add(v, std::memory_order_relaxed);
    }

    /**
     * Attach a trace-id exemplar to the bucket `v` lands in (last
     * writer wins). Off the hot path — called at most once per
     * *sampled* request, never when tracing is disabled — so a small
     * mutex is fine here where observe() must stay lock-free.
     */
    void exemplar(std::uint64_t v, const std::string &traceId);

    HistogramSnapshot snapshot() const;

  private:
    std::atomic<std::uint64_t> buckets_[kBuckets] = {};
    std::atomic<std::uint64_t> sum_{0};
    mutable std::mutex exemplars_m_;
    std::vector<Exemplar> exemplars_; ///< lazily sized to kBuckets
};

/**
 * One consistent view of every metric: owned metrics copied, then
 * collectors applied. Values for a repeated name accumulate, which is
 * what lets N result stores (or transient thread pools) publish one
 * combined series.
 */
class Snapshot
{
  public:
    void
    counter(const std::string &name, std::uint64_t v)
    {
        counters_[name] += v;
    }

    void
    gauge(const std::string &name, std::int64_t v)
    {
        gauges_[name] += v;
    }

    void histogram(const std::string &name, const HistogramSnapshot &h);

    const std::map<std::string, std::uint64_t> &
    counters() const
    {
        return counters_;
    }

    const std::map<std::string, std::int64_t> &
    gauges() const
    {
        return gauges_;
    }

    const std::map<std::string, HistogramSnapshot> &
    histograms() const
    {
        return histograms_;
    }

  private:
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, std::int64_t> gauges_;
    std::map<std::string, HistogramSnapshot> histograms_;
};

/** The process-wide metric registry. */
class Registry
{
  public:
    /** The singleton (leaked: usable from any static context). */
    static Registry &instance();

    /**
     * The counter registered under `name`, creating it on first use.
     * The reference stays valid for the life of the process. `help`
     * (first writer wins) feeds the # HELP line of the text dump.
     */
    Counter &counter(const std::string &name,
                     const std::string &help = "");
    Gauge &gauge(const std::string &name, const std::string &help = "");
    Histogram &histogram(const std::string &name,
                         const std::string &help = "");

    /**
     * A collector runs under the registry lock during snapshot() and
     * may only write into the Snapshot it is handed — calling back
     * into the registry from a collector deadlocks. Returns a token
     * for removeCollector (subsystems with a shorter life than the
     * process, e.g. a scoped ResultStore, must remove themselves
     * before dying).
     */
    using Collector = std::function<void(Snapshot &)>;
    int addCollector(Collector fn);
    void removeCollector(int token);

    /** Owned metrics + every collector, one consistent view. */
    Snapshot snapshot() const;

    /** Help text registered for a metric base name ("" if none). */
    std::string help(const std::string &baseName) const;

  private:
    Registry() = default;

    mutable std::mutex m_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
    std::map<std::string, std::string> help_; ///< base name -> help
    std::map<int, Collector> collectors_;
    int nextCollector_ = 0;
};

/** `name` with any embedded {label} block stripped. */
std::string metricBaseName(const std::string &name);

/**
 * Render a snapshot in the Prometheus text exposition format
 * (# HELP/# TYPE headers, cumulative histogram buckets with le=""
 * labels, one sample per line, sorted by name).
 */
std::string renderPrometheus(const Snapshot &snap);

} // namespace obs
} // namespace ganacc

#endif // GANACC_OBS_METRICS_HH
