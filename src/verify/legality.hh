/**
 * @file
 * Structural legality checks: the invariants the cycle-level simulator
 * *assumes* (and asserts deep inside the cycle walk), proven up front.
 *
 * Three layers of checking, from innermost to outermost:
 *
 *  - ConvSpec legality: field sanity, output-extent arithmetic, and
 *    zero-insert/stride consistency (a stuffed input streamed with
 *    stride > 1 is not a GAN pattern and panics ZFOST/ZFWST).
 *  - Network legality: per-layer shape arithmetic (S-CONV floor
 *    division, T-CONV output padding), layer-to-layer chaining, and
 *    the generator-output-matches-discriminator-input contract. When
 *    the graph is sound, every phase's streamed job is derived and
 *    spec-checked too.
 *  - Unrolling legality: factors relevant to the dataflow are
 *    positive, irrelevant ones are flagged, and non-dividing loop
 *    bounds are quantified (boundary tiles waste PE slots — the
 *    verifier reports the exact scheduled-slot utilization loss).
 *
 * Buffer-capacity checks compare a Fig. 14 buffer plan against both
 * the device Block-RAM budget and each phase's working set.
 *
 * All functions append diagnostics to a Report instead of panicking,
 * so an illegal design is rejected with a stable code before a single
 * simulated cycle is spent on it.
 */

#ifndef GANACC_VERIFY_LEGALITY_HH
#define GANACC_VERIFY_LEGALITY_HH

#include <vector>

#include "core/unrolling.hh"
#include "gan/models.hh"
#include "mem/onchip_buffer.hh"
#include "sim/arch.hh"
#include "sim/conv_spec.hh"
#include "verify/diagnostics.hh"

namespace ganacc {
namespace verify {

/** Check one streamed convolution job. Codes: GA-SPEC-*. */
void checkConvSpec(const sim::ConvSpec &spec, Report &report);

/**
 * Check a whole GAN model: layer shape arithmetic, chaining, the
 * generator/discriminator contract, and (when the graph is sound)
 * every phase's derived ConvSpec. Codes: GA-NET-*, GA-SPEC-*.
 */
void checkModel(const gan::GanModel &model, Report &report);

/**
 * Check an unrolling against a dataflow over a set of jobs:
 * positivity of the factors the dataflow reads (GA-UNROLL-POSITIVE,
 * error), factors it ignores (GA-UNROLL-UNUSED, warning), and
 * unrolling-divides-bounds legality per job (GA-UNROLL-DIVIDE, note,
 * with the scheduled-slot utilization; GA-UNROLL-WASTE, warning, when
 * boundary tiles idle more than half the scheduled slots).
 */
void checkUnroll(core::ArchKind kind, const sim::Unroll &unroll,
                 const std::vector<sim::ConvSpec> &jobs, Report &report);

/** The extension baselines outside core::ArchKind (sim/cnv, sim/rst). */
enum class BaselineKind
{
    CNV, ///< Cnvlutin-style value-inspecting array (P_if x P_of)
    RST, ///< Eyeriss-style row-stationary array (P_ky x P_oy x P_of)
};

std::string baselineName(BaselineKind kind);

/**
 * checkUnroll for the extension baselines. Same codes
 * (GA-UNROLL-POSITIVE / -UNUSED / -DIVIDE), but the non-dividing note
 * carries no idle percentage: CNV's schedule is value-dependent by
 * construction (no closed form exists), and RST is left to its cycle
 * walk.
 */
void checkBaselineUnroll(BaselineKind kind, const sim::Unroll &unroll,
                         const std::vector<sim::ConvSpec> &jobs,
                         Report &report);

/**
 * Check each phase's working set against an explicit buffer plan:
 * every layer output must fit an In&Out half, every kernel set the
 * Weight buffer, the per-sample intermediate sets the Data and Error
 * buffers, and the W_Pof-wide ZFWST partial-gradient set the ∇W
 * halves. Code: GA-BUF-WORKSET.
 */
void checkBufferWorkingSets(const gan::GanModel &model,
                            const mem::BufferPlan &plan, int w_pof,
                            int bytes_per_elem, Report &report);

/** Check a buffer plan against a Block-RAM budget.
 *  Code: GA-BUF-CAPACITY. */
void checkBramBudget(const mem::BufferPlan &plan, int bram36_budget,
                     Report &report);

/**
 * Pre-filter one DSE frontier point without simulating it: degenerate
 * parallelism parameters (GA-DSE-POINT) and full network legality.
 * `model_report` is the cached result of checkModel on the swept
 * model, so a sweep validates the network once, not once per point.
 */
void checkDesignPoint(const Report &model_report, int w_pof, int st_pof,
                      int pes_per_channel, Report &report);

} // namespace verify
} // namespace ganacc

#endif // GANACC_VERIFY_LEGALITY_HH
