/**
 * @file
 * Design-space frontier: throughput vs W-bank width under the VCU9P's
 * resource budget and the DDR4 bandwidth law — the sweep whose
 * feasible optimum is the paper's configuration (30 ZFWST + 75 ZFOST
 * channels). Demonstrates which constraint binds where: DRAM cuts the
 * frontier at eq. (7)'s W_Pof = 30; the DSP/LUT budget would not bind
 * until far later.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "core/dse.hh"
#include "gan/models.hh"
#include "util/table.hh"

int
main()
{
    using namespace ganacc;
    bench::banner("Design-space frontier (ZFOST-ZFWST on the VCU9P)",
                  "the feasible optimum is the paper's 30+75-channel "
                  "point; DRAM bandwidth is the binding constraint");

    core::DseConstraints cons;
    cons.budget = core::vcu9pBudget();
    cons.maxWPof = 60;
    gan::GanModel dcgan = gan::makeDcgan();

    auto pts = core::sweepFrontier(cons, dcgan);
    util::Table t({"W_Pof", "ST_Pof", "PEs", "samples/s", "DSP",
                   "BRAM", "fits", "bandwidth ok"});
    for (const auto &p : pts) {
        if (p.wPof % 5 != 0 && p.wPof != 1 && p.wPof != 29 &&
            p.wPof != 31)
            continue; // print a readable subset
        t.addRow(p.wPof, p.stPof, p.totalPes, p.samplesPerSecond,
                 p.resources.dsp, p.resources.bram36,
                 p.fitsDevice ? "yes" : "NO",
                 p.bandwidthFeasible ? "yes" : "NO");
    }
    t.print(std::cout);

    auto best = core::bestFeasible(pts);
    if (best)
        std::cout << "\nOptimizer's pick: W_Pof=" << best->wPof
                  << ", ST_Pof=" << best->stPof << " ("
                  << best->totalPes << " PEs, "
                  << best->samplesPerSecond
                  << " DCGAN samples/s) — the paper's design point.\n";

    // What a bigger memory system would buy.
    std::cout << "\nIf the DRAM doubled (384 Gbps):\n";
    cons.offchip.bandwidthBitsPerSec = 384e9;
    auto pts2 = core::sweepFrontier(cons, dcgan);
    auto best2 = core::bestFeasible(pts2);
    if (best2)
        std::cout << "  optimum moves to W_Pof=" << best2->wPof
                  << " (" << best2->totalPes << " PEs, "
                  << best2->samplesPerSecond << " samples/s, "
                  << best2->samplesPerSecond /
                         (best ? best->samplesPerSecond : 1.0)
                  << "x)\n";
    return 0;
}
