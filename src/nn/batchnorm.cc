/**
 * @file
 * Batch-normalization implementation.
 */

#include "nn/batchnorm.hh"

#include <cmath>

#include "tensor/shape.hh"
#include "util/logging.hh"

namespace ganacc {
namespace nn {

using tensor::Shape4;
using tensor::Tensor;

BatchNormLayer::BatchNormLayer(int channels, float eps, float momentum)
    : channels_(channels), eps_(eps), momentum_(momentum),
      gamma_(Shape4(1, channels, 1, 1), 1.0f),
      beta_(Shape4(1, channels, 1, 1), 0.0f),
      gradGamma_(Shape4(1, channels, 1, 1), 0.0f),
      gradBeta_(Shape4(1, channels, 1, 1), 0.0f),
      runningMean_(Shape4(1, channels, 1, 1), 0.0f),
      runningVar_(Shape4(1, channels, 1, 1), 1.0f)
{
    GANACC_ASSERT(channels >= 1, "batchnorm needs channels");
    GANACC_ASSERT(eps > 0.0f && momentum > 0.0f && momentum <= 1.0f,
                  "bad batchnorm hyperparameters");
}

Tensor
BatchNormLayer::forward(const Tensor &in, Mode mode)
{
    const Shape4 &s = in.shape();
    GANACC_ASSERT(s.d1 == channels_, "batchnorm channel mismatch: ",
                  s.d1, " vs ", channels_);
    const std::size_t per_channel = std::size_t(s.d0) * s.d2 * s.d3;
    GANACC_ASSERT(per_channel >= 1, "empty batchnorm input");

    Tensor mean(Shape4(1, channels_, 1, 1));
    Tensor inv_std(Shape4(1, channels_, 1, 1));
    if (mode == Mode::Batch) {
        for (int c = 0; c < channels_; ++c) {
            double m = 0.0;
            for (int n = 0; n < s.d0; ++n)
                for (int y = 0; y < s.d2; ++y)
                    for (int x = 0; x < s.d3; ++x)
                        m += in.get(n, c, y, x);
            m /= double(per_channel);
            double v = 0.0;
            for (int n = 0; n < s.d0; ++n)
                for (int y = 0; y < s.d2; ++y)
                    for (int x = 0; x < s.d3; ++x) {
                        double d = in.get(n, c, y, x) - m;
                        v += d * d;
                    }
            v /= double(per_channel);
            mean.ref(0, c, 0, 0) = float(m);
            inv_std.ref(0, c, 0, 0) =
                float(1.0 / std::sqrt(v + eps_));
            // Exponential running statistics for Frozen mode.
            runningMean_.ref(0, c, 0, 0) =
                (1.0f - momentum_) * runningMean_.get(0, c, 0, 0) +
                momentum_ * float(m);
            runningVar_.ref(0, c, 0, 0) =
                (1.0f - momentum_) * runningVar_.get(0, c, 0, 0) +
                momentum_ * float(v);
        }
    } else {
        for (int c = 0; c < channels_; ++c) {
            mean.ref(0, c, 0, 0) = runningMean_.get(0, c, 0, 0);
            inv_std.ref(0, c, 0, 0) = float(
                1.0 / std::sqrt(runningVar_.get(0, c, 0, 0) + eps_));
        }
    }

    Tensor xhat(s);
    Tensor out(s);
    for (int n = 0; n < s.d0; ++n)
        for (int c = 0; c < channels_; ++c) {
            float m = mean.get(0, c, 0, 0);
            float is = inv_std.get(0, c, 0, 0);
            float g = gamma_.get(0, c, 0, 0);
            float b = beta_.get(0, c, 0, 0);
            for (int y = 0; y < s.d2; ++y)
                for (int x = 0; x < s.d3; ++x) {
                    float xh = (in.get(n, c, y, x) - m) * is;
                    xhat.ref(n, c, y, x) = xh;
                    out.ref(n, c, y, x) = g * xh + b;
                }
        }

    lastMode_ = mode;
    cachedXhat_ = std::move(xhat);
    cachedInvStd_ = std::move(inv_std);
    haveCache_ = true;
    return out;
}

Tensor
BatchNormLayer::backward(const Tensor &dout)
{
    GANACC_ASSERT(haveCache_, "batchnorm backward before forward");
    const Shape4 &s = dout.shape();
    GANACC_ASSERT(s == cachedXhat_.shape(),
                  "batchnorm backward shape mismatch");
    const double per_channel = double(s.d0) * s.d2 * s.d3;

    Tensor din(s);
    for (int c = 0; c < channels_; ++c) {
        double sum_dout = 0.0, sum_dout_xhat = 0.0;
        for (int n = 0; n < s.d0; ++n)
            for (int y = 0; y < s.d2; ++y)
                for (int x = 0; x < s.d3; ++x) {
                    double g = dout.get(n, c, y, x);
                    sum_dout += g;
                    sum_dout_xhat += g * cachedXhat_.get(n, c, y, x);
                }
        gradBeta_.ref(0, c, 0, 0) += float(sum_dout);
        gradGamma_.ref(0, c, 0, 0) += float(sum_dout_xhat);

        const float g = gamma_.get(0, c, 0, 0);
        const float is = cachedInvStd_.get(0, c, 0, 0);
        if (lastMode_ == Mode::Batch) {
            // Full backward through the batch statistics:
            // dx = g*is * (dout - mean(dout) - xhat*mean(dout*xhat)).
            const double mean_dout = sum_dout / per_channel;
            const double mean_dx = sum_dout_xhat / per_channel;
            for (int n = 0; n < s.d0; ++n)
                for (int y = 0; y < s.d2; ++y)
                    for (int x = 0; x < s.d3; ++x)
                        din.ref(n, c, y, x) = float(
                            double(g) * is *
                            (dout.get(n, c, y, x) - mean_dout -
                             cachedXhat_.get(n, c, y, x) * mean_dx));
        } else {
            // Frozen statistics: a per-sample affine map.
            for (int n = 0; n < s.d0; ++n)
                for (int y = 0; y < s.d2; ++y)
                    for (int x = 0; x < s.d3; ++x)
                        din.ref(n, c, y, x) =
                            g * is * dout.get(n, c, y, x);
        }
    }
    return din;
}

void
BatchNormLayer::zeroGrad()
{
    gradGamma_.fill(0.0f);
    gradBeta_.fill(0.0f);
}

void
BatchNormLayer::restoreGrads(const Tensor &dgamma, const Tensor &dbeta)
{
    GANACC_ASSERT(dgamma.shape() == gradGamma_.shape() &&
                      dbeta.shape() == gradBeta_.shape(),
                  "batchnorm restoreGrads shape mismatch");
    gradGamma_ = dgamma;
    gradBeta_ = dbeta;
}

void
BatchNormLayer::applyUpdate(Optimizer &opt)
{
    opt.step(reinterpret_cast<std::uintptr_t>(&gamma_), gamma_,
             gradGamma_);
    opt.step(reinterpret_cast<std::uintptr_t>(&beta_), beta_,
             gradBeta_);
    zeroGrad();
}

} // namespace nn
} // namespace ganacc
