/**
 * @file
 * Tests for the memory substrates: off-chip bandwidth derivations
 * (eqs. 7-8), the Fig. 14 on-chip buffer plan, and the AccessTap
 * observer contract every access path must honour — the fault
 * injector and the schedule shadow checker both hang off it.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "gan/models.hh"
#include "mem/access_tap.hh"
#include "mem/offchip.hh"
#include "mem/onchip_buffer.hh"
#include "util/logging.hh"

namespace {

using namespace ganacc;
using mem::OffChipConfig;

TEST(OffChip, Eq7ReproducesPaperWPof)
{
    // Section V-C: 192 Gbps, 200 MHz, 16-bit data -> W_Pof = 30.
    OffChipConfig cfg;
    EXPECT_EQ(mem::deriveWPof(cfg), 30);
}

TEST(OffChip, Eq8ReproducesPaperStPof)
{
    // ST_Pof = 2.5 x W_Pof = 75.
    EXPECT_EQ(mem::deriveStPof(30), 75);
    EXPECT_EQ(mem::deriveStPof(4), 10);
}

TEST(OffChip, WPofScalesWithBandwidth)
{
    OffChipConfig half;
    half.bandwidthBitsPerSec = 96e9;
    EXPECT_EQ(mem::deriveWPof(half), 15);
    OffChipConfig slow;
    slow.frequencyHz = 100e6;
    EXPECT_EQ(mem::deriveWPof(slow), 60);
}

TEST(OffChip, RejectsInfeasibleConfigs)
{
    OffChipConfig tiny;
    tiny.bandwidthBitsPerSec = 1e6; // cannot feed one channel
    EXPECT_THROW(mem::deriveWPof(tiny), util::PanicError);
}

TEST(OffChip, BandwidthDemandMatchesWorstCaseFormula)
{
    // With the kernel fully resident (one pass), demand is
    // 2 * f * W_Pof * bits — the bound that produced eq. (7).
    OffChipConfig cfg;
    double demand = mem::zfwstBandwidthDemand(cfg, 30, 16, 16);
    EXPECT_NEAR(demand, 2.0 * 200e6 * 30 * 16, 1.0);
    EXPECT_LE(demand, cfg.bandwidthBitsPerSec);
    // More passes per result -> proportionally less traffic.
    EXPECT_NEAR(mem::zfwstBandwidthDemand(cfg, 30, 64, 16),
                demand / 4.0, 1.0);
}

TEST(OffChip, TrafficMeterConvertsToCycles)
{
    OffChipConfig cfg;
    mem::OffChipMemory dram(cfg);
    dram.read(1200);
    dram.write(1200);
    EXPECT_EQ(dram.bytesRead(), 1200u);
    // 2400 B = 19200 bits at 192 Gbps = 100 ns = 20 cycles @200 MHz.
    EXPECT_NEAR(dram.transferSeconds(), 100e-9, 1e-12);
    EXPECT_EQ(dram.transferCycles(), 20u);
    dram.reset();
    EXPECT_EQ(dram.bytesWritten(), 0u);
}

TEST(OnChip, OccupancyTrackingAndOverflow)
{
    mem::OnChipBuffer buf("test", 1000);
    buf.occupy(600);
    EXPECT_EQ(buf.occupiedBytes(), 600u);
    buf.occupy(400);
    EXPECT_EQ(buf.peakOccupied(), 1000u);
    EXPECT_THROW(buf.occupy(1), util::PanicError);
    buf.release(500);
    EXPECT_EQ(buf.occupiedBytes(), 500u);
    EXPECT_THROW(buf.release(501), util::PanicError);
}

TEST(OnChip, AccessCounters)
{
    mem::OnChipBuffer buf("test", 100);
    buf.read(10);
    buf.read(5);
    buf.write(7);
    EXPECT_EQ(buf.bytesRead(), 15u);
    EXPECT_EQ(buf.bytesWritten(), 7u);
    buf.resetCounters();
    EXPECT_EQ(buf.bytesRead(), 0u);
}

TEST(OnChip, PingPongSwapsRoles)
{
    mem::PingPongBuffer pp("inout", 128);
    pp.active().write(64);
    EXPECT_EQ(pp.active().bytesWritten(), 64u);
    pp.swap();
    EXPECT_EQ(pp.active().bytesWritten(), 0u);
    EXPECT_EQ(pp.shadow().bytesWritten(), 64u);
    EXPECT_EQ(pp.swapCount(), 1);
    EXPECT_EQ(pp.totalCapacityBytes(), 256u);
}

TEST(BufferPlan, DcganPlanMatchesSectionVB)
{
    gan::GanModel m = gan::makeDcgan();
    mem::BufferPlan plan = mem::planBuffers(m, 30, 2);
    // In&Out half = largest layer output: 64x32x32 @2B = 128 KiB.
    EXPECT_EQ(plan.inOutBytes, 65536u * 2);
    // Weight buffer = largest kernel set: 512x256x5x5 @2B.
    EXPECT_EQ(plan.weightBytes, 512u * 256 * 25 * 2);
    // Data buffer holds a full per-sample intermediate set + image.
    EXPECT_GT(plan.dataBytes, 2 * 135168u);
    EXPECT_EQ(plan.dataBytes, plan.errorBytes);
}

TEST(BufferPlan, AllModelsFitTheVcu9pBram)
{
    for (const auto &m : gan::allModels()) {
        mem::BufferPlan plan = mem::planBuffers(m, 30, 2);
        EXPECT_TRUE(mem::fitsBram(plan, 2160)) << m.name;
    }
}

TEST(BufferPlan, DcganBramCountNearTable3)
{
    // Table III reports 2008 BRAM-36 blocks for the full design; the
    // analytic plan must land in the same regime.
    gan::GanModel m = gan::makeDcgan();
    mem::BufferPlan plan = mem::planBuffers(m, 30, 2);
    EXPECT_GT(plan.bram36Count(), 1500);
    EXPECT_LE(plan.bram36Count(), 2160);
}

TEST(BufferPlan, TotalsAreConsistent)
{
    gan::GanModel m = gan::makeMnistGan();
    mem::BufferPlan plan = mem::planBuffers(m, 30, 2);
    EXPECT_EQ(plan.totalBytes(),
              2 * plan.inOutBytes + plan.dataBytes + plan.errorBytes +
                  plan.weightBytes + 2 * plan.gradWBytes);
}

/** Records every (bytes, is_write) event a tapped model emits. */
class RecordingTap final : public mem::AccessTap
{
  public:
    void
    onAccess(std::uint64_t bytes, bool is_write) override
    {
        events.emplace_back(bytes, is_write);
    }

    std::vector<std::pair<std::uint64_t, bool>> events;
};

TEST(AccessTap, OnChipBufferFiresOnEveryAccessPath)
{
    mem::OnChipBuffer buf("probe", 1024);
    RecordingTap tap;
    buf.setAccessTap(&tap);
    buf.read(16);
    buf.write(32);
    buf.read(0); // even zero-byte accesses must reach the observer
    ASSERT_EQ(tap.events.size(), 3u);
    EXPECT_EQ(tap.events[0], std::make_pair(std::uint64_t(16), false));
    EXPECT_EQ(tap.events[1], std::make_pair(std::uint64_t(32), true));
    EXPECT_EQ(tap.events[2], std::make_pair(std::uint64_t(0), false));
    // The tap observes; it must not perturb the counters.
    EXPECT_EQ(buf.bytesRead(), 16u);
    EXPECT_EQ(buf.bytesWritten(), 32u);
}

TEST(AccessTap, OnChipBufferDetachStopsDelivery)
{
    mem::OnChipBuffer buf("probe", 1024);
    RecordingTap tap;
    buf.setAccessTap(&tap);
    buf.read(8);
    buf.setAccessTap(nullptr);
    buf.read(8);
    buf.write(8);
    EXPECT_EQ(tap.events.size(), 1u);
    EXPECT_EQ(buf.bytesRead(), 16u);
}

TEST(AccessTap, OffChipMemoryFiresOnEveryAccessPath)
{
    mem::OffChipMemory dram{OffChipConfig{}};
    RecordingTap tap;
    dram.setAccessTap(&tap);
    dram.read(64);
    dram.write(128);
    ASSERT_EQ(tap.events.size(), 2u);
    EXPECT_EQ(tap.events[0], std::make_pair(std::uint64_t(64), false));
    EXPECT_EQ(tap.events[1], std::make_pair(std::uint64_t(128), true));
    // reset() clears counters without synthesizing tap events.
    dram.reset();
    EXPECT_EQ(tap.events.size(), 2u);
    EXPECT_EQ(dram.bytesRead(), 0u);
    dram.setAccessTap(nullptr);
    dram.write(1);
    EXPECT_EQ(tap.events.size(), 2u);
}

TEST(AccessTap, PingPongHalvesAreIndependentlyTappable)
{
    mem::PingPongBuffer pp("pp", 256);
    RecordingTap active_tap, shadow_tap;
    pp.active().setAccessTap(&active_tap);
    pp.shadow().setAccessTap(&shadow_tap);
    pp.active().read(4);
    pp.shadow().write(8);
    pp.swap(); // the taps follow the halves, not the roles
    pp.active().write(2);
    ASSERT_EQ(active_tap.events.size(), 1u);
    EXPECT_EQ(active_tap.events[0],
              std::make_pair(std::uint64_t(4), false));
    ASSERT_EQ(shadow_tap.events.size(), 2u);
    EXPECT_EQ(shadow_tap.events[1],
              std::make_pair(std::uint64_t(2), true));
}

} // namespace
