/**
 * @file
 * Topology codec implementation.
 */

#include "fleet/topology.hh"

#include <sstream>

#include "util/json.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace ganacc {
namespace fleet {

int
Topology::effectiveRf() const
{
    const int n = int(shards.size());
    return rf < n ? rf : n;
}

namespace {

void
validate(const Topology &topo)
{
    if (topo.shards.empty())
        util::fatal("fleet topology needs at least one shard");
    if (topo.vnodes < 1)
        util::fatal("fleet topology: vnodes must be positive");
    if (topo.rf < 1)
        util::fatal("fleet topology: rf must be positive");
    if (topo.self < -1 || topo.self >= int(topo.shards.size()))
        util::fatal("fleet topology: self index ", topo.self,
                    " out of range for ", topo.shards.size(),
                    " shards");
    for (const std::string &addr : topo.shards)
        if (addr.empty())
            util::fatal("fleet topology: empty shard address");
}

} // namespace

std::string
toJson(const Topology &topo)
{
    validate(topo);
    std::ostringstream os;
    os << "{\"shards\":[";
    for (std::size_t i = 0; i < topo.shards.size(); ++i)
        os << (i ? "," : "") << '"'
           << util::escapeJson(topo.shards[i]) << '"';
    os << "],\"vnodes\":" << topo.vnodes << ",\"rf\":" << topo.rf
       << ",\"self\":" << topo.self << "}";
    return os.str();
}

Topology
topologyFromJson(const std::string &text)
{
    const util::json::Value doc = util::json::parse(text);
    const util::json::Object &o = doc.asObject();
    Topology topo;
    topo.shards.clear();
    for (const util::json::Value &v : o.at("shards").asArray())
        topo.shards.push_back(v.asString());
    topo.vnodes = o.at("vnodes").asInt();
    topo.rf = o.at("rf").asInt();
    topo.self = o.at("self").asInt();
    validate(topo);
    return topo;
}

Topology
parseShardList(const std::string &csv, int vnodes, int rf)
{
    Topology topo;
    topo.vnodes = vnodes;
    topo.rf = rf;
    std::size_t start = 0;
    while (start <= csv.size()) {
        std::size_t comma = csv.find(',', start);
        if (comma == std::string::npos)
            comma = csv.size();
        const std::string addr =
            csv.substr(start, comma - start);
        if (!addr.empty())
            topo.shards.push_back(addr);
        start = comma + 1;
    }
    validate(topo);
    return topo;
}

} // namespace fleet
} // namespace ganacc
