/**
 * @file
 * Wasserstein GAN losses (paper eqs. 1, 2 and 6).
 *
 * The deferred-synchronization insight of Section IV-A rests on eq. 6:
 * because the loss linearly averages per-sample critic outputs, the
 * output-layer error of each sample is a constant (±1/m) independent
 * of the other samples, so backpropagation can start per sample.
 */

#ifndef GANACC_NN_LOSS_HH
#define GANACC_NN_LOSS_HH

#include <vector>

#include "tensor/tensor.hh"

namespace ganacc {
namespace nn {

/**
 * Critic (discriminator) loss, eq. (1):
 * loss = -(1/m) * sum_i [ D(x_i) - D(x~_i) ].
 *
 * @param real_scores per-sample critic outputs on real data.
 * @param fake_scores per-sample critic outputs on generated data.
 */
double wassersteinCriticLoss(const std::vector<double> &real_scores,
                             const std::vector<double> &fake_scores);

/** Generator loss, eq. (2): loss = -(1/m) * sum_i D(x~_i). */
double wassersteinGeneratorLoss(const std::vector<double> &fake_scores);

/**
 * Output-layer error of the critic for one *real* sample (eq. 6):
 * d loss / d D(x_i) = -1/m. Independent of every other sample.
 */
double criticOutputErrorReal(int batch_size);

/**
 * Output-layer error of the critic for one *fake* sample during the
 * discriminator update: d loss / d D(x~_i) = +1/m.
 */
double criticOutputErrorFake(int batch_size);

/**
 * Output-layer error fed back through the critic during the
 * *generator* update: d loss_gen / d D(x~_i) = -1/m.
 */
double generatorOutputError(int batch_size);

} // namespace nn
} // namespace ganacc

#endif // GANACC_NN_LOSS_HH
