/**
 * @file
 * Metric implementations.
 */

#include "gan/metrics.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/logging.hh"

namespace ganacc {
namespace gan {

using tensor::Tensor;

double
momentDistance(const Tensor &a, const Tensor &b)
{
    GANACC_ASSERT(a.shape().d1 == b.shape().d1 &&
                      a.shape().d2 == b.shape().d2 &&
                      a.shape().d3 == b.shape().d3,
                  "momentDistance needs same per-sample shape");
    GANACC_ASSERT(a.shape().d0 > 0 && b.shape().d0 > 0,
                  "empty batches");
    const int pixels = a.shape().d1 * a.shape().d2 * a.shape().d3;
    double acc = 0.0;
    for (int p = 0; p < pixels; ++p) {
        auto moments = [&](const Tensor &t) {
            const int n = t.shape().d0;
            double m = 0.0, sq = 0.0;
            for (int i = 0; i < n; ++i) {
                double v = t.data()[std::size_t(i) * pixels + p];
                m += v;
                sq += v * v;
            }
            m /= n;
            double var = std::max(0.0, sq / n - m * m);
            return std::pair<double, double>(m, std::sqrt(var));
        };
        auto [ma, sa] = moments(a);
        auto [mb, sb] = moments(b);
        acc += (ma - mb) * (ma - mb) + (sa - sb) * (sa - sb);
    }
    return std::sqrt(acc / pixels);
}

namespace {

/** Squared euclidean distance between two flattened samples. */
double
sqDist(const Tensor &a, int i, const Tensor &b, int j, int pixels)
{
    const float *pa = a.data() + std::size_t(i) * pixels;
    const float *pb = b.data() + std::size_t(j) * pixels;
    double s = 0.0;
    for (int p = 0; p < pixels; ++p) {
        double d = double(pa[p]) - pb[p];
        s += d * d;
    }
    return s;
}

} // namespace

double
medianBandwidth(const Tensor &a, const Tensor &b)
{
    const int pixels = a.shape().d1 * a.shape().d2 * a.shape().d3;
    std::vector<double> dists;
    for (int i = 0; i < a.shape().d0; ++i)
        for (int j = 0; j < b.shape().d0; ++j)
            dists.push_back(sqDist(a, i, b, j, pixels));
    GANACC_ASSERT(!dists.empty(), "no pairs for bandwidth");
    std::nth_element(dists.begin(), dists.begin() + dists.size() / 2,
                     dists.end());
    double median_sq = dists[dists.size() / 2];
    return std::sqrt(std::max(median_sq, 1e-12) / 2.0);
}

double
mmd2(const Tensor &a, const Tensor &b, double bandwidth)
{
    GANACC_ASSERT(a.shape().d1 == b.shape().d1 &&
                      a.shape().d2 == b.shape().d2 &&
                      a.shape().d3 == b.shape().d3,
                  "mmd2 needs same per-sample shape");
    const int m = a.shape().d0;
    const int n = b.shape().d0;
    GANACC_ASSERT(m >= 2 && n >= 2, "mmd2 needs >= 2 samples each");
    const int pixels = a.shape().d1 * a.shape().d2 * a.shape().d3;
    if (bandwidth <= 0.0)
        bandwidth = medianBandwidth(a, b);
    const double gamma = 1.0 / (2.0 * bandwidth * bandwidth);
    auto k = [&](double sq) { return std::exp(-gamma * sq); };

    double kxx = 0.0;
    for (int i = 0; i < m; ++i)
        for (int j = 0; j < m; ++j)
            if (i != j)
                kxx += k(sqDist(a, i, a, j, pixels));
    kxx /= double(m) * (m - 1);

    double kyy = 0.0;
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
            if (i != j)
                kyy += k(sqDist(b, i, b, j, pixels));
    kyy /= double(n) * (n - 1);

    double kxy = 0.0;
    for (int i = 0; i < m; ++i)
        for (int j = 0; j < n; ++j)
            kxy += k(sqDist(a, i, b, j, pixels));
    kxy /= double(m) * n;

    return kxx + kyy - 2.0 * kxy;
}

} // namespace gan
} // namespace ganacc
