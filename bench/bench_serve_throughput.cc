/**
 * @file
 * Serving-throughput bench: requests/second of the simulation service
 * across the three tiers (cold = cycle walk, warm disk = persistent
 * result store, warm memory = in-process cycle cache), for one client
 * and for eight concurrent clients driving the same engine.
 *
 * This is the quantitative case for the serving subsystem: once a
 * figure's (arch, unrolling, layer) population is on disk, every
 * later regeneration — same process or not — replays it at disk
 * speed. The summary line reports the warm-over-cold speedup the
 * subsystem is expected to keep above 5x.
 */

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <thread>
#include <vector>

#include "bench/bench_common.hh"
#include "core/cycle_cache.hh"
#include "core/unrolling.hh"
#include "gan/models.hh"
#include "serve/engine.hh"
#include "sim/phase.hh"
#include "util/args.hh"
#include "util/table.hh"

namespace {

using namespace ganacc;

/**
 * The request population: every job of every Table V row of every
 * model on every architecture, as individual spec requests — the same
 * cycle walks the figure benches perform, phrased as service traffic.
 */
std::vector<serve::Request>
makeRequests()
{
    struct Row
    {
        sim::PhaseFamily family;
        core::BankRole role;
        int pes;
    };
    const Row rows[] = {
        {sim::PhaseFamily::D, core::BankRole::ST, 1200},
        {sim::PhaseFamily::G, core::BankRole::ST, 1200},
        {sim::PhaseFamily::Dw, core::BankRole::W, 480},
        {sim::PhaseFamily::Gw, core::BankRole::W, 480},
    };
    std::vector<serve::Request> reqs;
    std::uint64_t id = 1;
    for (const auto &m : gan::allModels()) {
        for (const Row &row : rows) {
            for (core::ArchKind kind : core::allArchKinds()) {
                const sim::Unroll u = core::paperUnroll(
                    kind, row.role, row.family, row.pes);
                for (const auto &job :
                     sim::familyJobs(m, row.family)) {
                    serve::Request req;
                    req.id = id++;
                    req.kind = kind;
                    req.unroll = u;
                    req.hasSpec = true;
                    req.spec = job;
                    reqs.push_back(req);
                }
            }
        }
    }
    return reqs;
}

struct PhaseResult
{
    double seconds = 0.0;
    double reqPerSec = 0.0;
    serve::EngineCounters counters;
};

/**
 * Drive `clients` threads against the engine, each pipelining its
 * share of the request list with a bounded window of outstanding
 * futures (a client library replaying a file behaves the same way).
 */
PhaseResult
runPhase(serve::Engine &engine, const std::vector<serve::Request> &reqs,
         int clients)
{
    const serve::EngineCounters before = engine.counters();
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            const std::size_t window = 32;
            std::vector<std::future<serve::Response>> pending;
            for (std::size_t i = std::size_t(c); i < reqs.size();
                 i += std::size_t(clients)) {
                pending.push_back(engine.submit(reqs[i]));
                if (pending.size() >= window) {
                    pending.front().get();
                    pending.erase(pending.begin());
                }
            }
            for (auto &f : pending)
                f.get();
        });
    }
    for (auto &t : threads)
        t.join();
    const auto t1 = std::chrono::steady_clock::now();

    PhaseResult r;
    r.seconds = std::chrono::duration<double>(t1 - t0).count();
    r.reqPerSec = double(reqs.size()) / r.seconds;
    const serve::EngineCounters after = engine.counters();
    r.counters.memHits = after.memHits - before.memHits;
    r.counters.diskHits = after.diskHits - before.diskHits;
    r.counters.simulated = after.simulated - before.simulated;
    r.counters.deduped = after.deduped - before.deduped;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    util::ArgParser args(argc, argv);
    const int jobs = args.getJobs();
    std::string cache_dir = args.getCacheDir();
    if (args.helpRequested()) {
        args.usage(std::cout);
        return 0;
    }
    args.finish();
    if (cache_dir.empty())
        cache_dir = (std::filesystem::temp_directory_path() /
                     "ganacc-serve-bench")
                        .string();

    bench::banner(
        "Serving throughput — cold vs warm, 1 vs 8 clients",
        "a warm result store replays figure populations >= 5x faster "
        "than cold simulation");

    const auto reqs = makeRequests();
    std::cout << "\n" << reqs.size() << " spec requests (3 models x 4 "
              << "phase families x 5 architectures), " << jobs
              << " engine workers, store at " << cache_dir << "\n\n";

    util::Table t({"phase", "clients", "seconds", "req/s", "sim",
                   "disk", "mem", "dup"});
    auto addRow = [&](const std::string &name, int clients,
                      const PhaseResult &r) {
        t.addRow(name, clients, r.seconds, r.reqPerSec,
                 r.counters.simulated, r.counters.diskHits,
                 r.counters.memHits, r.counters.deduped);
    };

    double cold1 = 0, warm_disk1 = 0, warm_mem1 = 0;
    for (int clients : {1, 8}) {
        // Cold: empty store, empty memory cache — every request is a
        // fresh cycle walk (concurrent duplicates may single-flight).
        std::filesystem::remove_all(cache_dir);
        core::CycleCache::instance().clear();
        serve::EngineOptions opts;
        opts.jobs = jobs;
        opts.cacheDir = cache_dir;
        PhaseResult cold;
        {
            serve::Engine engine(opts);
            cold = runPhase(engine, reqs, clients);
            engine.drain();
        }
        addRow("cold", clients, cold);

        // Warm disk: a *new* engine (new process, morally) over the
        // populated store, memory cache dropped.
        core::CycleCache::instance().clear();
        serve::Engine engine(opts);
        const PhaseResult disk = runPhase(engine, reqs, clients);
        addRow("warm disk", clients, disk);

        // Warm memory: same engine again; everything is memoized.
        const PhaseResult mem = runPhase(engine, reqs, clients);
        addRow("warm mem", clients, mem);
        engine.drain();

        if (clients == 1) {
            cold1 = cold.reqPerSec;
            warm_disk1 = disk.reqPerSec;
            warm_mem1 = mem.reqPerSec;
        }
    }
    t.print(std::cout);

    std::cout << "\nwarm-over-cold (1 client): disk "
              << warm_disk1 / cold1 << "x, memory "
              << warm_mem1 / cold1 << "x (target: >= 5x)\n";
    return 0;
}
