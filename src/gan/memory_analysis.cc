/**
 * @file
 * Memory footprint analysis implementation.
 */

#include "gan/memory_analysis.hh"

#include "util/logging.hh"

namespace ganacc {
namespace gan {

MemoryFootprint
analyzeMemory(const GanModel &model, int batch_size, int bytes_per_elem)
{
    GANACC_ASSERT(batch_size > 0 && bytes_per_elem > 0,
                  "bad memory-analysis parameters");
    MemoryFootprint f;
    f.perSampleDiscBytes =
        model.discIntermediateElems() * std::size_t(bytes_per_elem);
    f.perSampleGenBytes =
        model.genIntermediateElems() * std::size_t(bytes_per_elem);

    const std::size_t m = std::size_t(batch_size);
    // Discriminator update sees m real + m fake samples (Fig. 2
    // steps 1-4): 2m intermediate sets stay live until the loss
    // synchronizes.
    f.syncDiscUpdateBytes = 2 * m * f.perSampleDiscBytes;
    // Generator update (steps 5-9): every sample's G intermediates are
    // needed for Gw, and the relayed D activations are live until the
    // synchronized loss is formed.
    f.syncGenUpdateBytes =
        m * (f.perSampleGenBytes + f.perSampleDiscBytes);

    // Deferred: one sample's forward data plus its backward errors
    // (the Data and Error buffers of Fig. 14).
    f.deferredDiscUpdateBytes = 2 * f.perSampleDiscBytes;
    f.deferredGenUpdateBytes =
        2 * (f.perSampleGenBytes + f.perSampleDiscBytes);
    return f;
}

} // namespace gan
} // namespace ganacc
