/**
 * @file
 * Statistics gathered by one microarchitecture run.
 *
 * These are the quantities the paper's evaluation plots: cycles and
 * PE-slot occupancy (Figs. 15, 17, 18) and on-chip buffer accesses
 * broken into weight loads, input loads and output reads/writes
 * (Fig. 16). The conservation invariant
 *   effectiveMacs + ineffectualMacs + idlePeSlots = cycles * nPes
 * is asserted by the property tests.
 */

#ifndef GANACC_SIM_STATS_HH
#define GANACC_SIM_STATS_HH

#include <cstdint>
#include <string>

namespace ganacc {
namespace sim {

/** Counters for one convolution job on one architecture. */
struct RunStats
{
    std::uint64_t cycles = 0;
    std::uint64_t nPes = 0; ///< PEs of the array that ran the job

    /// MACs whose operands are both structurally non-zero.
    std::uint64_t effectiveMacs = 0;
    /// PE slots that multiplied a structural zero (wasted work).
    std::uint64_t ineffectualMacs = 0;
    /// PE slots with nothing scheduled at all.
    std::uint64_t idlePeSlots = 0;
    /// Ineffectual slots whose operands were clock-gated (energy
    /// saved while the cycle elapsed); a subset of ineffectualMacs,
    /// only counted by gating architectures (RST).
    std::uint64_t gatedSlots = 0;

    /// On-chip buffer accesses (Fig. 16 categories).
    std::uint64_t weightLoads = 0;
    std::uint64_t inputLoads = 0;
    std::uint64_t outputReads = 0;
    std::uint64_t outputWrites = 0;

    /** Total PE slots offered: cycles * nPes. */
    std::uint64_t
    totalSlots() const
    {
        return cycles * nPes;
    }

    /** Fraction of PE slots doing useful work. */
    double
    utilization() const
    {
        return totalSlots() ? double(effectiveMacs) / double(totalSlots())
                            : 0.0;
    }

    /** Total on-chip accesses. */
    std::uint64_t
    totalAccesses() const
    {
        return weightLoads + inputLoads + outputReads + outputWrites;
    }

    /** Accumulate another job's stats (same array: nPes must match,
     *  or be unset). Cycles add (jobs run back-to-back). */
    RunStats &operator+=(const RunStats &o);

    std::string str() const;
};

} // namespace sim
} // namespace ganacc

#endif // GANACC_SIM_STATS_HH
