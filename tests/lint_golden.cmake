# CTest driver for the lint-golden check: runs ganacc-lint over every
# bundled network in JSON mode and byte-compares the report against the
# committed golden. Variables: LINT (binary), GOLDEN (committed report),
# OUT (scratch output path).

execute_process(
    COMMAND ${LINT} --model all --format=json
    OUTPUT_FILE ${OUT}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "ganacc-lint exited with status ${rc}")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT} ${GOLDEN}
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR
        "lint report diverges from ${GOLDEN}; inspect ${OUT} and, if "
        "the change is intended, regenerate the golden with: "
        "ganacc-lint --model all --format=json")
endif()
