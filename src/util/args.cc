/**
 * @file
 * Argument-parser implementation.
 */

#include "util/args.hh"

#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdlib>

#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace ganacc {
namespace util {

ArgParser::ArgParser(int argc, const char *const *argv)
{
    GANACC_ASSERT(argc >= 1, "argv must contain the program name");
    program_ = argv[0];
    for (int i = 1; i < argc; ++i) {
        std::string token = argv[i];
        if (token.rfind("--", 0) != 0)
            fatal("unexpected positional argument '", token,
                  "' (flags are --name [value])");
        std::string name = token.substr(2);
        auto eq = name.find('=');
        if (eq != std::string::npos) {
            values_[name.substr(0, eq)] = name.substr(eq + 1);
            continue;
        }
        // "--name value" unless the next token is another flag or the
        // end of the line (then it's boolean).
        if (i + 1 < argc &&
            std::string(argv[i + 1]).rfind("--", 0) != 0) {
            values_[name] = argv[i + 1];
            ++i;
        } else {
            values_[name] = "";
        }
    }
}

std::optional<std::string>
ArgParser::rawValue(const std::string &name) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return std::nullopt;
    return it->second;
}

void
ArgParser::registerFlag(const std::string &name,
                        const std::string &default_text,
                        const std::string &help)
{
    for (const auto &r : registered_)
        if (r.name == name)
            return;
    registered_.push_back({name, default_text, help});
}

int
ArgParser::getInt(const std::string &name, int def,
                  const std::string &help)
{
    registerFlag(name, std::to_string(def), help);
    auto raw = rawValue(name);
    if (!raw)
        return def;
    char *end = nullptr;
    errno = 0;
    long v = std::strtol(raw->c_str(), &end, 10);
    if (raw->empty() || *end != '\0')
        fatal("--", name, " expects an integer, got '", *raw, "'");
    // strtol saturates (with ERANGE) instead of failing, and long may
    // be wider than int — reject both instead of silently narrowing.
    if (errno == ERANGE || v < INT_MIN || v > INT_MAX)
        fatal("--", name, ": '", *raw, "' is out of the integer range ",
              INT_MIN, "..", INT_MAX);
    return int(v);
}

double
ArgParser::getDouble(const std::string &name, double def,
                     const std::string &help)
{
    registerFlag(name, std::to_string(def), help);
    auto raw = rawValue(name);
    if (!raw)
        return def;
    char *end = nullptr;
    errno = 0;
    double v = std::strtod(raw->c_str(), &end);
    if (raw->empty() || *end != '\0')
        fatal("--", name, " expects a number, got '", *raw, "'");
    // Overflow saturates to ±HUGE_VAL with ERANGE — reject it.
    // Underflow (tiny but representable-as-zero values) is accepted.
    if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL))
        fatal("--", name, ": '", *raw,
              "' overflows the double range");
    return v;
}

std::string
ArgParser::getString(const std::string &name, const std::string &def,
                     const std::string &help)
{
    registerFlag(name, def, help);
    auto raw = rawValue(name);
    return raw ? *raw : def;
}

bool
ArgParser::getFlag(const std::string &name, const std::string &help)
{
    registerFlag(name, "off", help);
    return values_.count(name) > 0;
}

int
ArgParser::getJobs()
{
    int requested = getInt(
        "jobs", 0,
        "worker threads for parallel sweeps (0 = GANACC_JOBS env or "
        "hardware concurrency)");
    if (requested < 0)
        fatal("--jobs expects a non-negative count, got ", requested);
    return resolveJobs(requested);
}

std::string
ArgParser::getCacheDir()
{
    std::string dir = getString(
        "cache-dir", "",
        "persistent result-store directory (default: GANACC_CACHE_DIR "
        "env; empty = no disk cache)");
    if (!dir.empty())
        return dir;
    const char *env = std::getenv("GANACC_CACHE_DIR");
    return env ? env : "";
}

std::string
ArgParser::getTracePath()
{
    registerFlag("trace", "off",
                 "write a Chrome trace of telemetry spans to PATH "
                 "(bare --trace = ganacc_trace.json; default: "
                 "GANACC_TRACE env; empty = tracing off)");
    auto raw = rawValue("trace");
    if (raw)
        return raw->empty() ? "ganacc_trace.json" : *raw;
    const char *env = std::getenv("GANACC_TRACE");
    return env ? env : "";
}

bool
ArgParser::helpRequested() const
{
    return values_.count("help") > 0;
}

void
ArgParser::usage(std::ostream &os) const
{
    os << "usage: " << program_ << " [flags]\n";
    for (const auto &r : registered_)
        os << "  --" << r.name << " (default " << r.defaultText
           << "): " << r.help << "\n";
}

void
ArgParser::finish() const
{
    for (const auto &[name, value] : values_) {
        if (name == "help")
            continue;
        bool known = false;
        for (const auto &r : registered_)
            known |= r.name == name;
        if (!known)
            fatal("unknown flag --", name, " (try --help)");
    }
}

} // namespace util
} // namespace ganacc
