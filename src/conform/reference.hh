/**
 * @file
 * The single-threaded in-process reference model of the simulation
 * service.
 *
 * The model consumes the same operation sequence as the live daemon
 * and predicts every observable the harness can read back: the
 * semantic content of each wire response (id, ok/error, provenance,
 * exact RunStats, admissible cache tier), the obs-counter values a
 * telemetry probe must report, and the on-disk state of every result
 * store entry. Stats come from *direct* simulation
 * (core::makeArch(kind, u)->run(spec), memoized process-wide) — the
 * model never touches the CycleCache or a ResultStore, so agreement
 * is evidence, not tautology.
 *
 * Determinism contract: the harness applies operations in lockstep
 * (all responses of op N are read before op N+1 is sent), so every
 * engine, cache and store counter is exactly predictable — with one
 * deliberate exception: inside a DupBurst the split between memory
 * hits and single-flight followers depends on scheduling, so those
 * two counters are tracked as intervals whose *sum* stays exact.
 */

#ifndef GANACC_CONFORM_REFERENCE_HH
#define GANACC_CONFORM_REFERENCE_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "conform/ops.hh"
#include "serve/protocol.hh"
#include "sim/stats.hh"

namespace ganacc {
namespace conform {

/** What the model predicts for one wire response line. */
struct ExpectedResponse
{
    std::uint64_t id = 0;
    bool ok = false;
    bool checkError = false; ///< compare `error` text exactly
    std::string error;
    bool isProbe = false; ///< telemetry response (counters checked)
    bool isMetricsProbe = false; ///< Prometheus-text response
    bool isTraceDrain = false;   ///< span-batch response
    std::string arch;     ///< ok simulation responses only:
    std::string unrollJson;
    sim::RunStats stats;
    /// Admissible "cache" field values ("mem"/"disk"/"sim"/"dup").
    std::vector<std::string> allowedTiers;
};

/** A closed [lo, hi] expectation for one counter. */
struct Interval
{
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;

    void
    bump(std::uint64_t n = 1)
    {
        lo += n;
        hi += n;
    }

    void
    widen(std::uint64_t extra)
    {
        hi += extra;
    }

    bool
    admits(std::uint64_t v) const
    {
        return lo <= v && v <= hi;
    }

    std::string str() const;
};

/** Every counter a telemetry probe is checked against. Serve-layer
 *  counters are deltas against the harness's baseline snapshot (the
 *  obs registry is process-global and cumulative); cache counters are
 *  absolute since the last memory eviction (CycleCache::clear resets
 *  them); store counters are absolute for the current store session
 *  (a restart opens a fresh store). */
struct CounterExpectations
{
    Interval requests, errors, probes;
    /// The live-collection probe forms: metrics (Prometheus text)
    /// and trace-drain (span batch), each with its own counter.
    Interval metricsProbes, traceDrains;
    Interval memHits, diskHits, simulated, deduped;
    Interval memPlusDup; ///< memHits + deduped: exact even in bursts
    /// Replication writes acknowledged / requests shed at admission.
    /// Both pin to zero on a single daemon in lockstep; puts count in
    /// fleet runs, overloaded stays zero even there (lockstep never
    /// fills a 256-deep queue).
    Interval puts, overloaded;
    Interval cacheHits, cacheMisses, cacheDiskHits, cacheSimulated;
    std::uint64_t cacheEntries = 0;
    Interval storeHits, storeMisses, storeStale, storeCorrupt,
        storeWrites;
};

/** Expected on-disk state of one store entry. */
enum class DiskState
{
    Absent,       ///< no file at the live address
    Good,         ///< current-version entry with the reference stats
    PlantedStale, ///< parseable entry with a foreign version stamp
    Corrupt,      ///< damaged bytes at the live address
};

class ReferenceModel
{
  public:
    /** Model a daemon whose store lives at `storeDir`. */
    explicit ReferenceModel(std::string storeDir);

    /**
     * Feed one operation; returns the expected wire responses (empty
     * for out-of-band ops). Mutates the modelled cache/store/counter
     * state exactly as the correct daemon would.
     */
    std::vector<ExpectedResponse> apply(const Op &op);

    const CounterExpectations &counters() const { return c_; }

    /**
     * Compare the actual store directory against the modelled
     * per-entry states (presence, version, stats, quarantine files,
     * leaked tmp files). Returns "" when consistent, else a
     * "; "-joined list of violations.
     */
    std::string diffStore() const;

    /** Reference stats of a triple: direct simulation, memoized
     *  process-wide (pure function, safe to share across runs). */
    static const sim::RunStats &directStats(core::ArchKind kind,
                                            const sim::Unroll &u,
                                            const sim::ConvSpec &spec);

    /** The live store address of a triple under `storeDir`. */
    std::string entryPath(core::ArchKind kind, const sim::Unroll &u,
                          const sim::ConvSpec &spec) const;

    /** The exact bytes ResultStore would write for this triple with
     *  the given stats and version stamp (used by PlantStale and by
     *  the Truncate corruption of a not-yet-written entry). */
    static std::string entryBody(core::ArchKind kind,
                                 const sim::Unroll &u,
                                 const sim::ConvSpec &spec,
                                 const sim::RunStats &stats,
                                 const std::string &version);

    /** Record the out-of-band mutations the harness performs on the
     *  filesystem / process state, keeping the model in sync. */
    void noteEvictMemory();
    void noteEvictEntry(const Op &t);
    void noteCorruptEntry(const Op &t);
    void notePlantStale(const Op &t);
    void noteFsFaults(const fault::FsFaultPlan &plan);
    void noteRestart();

    /** Model a replication write landing on this daemon: the triple
     *  enters the memory tier and writes through to the store (same
     *  fault seams as a simulate-and-store), requests and puts count.
     *  The fleet model calls this on each replica of a fresh result;
     *  the entry is modelled Good, i.e. carrying the reference stats —
     *  which is what a genuine peer-simulated result holds. */
    void notePut(core::ArchKind kind, const sim::Unroll &u,
                 const sim::ConvSpec &spec);

    /** Refresh the modelled cache-entries gauge (mem-tier size).
     *  Probe handling does this for the probed model; the fleet
     *  model must refresh every shard before summing. */
    void syncCacheEntries() { c_.cacheEntries = mem_.size(); }

  private:
    struct Entry
    {
        DiskState state = DiskState::Absent;
        bool quarantineFile = false; ///< <key>.json.quarantined exists
        core::ArchKind kind = core::ArchKind::NLR;
        sim::Unroll unroll;
        sim::ConvSpec spec;
    };

    /** The entry slot of a triple, creating it on first touch. */
    Entry &entryOf(core::ArchKind kind, const sim::Unroll &u,
                   const sim::ConvSpec &spec);

    /** Store write-through of a fresh result, mirroring
     *  ResultStore::store's fault-seam order. */
    void writeThrough(Entry &e);

    /** One cache-level lookup: mirrors CycleCache::stats over the
     *  modelled tiers, mutating counters, fault budgets and disk
     *  state. Returns "mem" / "disk" / "sim". */
    std::string lookupJob(core::ArchKind kind, const sim::Unroll &u,
                          const sim::ConvSpec &spec);

    /** Expected handling of one successfully decoded request. */
    ExpectedResponse handleDecoded(const serve::Request &req);

    std::string storeDir_;
    CounterExpectations c_;
    std::set<std::string> mem_; ///< memory-tier-resident content keys
    std::map<std::string, Entry> disk_; ///< key -> expected state
    /// Mirrors of the process-wide fault budgets, consumed in the
    /// same order the store's seams consume them.
    std::uint64_t readFaults_ = 0;
    std::uint64_t writeFaults_ = 0;
    std::uint64_t tornWrites_ = 0;
};

} // namespace conform
} // namespace ganacc

#endif // GANACC_CONFORM_REFERENCE_HH
