/**
 * @file
 * Checkpoint serialization implementation.
 */

#include "gan/serialize.hh"

#include <cstdint>
#include <fstream>

#include "nn/batchnorm.hh"
#include "util/logging.hh"

namespace ganacc {
namespace gan {

using tensor::Shape4;
using tensor::Tensor;

namespace {

constexpr std::uint32_t kMagic = 0x47414E43; // "GANC"
constexpr std::uint32_t kVersion = 1;

void
writeU32(std::ostream &os, std::uint32_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof v);
}

std::uint32_t
readU32(std::istream &is)
{
    std::uint32_t v = 0;
    is.read(reinterpret_cast<char *>(&v), sizeof v);
    if (!is)
        util::fatal("checkpoint truncated");
    return v;
}

/** Every parameter tensor of a network, in a stable order. */
template <typename NetworkT, typename Fn>
void
forEachParam(NetworkT &net, Fn &&fn)
{
    for (auto &layer : net.layers()) {
        fn(layer->weights());
        if (layer->hasBatchNorm()) {
            auto *bn = layer->batchNorm();
            fn(bn->gamma());
            fn(bn->beta());
            // Running statistics are state, not parameters, but a
            // checkpoint is useless without them.
            fn(const_cast<Tensor &>(bn->runningMean()));
            fn(const_cast<Tensor &>(bn->runningVar()));
        }
    }
}

} // namespace

void
writeTensor(std::ostream &os, const Tensor &t)
{
    const Shape4 &s = t.shape();
    writeU32(os, std::uint32_t(s.d0));
    writeU32(os, std::uint32_t(s.d1));
    writeU32(os, std::uint32_t(s.d2));
    writeU32(os, std::uint32_t(s.d3));
    os.write(reinterpret_cast<const char *>(t.data()),
             std::streamsize(t.numel() * sizeof(float)));
}

Tensor
readTensor(std::istream &is)
{
    int d0 = int(readU32(is));
    int d1 = int(readU32(is));
    int d2 = int(readU32(is));
    int d3 = int(readU32(is));
    if (d0 <= 0 || d1 <= 0 || d2 <= 0 || d3 <= 0)
        util::fatal("checkpoint contains an invalid shape ", d0, "x",
                    d1, "x", d2, "x", d3);
    Tensor t(Shape4(d0, d1, d2, d3));
    is.read(reinterpret_cast<char *>(t.data()),
            std::streamsize(t.numel() * sizeof(float)));
    if (!is)
        util::fatal("checkpoint truncated inside tensor data");
    return t;
}

void
saveNetwork(const Network &net, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        util::fatal("cannot open '", path, "' for writing");
    writeU32(os, kMagic);
    writeU32(os, kVersion);
    std::uint32_t count = 0;
    forEachParam(const_cast<Network &>(net),
                 [&](Tensor &) { ++count; });
    writeU32(os, count);
    forEachParam(const_cast<Network &>(net),
                 [&](Tensor &t) { writeTensor(os, t); });
    if (!os)
        util::fatal("write failure on '", path, "'");
}

void
loadNetwork(Network &net, const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        util::fatal("cannot open '", path, "' for reading");
    if (readU32(is) != kMagic)
        util::fatal("'", path, "' is not a ganacc checkpoint");
    std::uint32_t version = readU32(is);
    if (version != kVersion)
        util::fatal("checkpoint version ", version, " unsupported");
    std::uint32_t count = readU32(is);
    std::uint32_t expected = 0;
    forEachParam(net, [&](Tensor &) { ++expected; });
    if (count != expected)
        util::fatal("checkpoint has ", count, " tensors; network has ",
                    expected);
    forEachParam(net, [&](Tensor &t) {
        Tensor loaded = readTensor(is);
        if (!(loaded.shape() == t.shape()))
            util::fatal("checkpoint tensor shape ",
                        loaded.shape().str(), " does not match ",
                        t.shape().str());
        t = std::move(loaded);
    });
}

} // namespace gan
} // namespace ganacc
