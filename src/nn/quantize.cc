/**
 * @file
 * Fixed-point datapath implementation.
 */

#include "nn/quantize.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "tensor/shape.hh"
#include "util/logging.hh"

namespace ganacc {
namespace nn {

using tensor::Shape4;
using tensor::Tensor;
using util::AccelFixed;

namespace {

/** Quantize a float to a raw Q7.8 pattern. */
int32_t
toRaw(float v)
{
    return AccelFixed::fromDouble(v).raw();
}

/** Renormalize a wide accumulator of Q(2*frac) products back to the
 *  Q7.8 grid with round-to-nearest and saturation. */
float
fromAccumulator(std::int64_t acc)
{
    const int frac = AccelFixed::fracBits;
    std::int64_t rounded = acc + (std::int64_t(1) << (frac - 1));
    std::int64_t raw = rounded >> frac;
    raw = std::clamp<std::int64_t>(
        raw, std::numeric_limits<std::int16_t>::min(),
        std::numeric_limits<std::int16_t>::max());
    return float(AccelFixed::fromRaw(int16_t(raw)).toDouble());
}

} // namespace

Tensor
sconvForwardFixed(const Tensor &in, const Tensor &w, const Conv2dGeom &g)
{
    const Shape4 &is = in.shape();
    const Shape4 &ws = w.shape();
    GANACC_ASSERT(ws.d1 == is.d1, "fixed S-CONV channel mismatch");
    int oh = tensor::convOutDim(is.d2, g.kernel, g.stride, g.pad);
    int ow = tensor::convOutDim(is.d3, g.kernel, g.stride, g.pad);
    Tensor out(Shape4(is.d0, ws.d0, oh, ow));
    for (int n = 0; n < is.d0; ++n)
        for (int of = 0; of < ws.d0; ++of)
            for (int oy = 0; oy < oh; ++oy)
                for (int ox = 0; ox < ow; ++ox) {
                    std::int64_t acc = 0;
                    for (int c = 0; c < is.d1; ++c)
                        for (int ky = 0; ky < g.kernel; ++ky)
                            for (int kx = 0; kx < g.kernel; ++kx) {
                                int iy = oy * g.stride + ky - g.pad;
                                int ix = ox * g.stride + kx - g.pad;
                                float v = in.getPadded(n, c, iy, ix);
                                if (v == 0.0f)
                                    continue;
                                acc += std::int64_t(toRaw(v)) *
                                       toRaw(w.get(of, c, ky, kx));
                            }
                    out.ref(n, of, oy, ox) = fromAccumulator(acc);
                }
    return out;
}

Tensor
tconvForwardFixed(const Tensor &in, const Tensor &w, const Conv2dGeom &g)
{
    const Shape4 &is = in.shape();
    const Shape4 &ws = w.shape();
    GANACC_ASSERT(ws.d0 == is.d1, "fixed T-CONV channel mismatch");
    int oh = tensor::tconvOutDim(is.d2, g.kernel, g.stride, g.pad,
                                 g.outPad);
    int ow = tensor::tconvOutDim(is.d3, g.kernel, g.stride, g.pad,
                                 g.outPad);
    Tensor out(Shape4(is.d0, ws.d1, oh, ow));
    for (int n = 0; n < is.d0; ++n)
        for (int of = 0; of < ws.d1; ++of)
            for (int y = 0; y < oh; ++y)
                for (int x = 0; x < ow; ++x) {
                    std::int64_t acc = 0;
                    for (int c = 0; c < is.d1; ++c)
                        for (int ky = 0; ky < g.kernel; ++ky)
                            for (int kx = 0; kx < g.kernel; ++kx) {
                                int ny = y + g.pad - ky;
                                int nx = x + g.pad - kx;
                                if (ny < 0 || nx < 0 ||
                                    ny % g.stride != 0 ||
                                    nx % g.stride != 0)
                                    continue;
                                int iy = ny / g.stride;
                                int ix = nx / g.stride;
                                if (iy >= is.d2 || ix >= is.d3)
                                    continue;
                                acc += std::int64_t(toRaw(in.get(
                                           n, c, iy, ix))) *
                                       toRaw(w.get(c, of, ky, kx));
                            }
                    out.ref(n, of, y, x) = fromAccumulator(acc);
                }
    return out;
}

QuantError
quantError(const Tensor &reference, const Tensor &fixed_result)
{
    GANACC_ASSERT(reference.shape() == fixed_result.shape(),
                  "quantError shape mismatch");
    QuantError e;
    double sq = 0.0;
    for (std::size_t i = 0; i < reference.numel(); ++i) {
        double d = double(reference.data()[i]) - fixed_result.data()[i];
        e.maxAbs = std::max(e.maxAbs, std::fabs(d));
        sq += d * d;
        e.refScale = std::max(e.refScale,
                              double(std::fabs(reference.data()[i])));
    }
    e.rms = std::sqrt(sq / double(reference.numel()));
    return e;
}

} // namespace nn
} // namespace ganacc
