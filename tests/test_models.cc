/**
 * @file
 * Tests for the GAN topologies (Fig. 1 / Table IV) and the memory
 * analysis of Section III-A.
 */

#include <gtest/gtest.h>

#include "gan/memory_analysis.hh"
#include "gan/models.hh"
#include "nn/layers.hh"

namespace {

using namespace ganacc;
using gan::GanModel;
using nn::ConvKind;

TEST(Models, DcganMatchesFig1)
{
    GanModel m = gan::makeDcgan();
    ASSERT_EQ(m.disc.size(), 5u);
    // Table-IV-style progression: 3x64x64 -> 64x32x32 -> 128x16x16
    // -> 256x8x8 -> 512x4x4 -> 1x1x1.
    const int chans[] = {3, 64, 128, 256, 512, 1};
    const int sizes[] = {64, 32, 16, 8, 4, 1};
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(m.disc[i].inChannels, chans[i]) << "layer " << i;
        EXPECT_EQ(m.disc[i].outChannels, chans[i + 1]);
        EXPECT_EQ(m.disc[i].inH, sizes[i]);
        EXPECT_EQ(m.disc[i].outH(), sizes[i + 1]);
        EXPECT_EQ(m.disc[i].kind, ConvKind::Strided);
    }
}

TEST(Models, MnistGanMatchesTable4)
{
    GanModel m = gan::makeMnistGan();
    // Table IV: 1x28x28 -k5s2-> 64x14x14 -k5s2-> 128x7x7.
    ASSERT_GE(m.disc.size(), 2u);
    EXPECT_EQ(m.disc[0].inChannels, 1);
    EXPECT_EQ(m.disc[0].inH, 28);
    EXPECT_EQ(m.disc[0].outChannels, 64);
    EXPECT_EQ(m.disc[0].outH(), 14);
    EXPECT_EQ(m.disc[0].geom.kernel, 5);
    EXPECT_EQ(m.disc[0].geom.stride, 2);
    EXPECT_EQ(m.disc[1].outChannels, 128);
    EXPECT_EQ(m.disc[1].outH(), 7);
}

TEST(Models, CganMatchesTable4)
{
    GanModel m = gan::makeCgan();
    // Table IV: 3x64x64 -k4s2-> 64x32x32 -> 128x16x16 -> 256x8x8
    // -> 512x4x4.
    ASSERT_GE(m.disc.size(), 4u);
    const int chans[] = {3, 64, 128, 256, 512};
    const int sizes[] = {64, 32, 16, 8, 4};
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(m.disc[i].inChannels, chans[i]);
        EXPECT_EQ(m.disc[i].outChannels, chans[i + 1]);
        EXPECT_EQ(m.disc[i].inH, sizes[i]);
        EXPECT_EQ(m.disc[i].outH(), sizes[i + 1]);
        EXPECT_EQ(m.disc[i].geom.kernel, 4);
    }
}

TEST(Models, GeneratorIsInverseOfDiscriminator)
{
    for (const GanModel &m : gan::allModels()) {
        ASSERT_EQ(m.gen.size(), m.disc.size()) << m.name;
        const std::size_t n = m.disc.size();
        for (std::size_t i = 0; i < n; ++i) {
            const auto &g = m.gen[i];
            const auto &d = m.disc[n - 1 - i];
            EXPECT_EQ(g.kind, ConvKind::Transposed) << m.name;
            EXPECT_EQ(g.outChannels, d.inChannels) << m.name;
            EXPECT_EQ(g.inH, d.outH()) << m.name;
            EXPECT_EQ(g.outH(), d.inH) << m.name << " gen layer " << i;
            if (i > 0)
                EXPECT_EQ(g.inChannels, d.outChannels);
            else
                EXPECT_EQ(g.inChannels, m.latentDim);
        }
        // The generator emits the image the discriminator consumes.
        EXPECT_EQ(m.gen.back().outChannels, m.disc.front().inChannels);
        EXPECT_EQ(m.gen.back().outH(), m.disc.front().inH);
    }
}

TEST(Models, LayersChainThroughBothNetworks)
{
    for (const GanModel &m : gan::allModels()) {
        for (std::size_t i = 1; i < m.gen.size(); ++i) {
            EXPECT_EQ(m.gen[i].inChannels, m.gen[i - 1].outChannels)
                << m.name << " gen " << i;
            EXPECT_EQ(m.gen[i].inH, m.gen[i - 1].outH());
        }
    }
}

TEST(Models, MacCountsArePositiveAndLargestInMiddleLayers)
{
    GanModel m = gan::makeDcgan();
    // Layers 2-4 all have ~52M MACs; the head is tiny.
    EXPECT_GT(m.disc[1].macs(), 40'000'000u);
    EXPECT_LT(m.disc[4].macs(), 10'000'000u);
}

TEST(Models, InstantiateLayerProducesMatchingKind)
{
    GanModel m = gan::makeDcgan();
    auto s = gan::instantiateLayer(m.disc[0]);
    EXPECT_EQ(s->kind(), ConvKind::Strided);
    auto t = gan::instantiateLayer(m.gen[0]);
    EXPECT_EQ(t->kind(), ConvKind::Transposed);
    EXPECT_EQ(t->inChannels(), m.latentDim);
}

TEST(MemoryAnalysis, DcganMatchesPaper126MbClaim)
{
    // Section III-A: "DCGAN needs a ~126M-byte buffer when the batch
    // size is 256" (16-bit data, 2m buffered intermediate sets).
    GanModel m = gan::makeDcgan();
    auto f = gan::analyzeMemory(m, 256, 2);
    EXPECT_NEAR(double(f.syncDiscUpdateBytes), 126e6, 6e6);
}

TEST(MemoryAnalysis, DeferredShrinksToPerSampleFootprint)
{
    GanModel m = gan::makeDcgan();
    auto f = gan::analyzeMemory(m, 256, 2);
    // Deferred sync is independent of batch size and ~2 samples big.
    EXPECT_EQ(f.deferredDiscUpdateBytes, 2 * f.perSampleDiscBytes);
    EXPECT_GT(f.syncDiscUpdateBytes / f.deferredDiscUpdateBytes, 200u);
    auto f2 = gan::analyzeMemory(m, 1024, 2);
    EXPECT_EQ(f.deferredDiscUpdateBytes, f2.deferredDiscUpdateBytes);
    EXPECT_EQ(f2.syncDiscUpdateBytes, 4 * f.syncDiscUpdateBytes);
}

TEST(MemoryAnalysis, GenUpdateCountsBothNetworks)
{
    GanModel m = gan::makeMnistGan();
    auto f = gan::analyzeMemory(m, 64, 2);
    EXPECT_EQ(f.syncGenUpdateBytes,
              64 * (f.perSampleGenBytes + f.perSampleDiscBytes));
}

TEST(MemoryAnalysis, OnChipFeasibility)
{
    // The deferred-sync footprint must fit the VCU9P's ~9.5 MB of
    // BRAM (75.9 Mb) for every evaluated model — the property that
    // makes the design implementable at all.
    for (const GanModel &m : gan::allModels()) {
        auto f = gan::analyzeMemory(m, 256, 2);
        EXPECT_LT(f.deferredDiscUpdateBytes + f.deferredGenUpdateBytes,
                  9'500'000u)
            << m.name;
    }
}

} // namespace
