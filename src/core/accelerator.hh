/**
 * @file
 * The complete GAN accelerator of Fig. 14: a ZFOST bank for the
 * S-CONV/T-CONV phases, a ZFWST bank for the W-CONV phases, the four
 * on-chip buffer kinds, the off-chip bandwidth-derived unrolling
 * (eqs. 7-8) and the deferred-synchronization time-multiplexed
 * schedule. This is the design the paper evaluates end to end.
 */

#ifndef GANACC_CORE_ACCELERATOR_HH
#define GANACC_CORE_ACCELERATOR_HH

#include "core/resource_model.hh"
#include "gan/memory_analysis.hh"
#include "gan/models.hh"
#include "mem/offchip.hh"
#include "mem/onchip_buffer.hh"
#include "sched/design.hh"

namespace ganacc {
namespace core {

/** Platform and sizing parameters. */
struct AcceleratorConfig
{
    mem::OffChipConfig offchip; ///< 192 Gbps / 200 MHz / 16-bit
    int pesPerChannelSt = 16;   ///< 4x4 output tile per ZFOST channel
    int pesPerChannelW = 16;    ///< 4x4 resident weights per ZFWST
};

/** Everything the evaluation reports about one (design, model). */
struct AcceleratorReport
{
    sched::UpdateTiming discUpdate;
    sched::UpdateTiming genUpdate;
    std::uint64_t iterationCyclesDeferred = 0;
    std::uint64_t iterationCyclesSync = 0;
    double gopsDeferred = 0.0;
    double samplesPerSecond = 0.0;
    mem::BufferPlan buffers;
    FpgaResources resources;
    bool fitsDevice = false;
    std::string engine; ///< sim engine active during evaluation
                        ///< ("auto"/"walk"/"fast"), for reproducibility
};

/** The paper's accelerator: sized from bandwidth, built as a
 *  ZFOST-ZFWST combination. */
class GanAccelerator
{
  public:
    explicit GanAccelerator(const AcceleratorConfig &cfg = {});

    /** Eq. (7): ZFWST channels sustainable by the DRAM. */
    int wPof() const { return wPof_; }
    /** Eq. (8): ZFOST channels for a balanced schedule. */
    int stPof() const { return stPof_; }
    /** 1200 + 480 in the paper's configuration. */
    int totalPes() const { return totalPes_; }

    const AcceleratorConfig &config() const { return cfg_; }

    /** The design point handed to the schedulers. */
    sched::Design design() const;

    /** Full evaluation of one GAN model on this accelerator. */
    AcceleratorReport evaluate(const gan::GanModel &model) const;

  private:
    AcceleratorConfig cfg_;
    int wPof_;
    int stPof_;
    int totalPes_;
};

} // namespace core
} // namespace ganacc

#endif // GANACC_CORE_ACCELERATOR_HH
