/**
 * @file
 * Zero-insertion and spatial rearrangement helpers.
 *
 * T-CONV implements up-sampling by inserting (stride-1) zeros between
 * every pair of input neurons (paper Fig. 6(b)); W-CONV for the
 * discriminator inserts zeros between kernel weights instead
 * (Fig. 6(c)). These transforms are what create the "ineffectual"
 * zero-operand multiplications that ZFOST/ZFWST skip.
 */

#ifndef GANACC_NN_ZERO_INSERT_HH
#define GANACC_NN_ZERO_INSERT_HH

#include "tensor/tensor.hh"

namespace ganacc {
namespace nn {

/**
 * Insert (stride-1) zeros between adjacent elements along both spatial
 * axes, plus `extra` all-zero rows/columns on the bottom-right (the
 * T-CONV output-padding). A (.., H, W) tensor becomes
 * (.., (H-1)*stride+1+extra, (W-1)*stride+1+extra).
 */
tensor::Tensor zeroInsertSpatial(const tensor::Tensor &in, int stride,
                                 int extra = 0);

/** Surround both spatial axes with `pad` rings of zeros. */
tensor::Tensor padSpatial(const tensor::Tensor &in, int pad);

/** Rotate every kernel plane by 180 degrees (flip both spatial axes). */
tensor::Tensor flipKernelSpatial(const tensor::Tensor &w);

/** Swap the two leading axes, e.g. (IF,OF,KH,KW) -> (OF,IF,KH,KW). */
tensor::Tensor swapLeadingAxes(const tensor::Tensor &w);

/**
 * Fraction of elements that are exactly zero after zero-inserting a
 * dense map with the given stride: 1 - (H*W) / (H'*W'). Pure shape
 * arithmetic; used by the zero-operand census (Section III-C3).
 */
double zeroInsertZeroFraction(int h, int w, int stride);

} // namespace nn
} // namespace ganacc

#endif // GANACC_NN_ZERO_INSERT_HH
