/**
 * @file
 * Improved-NLR cycle-level model.
 */

#include "sim/nlr.hh"

#include <algorithm>

#include "sim/closed_form.hh"
#include "util/logging.hh"

namespace ganacc {
namespace sim {

using tensor::Tensor;

namespace {

/** Structural-zero test for a streamed input coordinate pair, pattern
 *  only (out-of-bounds padding is NOT skippable). */
bool
patternZero(const ConvSpec &spec, int iy, int ix)
{
    if (iy < 0 || iy >= spec.ih || ix < 0 || ix >= spec.iw)
        return false; // padding: burns the cycle like any dense operand
    return spec.inputIsZero(iy, ix);
}

} // namespace

RunStats
Nlr::doRun(const ConvSpec &spec, const Tensor *in, const Tensor *w,
           Tensor *out) const
{
    const bool functional = in != nullptr;
    const int n_pes = numPes();
    ScheduleRecorder *const rec = schedRec();
    RunStats st;

    // Partial sums live in the global output buffer, zero-initialized;
    // one job-wide write-through window covers every accumulation.
    if (rec)
        rec->onWindowBegin(std::uint64_t(spec.nof) * spec.oh * spec.ow *
                               (spec.fourDimOutput ? spec.nif : 1),
                           WindowKind::WriteThrough);

    for (int of0 = 0; of0 < spec.nof; of0 += unroll_.pOf) {
        const int of_cnt = std::min(unroll_.pOf, spec.nof - of0);
        for (int oy = 0; oy < spec.oh; ++oy) {
            for (int ox = 0; ox < spec.ow; ++ox) {
                for (int ky = 0; ky < spec.kh; ++ky) {
                    for (int kx = 0; kx < spec.kw; ++kx) {
                        // Address-generation zero skipping: structurally
                        // zero kernel positions and zero-stuffed input
                        // positions never get scheduled (improved NLR);
                        // the vanilla dataflow executes them as wasted
                        // cycles.
                        const int iy = oy * spec.stride + ky - spec.pad;
                        const int ix = ox * spec.stride + kx - spec.pad;
                        const bool structural_zero =
                            spec.kernelIsZero(ky, kx) ||
                            patternZero(spec, iy, ix);
                        if (structural_zero &&
                            policy_ == ZeroPolicy::Skip)
                            continue;
                        const bool in_bounds =
                            !structural_zero && iy >= 0 &&
                            iy < spec.ih && ix >= 0 && ix < spec.iw;

                        if (!spec.fourDimOutput) {
                            // Input lanes feed the adder tree.
                            for (int c0 = 0; c0 < spec.nif;
                                 c0 += unroll_.pIf) {
                                const int if_cnt = std::min(
                                    unroll_.pIf, spec.nif - c0);
                                st.cycles += 1;
                                st.weightLoads +=
                                    std::uint64_t(if_cnt) * of_cnt;
                                st.inputLoads += std::uint64_t(if_cnt);
                                // Partial sums live in the buffer: one
                                // read-modify-write per channel/cycle.
                                st.outputReads += std::uint64_t(of_cnt);
                                st.outputWrites += std::uint64_t(of_cnt);
                                if (rec) {
                                    rec->onCycle();
                                    for (int ci = 0; ci < if_cnt; ++ci)
                                        rec->onLanes(ci * unroll_.pOf,
                                                     of_cnt);
                                    rec->onPort(
                                        SchedPort::Weight,
                                        std::uint64_t(if_cnt) * of_cnt);
                                    rec->onPort(SchedPort::Input,
                                                std::uint64_t(if_cnt));
                                    rec->onPort(SchedPort::OutputRead,
                                                std::uint64_t(of_cnt));
                                    rec->onPort(SchedPort::OutputWrite,
                                                std::uint64_t(of_cnt));
                                    const std::uint64_t cell =
                                        schedCellIndex(spec, of0, 0, oy,
                                                       ox);
                                    rec->onCellRead(cell,
                                                    std::uint64_t(of_cnt));
                                    rec->onCellWrite(
                                        cell, std::uint64_t(of_cnt));
                                }
                                const std::uint64_t active =
                                    std::uint64_t(if_cnt) * of_cnt;
                                if (in_bounds)
                                    st.effectiveMacs += active;
                                else
                                    st.ineffectualMacs += active;
                                st.idlePeSlots +=
                                    std::uint64_t(n_pes) - active;
                                // Ineffectual scheduled slots (padding,
                                // or structural zeros under the vanilla
                                // policy) still flow through the
                                // multipliers, so the fault hook visits
                                // them too; their fault-free product is
                                // zero.
                                if (functional &&
                                    (in_bounds ||
                                     faultVisitsIneffectual())) {
                                    for (int c = c0; c < c0 + if_cnt;
                                         ++c) {
                                        float v =
                                            in->getPadded(0, c, iy, ix);
                                        for (int f = 0; f < of_cnt;
                                             ++f) {
                                            const int of = of0 + f;
                                            out->ref(0, of, oy, ox) +=
                                                macProduct(
                                                    v,
                                                    w->get(of, c, ky,
                                                           kx),
                                                    MacContext{
                                                        (c - c0) *
                                                                unroll_
                                                                    .pOf +
                                                            f,
                                                        of, c, oy, ox,
                                                        ky, kx});
                                        }
                                    }
                                }
                            }
                        } else {
                            // Four-dimension outputs: nothing to
                            // accumulate across input maps, so the
                            // adder tree idles P_of*(P_if-1) PEs and
                            // input maps go through sequentially.
                            for (int c = 0; c < spec.nif; ++c) {
                                st.cycles += 1;
                                st.weightLoads += std::uint64_t(of_cnt);
                                st.inputLoads += 1;
                                st.outputReads += std::uint64_t(of_cnt);
                                st.outputWrites += std::uint64_t(of_cnt);
                                if (rec) {
                                    rec->onCycle();
                                    rec->onLanes(0, of_cnt);
                                    rec->onPort(SchedPort::Weight,
                                                std::uint64_t(of_cnt));
                                    rec->onPort(SchedPort::Input, 1);
                                    rec->onPort(SchedPort::OutputRead,
                                                std::uint64_t(of_cnt));
                                    rec->onPort(SchedPort::OutputWrite,
                                                std::uint64_t(of_cnt));
                                    const std::uint64_t cell =
                                        schedCellIndex(spec, of0, c, oy,
                                                       ox);
                                    rec->onCellRead(cell,
                                                    std::uint64_t(of_cnt));
                                    rec->onCellWrite(
                                        cell, std::uint64_t(of_cnt));
                                }
                                const std::uint64_t active =
                                    std::uint64_t(of_cnt);
                                if (in_bounds)
                                    st.effectiveMacs += active;
                                else
                                    st.ineffectualMacs += active;
                                st.idlePeSlots +=
                                    std::uint64_t(n_pes) - active;
                                if (functional &&
                                    (in_bounds ||
                                     faultVisitsIneffectual())) {
                                    float v = in->getPadded(0, c, iy, ix);
                                    for (int f = 0; f < of_cnt; ++f) {
                                        const int of = of0 + f;
                                        out->ref(of, c, oy, ox) +=
                                            macProduct(
                                                v, w->get(of, 0, ky, kx),
                                                MacContext{f, of, c, oy,
                                                           ox, ky, kx});
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    if (rec)
        rec->onWindowEnd();
    return st;
}

bool
Nlr::fastStats(const ConvSpec &spec, RunStats &st) const
{
    st = nlrClosedForm(unroll_, spec, policy_ == ZeroPolicy::Skip);
    return true;
}

} // namespace sim
} // namespace ganacc
