/**
 * @file
 * Client side of the simulation service.
 *
 * A thin blocking client over the Unix-domain socket: send request
 * lines, read response lines back in order. Requests can be pipelined
 * (sendRequest N times, then recvResponse N times) — the daemon
 * preserves per-connection ordering, which is what makes the batched
 * replay of ganacc-client a single round of writes followed by a
 * single round of reads.
 */

#ifndef GANACC_SERVE_CLIENT_HH
#define GANACC_SERVE_CLIENT_HH

#include <string>
#include <vector>

#include "serve/protocol.hh"

namespace ganacc {
namespace serve {

/**
 * Connection establishment policy. A refused connection is retried
 * `retries` times with exponential backoff starting at `backoffMs`
 * (doubling, capped at one second per sleep) until `timeoutMs` of
 * wall clock has been spent; only then is the failure fatal. The
 * defaults preserve the historical fail-fast behavior.
 */
struct ConnectOptions
{
    int retries = 0;    ///< extra attempts after the first failure
    int backoffMs = 50; ///< first retry delay; doubles per attempt
    int timeoutMs = 5000; ///< total connect budget across attempts
};

/**
 * True when `address` names a TCP endpoint (contains a ':' and does
 * not start with '/' or '.'), false for an AF_UNIX socket path.
 */
bool isTcpAddress(const std::string &address);

/** A blocking JSON-lines connection to a running ganacc-served. */
class Client
{
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /**
     * Connect to the daemon. `address` is an AF_UNIX socket path
     * (starts with '/' or '.', or contains no ':') or a TCP
     * "host:port" endpoint. Throws FatalError once the retry budget
     * in `opt` is exhausted.
     */
    void connect(const std::string &address,
                 const ConnectOptions &opt = ConnectOptions());

    bool connected() const { return fd_ >= 0; }

    /** Queue one request onto the wire (pipelined). */
    void sendRequest(const Request &req);

    /** Send a raw pre-encoded line (replay of a request file). */
    void sendLine(const std::string &line);

    /** Next response line, in request order; throws on EOF. */
    Response recvResponse();

    /** Raw response line (for byte-exact golden replay). */
    std::string recvLine();

    /** Synchronous convenience: one request, one response. */
    Response roundTrip(const Request &req);

    void close();

  private:
    int fd_ = -1;
    std::string buf_;
};

/**
 * Replay every line of `request_lines` through a connected client
 * (pipelined in windows of `window`) and return the raw response
 * lines in order.
 */
std::vector<std::string> replayLines(
    Client &client, const std::vector<std::string> &request_lines,
    std::size_t window = 64);

} // namespace serve
} // namespace ganacc

#endif // GANACC_SERVE_CLIENT_HH
