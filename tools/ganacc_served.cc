/**
 * @file
 * ganacc-served — the simulation-as-a-service daemon.
 *
 * Turns the one-shot simulator into a long-lived evaluation service:
 * clients submit (architecture, unrolling, job) requests over a
 * Unix-domain socket (or stdin/stdout in --pipe mode, which is what
 * CI's golden replay uses) and get canonical RunStats back, served
 * from the in-memory cycle cache, the persistent result store
 * (--cache-dir / GANACC_CACHE_DIR), or a fresh cycle walk — always
 * bit-identical to direct in-process simulation.
 *
 *   ganacc-served --socket /tmp/ganacc.sock --cache-dir ~/.ganacc
 *   ganacc-served --pipe --jobs 1 --deterministic < reqs.jsonl
 *
 * SIGTERM/SIGINT stop the socket server cleanly: stop accepting,
 * finish live connections, drain the engine, remove the socket file.
 */

#include <atomic>
#include <iostream>

#include "obs/telemetry.hh"
#include "serve/daemon.hh"
#include "serve/engine.hh"
#include "util/args.hh"
#include "util/logging.hh"

int
main(int argc, char **argv)
try {
    using namespace ganacc;
    util::ArgParser args(argc, argv);
    const std::string socket_path = args.getString(
        "socket", "", "Unix-domain socket path to listen on");
    const bool pipe_mode = args.getFlag(
        "pipe", "serve stdin -> stdout instead of a socket");
    const std::string cache_dir = args.getCacheDir();
    const int jobs = args.getJobs();
    const int max_queue = args.getInt(
        "max-queue", 256,
        "in-flight request bound (backpressure threshold)");
    const bool deterministic = args.getFlag(
        "deterministic",
        "report latencyUs as 0 so responses byte-compare against "
        "goldens");
    const bool quiet =
        args.getFlag("quiet", "suppress the shutdown summary");
    const std::string metrics_dump = args.getString(
        "metrics-dump", "",
        "file SIGUSR1 dumps a Prometheus metrics snapshot to "
        "(socket mode)");
    const std::string trace_path = args.getTracePath();
    if (args.helpRequested()) {
        args.usage(std::cout);
        return 0;
    }
    args.finish();
    if (pipe_mode == !socket_path.empty())
        util::fatal("pass exactly one of --pipe or --socket PATH");
    if (max_queue <= 0)
        util::fatal("--max-queue must be positive");

    // Telemetry: sinks come from env (GANACC_TRACE / GANACC_EVENTS /
    // GANACC_METRICS) or --trace; status goes to stderr via inform so
    // the JSONL response stream on stdout stays clean in --pipe mode.
    obs::TelemetryConfig tcfg = obs::configFromEnv();
    if (!trace_path.empty())
        tcfg.tracePath = trace_path;
    if (tcfg.any())
        obs::enableTelemetry(tcfg);

    serve::EngineOptions opts;
    opts.jobs = jobs;
    opts.maxQueue = std::size_t(max_queue);
    opts.cacheDir = cache_dir;
    opts.deterministic = deterministic;
    serve::Engine engine(opts);

    serve::ServeTotals totals;
    if (pipe_mode) {
        totals = serve::runPipeServer(std::cin, std::cout, engine);
        engine.drain();
    } else {
        if (!metrics_dump.empty())
            obs::installMetricsDumpSignal(metrics_dump);
        std::atomic<bool> stop{false};
        serve::installStopHandlers(stop);
        std::cerr << "ganacc-served: listening on " << socket_path
                  << " (" << engine.summary() << ")\n";
        totals = serve::runSocketServer(socket_path, engine, stop);
    }
    if (!quiet)
        std::cerr << "ganacc-served: " << totals.lines
                  << " requests in, " << totals.responses
                  << " responses out; " << engine.summary() << "\n";
    obs::shutdownTelemetry();
    return 0;
} catch (const ganacc::util::FatalError &e) {
    std::cerr << "ganacc-served: " << e.what() << "\n";
    return 2;
}
