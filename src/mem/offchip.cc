/**
 * @file
 * Off-chip model implementation.
 */

#include "mem/offchip.hh"

#include <cmath>

#include "util/logging.hh"

namespace ganacc {
namespace mem {

int
deriveWPof(const OffChipConfig &cfg)
{
    GANACC_ASSERT(cfg.bandwidthBitsPerSec > 0 && cfg.frequencyHz > 0 &&
                      cfg.bitsPerData > 0,
                  "bad off-chip configuration");
    double w = cfg.bandwidthBitsPerSec /
               (2.0 * cfg.frequencyHz * cfg.bitsPerData);
    int w_pof = int(std::floor(w));
    GANACC_ASSERT(w_pof >= 1,
                  "off-chip bandwidth cannot sustain a single ZFWST "
                  "channel");
    return w_pof;
}

int
deriveStPof(int w_pof)
{
    GANACC_ASSERT(w_pof >= 1, "W_Pof must be positive");
    // Eq. (8): the ST bank runs 5 processes for every 2 W processes
    // during discriminator updates, so it needs 2.5x the channels.
    return (5 * w_pof) / 2;
}

double
zfwstBandwidthDemand(const OffChipConfig &cfg, int w_pof,
                     int kernel_elems, int resident_elems)
{
    GANACC_ASSERT(kernel_elems > 0 && resident_elems > 0,
                  "bad kernel geometry");
    // One ∇W result (read + write) every
    // kernel_elems / resident_elems cycles per channel.
    double passes =
        double(kernel_elems) / double(resident_elems);
    return 2.0 * cfg.frequencyHz * w_pof * cfg.bitsPerData / passes;
}

} // namespace mem
} // namespace ganacc
