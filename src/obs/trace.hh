/**
 * @file
 * Chrome trace_event emission: one escaping/formatting code path for
 * every trace the project writes, plus the process-wide span sink.
 *
 * Two layers:
 *
 *  - writeChromeTraceJson() serializes a prepared event list in the
 *    Chrome trace_event JSON format (the "X" complete-event flavour
 *    Perfetto and chrome://tracing accept). The event simulator's
 *    deterministic cycle-timestamped trace and the wall-clock span
 *    trace below both go through it, so there is exactly one
 *    JSON-escaping/emitting path (util::escapeJson).
 *
 *  - TraceSink is the process-wide wall-clock span recorder behind
 *    GANACC_TRACE/--trace: disabled it is a single relaxed atomic
 *    load per would-be span; enabled it buffers TraceEvents (ts/dur
 *    in microseconds since enable, tid a small dense per-thread lane)
 *    and flushes them as one Chrome trace at shutdown. Wall-clock
 *    time lives only in these records, never in simulation results,
 *    so tracing cannot perturb determinism.
 */

#ifndef GANACC_OBS_TRACE_HH
#define GANACC_OBS_TRACE_HH

#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include <atomic>

namespace ganacc {
namespace obs {

/** One Chrome trace_event entry. */
struct TraceEvent
{
    std::string name;
    std::string cat;      ///< comma-separated categories ("" = none)
    char ph = 'X';        ///< event type; 'X' = complete (ts + dur)
    int pid = 0;
    int tid = 0;
    std::uint64_t ts = 0; ///< microseconds (or cycles for event-sim)
    std::uint64_t dur = 0;
    std::string args;     ///< raw JSON object text ("" = no args)
};

/**
 * Serialize `events` as a Chrome trace_event JSON document. Metadata
 * pairs land in the top-level "metadata" object (values are strings,
 * escaped here). The output is deterministic given deterministic
 * inputs — the event-sim golden trace byte-compares across runs.
 */
void writeChromeTraceJson(
    std::ostream &os, const std::vector<TraceEvent> &events,
    const std::vector<std::pair<std::string, std::string>> &metadata,
    const std::string &displayTimeUnit = "ns");

/** The process-wide span recorder (leaked singleton). */
class TraceSink
{
  public:
    static TraceSink &instance();

    /** One relaxed load; every span checks this before doing work. */
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Start recording; spans ending from now on are buffered and
     * flushed to `path` (by flush(), shutdownTelemetry() or atexit).
     * Re-enabling clears previously buffered events.
     */
    void enable(const std::string &path);

    /** Stop recording; buffered events stay until flush/enable. */
    void disable();

    /** Microseconds since enable() on the steady clock. */
    std::uint64_t nowUs() const;

    /** Dense per-thread lane id (0, 1, 2, … in first-use order). */
    static int threadLane();

    /** Buffer one event (dropped when disabled). */
    void record(TraceEvent ev);

    std::size_t eventCount() const;

    const std::string &path() const { return path_; }

    /**
     * Write the buffered events to path() as a Chrome trace and clear
     * the buffer. Returns false (leaving a warning) when the file
     * cannot be written. Safe to call with nothing buffered.
     */
    bool flush();

  private:
    TraceSink() = default;

    std::atomic<bool> enabled_{false};
    mutable std::mutex m_;
    std::string path_;
    std::vector<TraceEvent> events_;
    std::chrono::steady_clock::time_point t0_{};
};

/**
 * RAII span: times the enclosed scope on the steady clock and records
 * one complete event on destruction. When the sink is disabled the
 * constructor is one atomic load and the destructor a branch.
 */
class Span
{
  public:
    explicit Span(const char *name, const char *cat = "",
                  std::string args = std::string());
    ~Span();

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    bool armed_;
    std::uint64_t t0_ = 0;
    const char *name_;
    const char *cat_;
    std::string args_;
};

} // namespace obs
} // namespace ganacc

#endif // GANACC_OBS_TRACE_HH
