/**
 * @file
 * Persistent content-addressed store of simulation results.
 *
 * Layout: <dir>/<k0k1>/<key>.json, where <key> is the 16-hex-digit
 * content address of (simulator version, kind, unrolling, spec shape)
 * — see serve::contentKey — and <k0k1> its first two digits (fan-out
 * so a million entries never share one directory). Each entry is a
 * single canonical JSON object:
 *
 *   {"version":"ganacc-…","arch":"ZFOST","unroll":{…},
 *    "spec":{…},"stats":{…}}
 *
 * Guarantees:
 *  - *Atomicity*: writers dump to a private `<key>.json.tmp.<pid>.<n>`
 *    in the same directory and rename(2) it into place, so readers —
 *    in this process or any other — only ever observe complete
 *    entries. Concurrent writers of the same key race benignly: the
 *    values are identical (the simulation is pure) and rename is
 *    atomic, so the last one wins with the same bytes.
 *  - *Self-invalidation*: the embedded version stamp is checked on
 *    load; an entry written by a different simulator version reads as
 *    a miss (counted in staleMisses) and is overwritten by the next
 *    write-through.
 *  - *Quarantine*: an entry that fails to parse, or whose embedded
 *    spec does not match the probe (a hash collision or torn file
 *    from a pre-atomic writer), is renamed to `<key>.quarantined` for
 *    post-mortem and read as a miss.
 *
 * The store implements core::StatsDiskTier, so attaching it to the
 * CycleCache gives every sweep, figure bench and fault campaign a
 * cross-process cache with no further plumbing.
 */

#ifndef GANACC_SERVE_RESULT_STORE_HH
#define GANACC_SERVE_RESULT_STORE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/cycle_cache.hh"
#include "serve/protocol.hh"

namespace ganacc {
namespace serve {

/**
 * Deliberately breakable store behaviours, for the conformance
 * harness's self-test only (tools/ganacc-conform --inject-bug): CI
 * proves the harness *catches* a store that skips stale-version
 * invalidation or forgets to quarantine corrupt entries, by switching
 * the bug on and requiring a divergence. Never set outside tests.
 */
enum class StoreBug
{
    None,           ///< correct behaviour (the default)
    SkipStaleCheck, ///< serve entries whose version stamp mismatches
    SkipQuarantine, ///< leave corrupt entries in place un-renamed
};

/** Arm (or with StoreBug::None disarm) a deliberate store bug. */
void setStoreBugForTesting(StoreBug bug);
StoreBug storeBugForTesting();

/** Counters of one store's session (all monotonically increasing). */
struct StoreCounters
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;       ///< absent entries
    std::uint64_t staleMisses = 0;  ///< version-stamp mismatches
    std::uint64_t corruptMisses = 0;///< quarantined entries
    std::uint64_t writes = 0;
};

/** A directory of content-addressed RunStats entries. */
class ResultStore : public core::StatsDiskTier
{
  public:
    /**
     * Open (creating directories as needed) a store rooted at `dir`.
     * `version` stamps every write and gates every read; it defaults
     * to the live simulator's stamp and is parameterized only so the
     * versioning tests can impersonate an older simulator.
     */
    explicit ResultStore(std::string dir,
                         std::string version = simulatorVersion());

    std::optional<sim::RunStats> load(core::ArchKind kind,
                                      const sim::Unroll &u,
                                      const sim::ConvSpec &spec) override;

    void store(core::ArchKind kind, const sim::Unroll &u,
               const sim::ConvSpec &spec,
               const sim::RunStats &stats) override;

    const std::string &dir() const { return dir_; }
    const std::string &version() const { return version_; }

    /** Snapshot of the session counters. */
    StoreCounters counters() const;

    /** Alias of counters() named for the observability layer (the
     *  cacheStats()/storeStats() snapshot pair). */
    StoreCounters storeStats() const { return counters(); }

    /** Entries currently on disk (walks the directory). */
    std::size_t entryCount() const;

    /** One-line summary for sweep/bench reports. */
    std::string summary() const;

    /** Absolute path an entry would live at (exposed for tests). */
    std::string entryPath(core::ArchKind kind, const sim::Unroll &u,
                          const sim::ConvSpec &spec) const;

    ~ResultStore() override;

  private:
    std::string dir_;
    std::string version_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> stale_{0};
    std::atomic<std::uint64_t> corrupt_{0};
    std::atomic<std::uint64_t> writes_{0};
    int collector_ = -1; ///< telemetry-registry collector token
};

/**
 * Convenience for the --cache-dir/GANACC_CACHE_DIR knob: when `dir`
 * is non-empty, open a store there and attach it to the process-wide
 * CycleCache; the returned handle detaches on destruction. Returns
 * nullptr (and attaches nothing) for an empty dir.
 */
class ScopedDiskCache
{
  public:
    explicit ScopedDiskCache(const std::string &dir);
    ~ScopedDiskCache();

    ScopedDiskCache(const ScopedDiskCache &) = delete;
    ScopedDiskCache &operator=(const ScopedDiskCache &) = delete;

    bool attached() const { return store_ != nullptr; }
    ResultStore *store() const { return store_.get(); }

  private:
    std::unique_ptr<ResultStore> store_;
};

} // namespace serve
} // namespace ganacc

#endif // GANACC_SERVE_RESULT_STORE_HH
